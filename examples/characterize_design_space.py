#!/usr/bin/env python
"""Explore the DSE landscape with the cost model alone (no training).

Reproduces the paper's motivation figures numerically: the non-uniform,
non-convex latency landscape (Fig. 3a), the long-tailed optimal-design
distribution (Fig. 3b), and how the winning dataflow changes with layer
shape (Fig. 1) — all from the MAESTRO-style analytical model.

Run:  python examples/characterize_design_space.py  (~30 seconds)
"""

from __future__ import annotations

import numpy as np

from repro.analysis import grid_landscape_stats, longtail_stats
from repro.dse import DSEProblem, ExhaustiveOracle
from repro.maestro import CostModel, Dataflow
from repro.scalesim import SystolicArray, SystolicMapping


def ascii_heatmap(grid: np.ndarray, title: str) -> None:
    """Log-scaled ASCII rendering of a (PE x L2) latency grid."""
    shades = " .:-=+*#%@"
    logs = np.log(grid)
    norm = (logs - logs.min()) / max(logs.max() - logs.min(), 1e-12)
    print(title)
    print("      L2: 16KB " + " " * 14 + "-> 32MB")
    for r in range(0, grid.shape[0], 8):
        row = "".join(shades[int(v * (len(shades) - 1))] for v in norm[r])
        print(f"  PE {8 * (r + 1):4d} |{row}|")
    print()


def main() -> None:
    problem = DSEProblem()
    cost_model = CostModel()
    oracle = ExhaustiveOracle(problem)
    rng = np.random.default_rng(3)
    space = problem.space

    print("== 1. Latency landscapes (dark = fast) for three layer shapes\n")
    shapes = [("small edge layer", 16, 64, 32),
              ("ResNet-ish conv", 128, 784, 576),
              ("LLM FFN slice", 256, 1677, 1024)]
    for name, m, n, k in shapes:
        out = cost_model.evaluate_grid(np.array([m]), np.array([n]),
                                       np.array([k]), "os",
                                       space.pe_choices, space.l2_choices)
        grid = out.latency_cycles[0]
        stats = grid_landscape_stats(grid)
        ascii_heatmap(grid, f"{name}: M={m} N={n} K={k}  "
                      f"({stats.num_local_minima} local minima, "
                      f"{stats.dynamic_range:.0f}x latency range)")

    print("== 2. Long-tailed optimal-design distribution (Fig. 3b)")
    inputs = problem.sample_inputs(5000, rng)
    labels_result = oracle.solve(inputs)
    labels = labels_result.pe_idx * space.n_l2 + labels_result.l2_idx
    tail = longtail_stats(labels, space.size)
    print(f"   {tail.num_classes_used} of {space.size} design points are "
          f"ever optimal")
    print(f"   top-5 classes hold {100 * tail.head_share_top5:.0f}% of "
          f"samples; gini = {tail.gini:.2f}")
    counts = np.sort(np.bincount(labels, minlength=space.size))[::-1]
    bar_max = counts[0]
    for i in [0, 1, 2, 10, 50, 100]:
        bar = "#" * int(40 * counts[i] / bar_max)
        print(f"   rank {i + 1:4d}: {bar} {counts[i]}")

    print("\n== 3. The winning dataflow depends on layer shape (Fig. 1)")
    config_pe, config_l2 = 128, 512
    for name, m, n, k in [("tall (big M)", 256, 32, 32),
                          ("wide (big N)", 32, 1600, 32),
                          ("deep (big K)", 32, 32, 1100)]:
        lats = {df.short_name: float(cost_model.evaluate(
            m, n, k, df, config_pe, config_l2).latency_cycles)
            for df in Dataflow}
        winner = min(lats, key=lats.get)
        pretty = ", ".join(f"{d}={v:,.0f}" for d, v in lats.items())
        print(f"   {name:14s}: {pretty}  -> winner: {winner}")

    print("\n== 4. Cross-check vs the Scale-Sim systolic model")
    arr_small, arr_big = SystolicArray(4, 4), SystolicArray(32, 32)
    tiny, big = (4, 4, 8), (512, 512, 256)
    for label, shape in [("tiny layer", tiny), ("big layer", big)]:
        c_small = float(arr_small.run_gemm(*shape,
                        SystolicMapping.OUTPUT_STATIONARY).cycles)
        c_big = float(arr_big.run_gemm(*shape,
                      SystolicMapping.OUTPUT_STATIONARY).cycles)
        pref = "small array" if c_small < c_big else "big array"
        print(f"   {label}: 4x4 -> {c_small:,.0f} cy, 32x32 -> {c_big:,.0f} cy"
              f"  (prefers {pref})")
    print("   Both cost models agree: resource needs follow layer shape,")
    print("   which is exactly what AIRCHITECT v2 learns to predict.")


if __name__ == "__main__":
    main()
