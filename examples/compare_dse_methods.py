#!/usr/bin/env python
"""Survey every DSE technique in the repository on one workload.

Search-based (random, GAMMA GA, ConfuciuX RL+GA, GP-BO) and learning-based
(AIRCHITECT v1 / GANDSE / VAESA+BO / AIRCHITECT v2) methods all optimise
the same Table-I hardware assignment for a ResNet-50 bottleneck layer —
the Fig. 1 story: search methods pay per-query evaluations, learned
methods amortise them into training.

Run:  python examples/compare_dse_methods.py  (~3 minutes)
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (GANDSE, GANDSEConfig, AirchitectV1, V1Config,
                             VAESA, VAESAConfig, train_gandse, train_v1,
                             train_vaesa)
from repro.core import (AirchitectV2, ModelConfig, Stage1Config, Stage1Trainer,
                        Stage2Config, Stage2Trainer)
from repro.dse import DSEProblem, ExhaustiveOracle, generate_random_dataset
from repro.search import (BOConfig, ConfuciuXConfig, DesignObjective,
                          bayesian_optimization, confuciux_search,
                          gamma_search, random_search)


def main() -> None:
    rng = np.random.default_rng(2)
    problem = DSEProblem()
    oracle = ExhaustiveOracle(problem)
    space = problem.space

    # ResNet-50 layer3 3x3 conv lowered to GEMM, weight-stationary mapping.
    target = np.array([256, 196, 2304 // 2, 0])
    target[2] = min(target[2], problem.bounds.k_max)
    truth = oracle.solve(target.reshape(1, 4))
    optimum = float(truth.best_cost[0])
    print(f"Target layer: M={target[0]} N={target[1]} K={target[2]} (WS)")
    print(f"Oracle optimum: {space.pe_choices[truth.pe_idx[0]]} PEs, "
          f"{space.l2_choices[truth.l2_idx[0]]} KB -> {optimum:,.0f} cycles\n")

    rows: list[tuple[str, float, str]] = []

    def record(name, cost, note):
        rows.append((name, cost / optimum, note))

    # ---------------- search-based ------------------------------------
    obj = DesignObjective(problem, target, oracle=oracle)
    res = random_search(obj, 100, rng)
    record("random (100 evals)", res.best_cost, f"{res.n_evals} evals")

    obj = DesignObjective(problem, target, oracle=oracle)
    res = gamma_search(obj, rng)
    record("GAMMA GA", res.best_cost, f"{res.n_evals} evals")

    obj = DesignObjective(problem, target, oracle=oracle)
    res = confuciux_search(obj, rng, ConfuciuXConfig(episodes=48))
    record("ConfuciuX RL+GA", res.best_cost, f"{res.n_evals} evals")

    obj = DesignObjective(problem, target, oracle=oracle)
    bo_res = bayesian_optimization(
        lambda x: obj(int(round(x[0])), int(round(x[1]))),
        np.array([[0, space.n_pe - 1], [0, space.n_l2 - 1]], dtype=float),
        rng, BOConfig(init_points=8, iterations=40))
    record("GP-BO (raw space)", bo_res.cost, f"{len(bo_res.history)} evals")

    # ---------------- learning-based ----------------------------------
    print("Training the learned methods on a shared 4000-sample dataset ...")
    train = generate_random_dataset(problem, 4000, rng, oracle=oracle)

    v1 = AirchitectV1(V1Config(epochs=15), problem, rng)
    train_v1(v1, train)
    pe, l2 = v1.predict_indices(target.reshape(1, 4))
    record("AIRCHITECT v1", float(oracle.cost_at(target.reshape(1, 4),
                                                 pe, l2)[0]), "one-shot")

    gan = GANDSE(GANDSEConfig(epochs=15), problem, rng)
    train_gandse(gan, train)
    pe, l2 = gan.predict_indices(target.reshape(1, 4))
    record("GANDSE", float(oracle.cost_at(target.reshape(1, 4),
                                          pe, l2)[0]), "one-shot")

    vae = VAESA(VAESAConfig(epochs=15), problem, rng)
    train_vaesa(vae, train)
    pe_i, l2_i, _ = vae.search(target, rng, BOConfig(iterations=40),
                               oracle=oracle)
    record("VAESA + BO", float(oracle.cost_at(target.reshape(1, 4),
                                              [pe_i], [l2_i])[0]),
           "48 evals in latent space")

    v2 = AirchitectV2(ModelConfig(d_model=32, embed_dim=16), problem, rng)
    Stage1Trainer(v2, Stage1Config(epochs=12)).train(train)
    Stage2Trainer(v2, Stage2Config(epochs=12)).train(train)
    pe, l2 = v2.predict_indices(target.reshape(1, 4))
    record("AIRCHITECT v2", float(oracle.cost_at(target.reshape(1, 4),
                                                 pe, l2)[0]), "one-shot")

    print(f"\n{'method':24s} {'latency vs optimum':>20s}   cost")
    print("-" * 60)
    for name, ratio, note in rows:
        print(f"{name:24s} {ratio:19.3f}x   {note}")


if __name__ == "__main__":
    main()
