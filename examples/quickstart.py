#!/usr/bin/env python
"""Quickstart: train AIRCHITECT v2 end-to-end and ask it for hardware.

Generates a small oracle-labelled dataset from the MAESTRO-style cost
model, runs the paper's two training stages, evaluates one-shot prediction
accuracy, and queries the trained model for a few familiar layers.

Run:  python examples/quickstart.py  (~2-3 minutes on a laptop CPU)
"""

from __future__ import annotations

import numpy as np

from repro.core import (AirchitectV2, DSEPredictor, ModelConfig, Stage1Config,
                        Stage1Trainer, Stage2Config, Stage2Trainer,
                        evaluate_model)
from repro.dse import DSEProblem, generate_random_dataset


def main() -> None:
    rng = np.random.default_rng(0)
    problem = DSEProblem()

    print("== 1. Generate an oracle-labelled DSE dataset (Table-I problem)")
    train = generate_random_dataset(problem, 4000, rng)
    test = generate_random_dataset(problem, 800, rng)
    print(f"   {len(train)} train / {len(test)} test samples; "
          f"design space {problem.space.size} points; "
          f"input complexity {problem.bounds.complexity:.1e}")

    print("== 2. Stage 1: contrastive + performance-predictor encoder training")
    model = AirchitectV2(ModelConfig(d_model=32, embed_dim=16), problem, rng)
    h1 = Stage1Trainer(model, Stage1Config(epochs=12)).train(train,
                                                             verbose=False)
    print(f"   stage-1 loss {h1['loss'][0]:.3f} -> {h1['loss'][-1]:.3f}")

    print("== 3. Stage 2: UOV decoder training (encoder frozen)")
    h2 = Stage2Trainer(model, Stage2Config(epochs=12)).train(train)
    print(f"   stage-2 loss {h2['loss'][0]:.3f} -> {h2['loss'][-1]:.3f}")

    print("== 4. One-shot DSE accuracy on unseen samples")
    metrics = evaluate_model(model, test)
    print(f"   exact accuracy   : {100 * metrics.accuracy:5.1f}%")
    print(f"   bucket accuracy  : {100 * metrics.bucket_accuracy:5.1f}%")
    print(f"   latency regret   : {100 * metrics.mean_regret:5.1f}% "
          f"(predicted vs optimal hardware)")

    print("== 5. Ask the model for hardware (constant-time inference!)")
    predictor = DSEPredictor(model)
    layers = [
        ("ResNet-50 conv3 (im2col)", 128, 784, 1152, "ws"),
        ("BERT-base FFN up", 256, 512, 768, "os"),
        ("Llama2 attention score head", 256, 1677, 128, "rs"),
    ]
    for name, m, n, k, df in layers:
        df_idx = {"ws": 0, "os": 1, "rs": 2}[df]
        pes, l2 = predictor.predict(m, n, k, df_idx)
        print(f"   {name:32s} (M={m}, N={n}, K={k}, {df}) "
              f"-> {int(pes[0]):4d} PEs, {int(l2[0]):6d} KB L2")


if __name__ == "__main__":
    main()
