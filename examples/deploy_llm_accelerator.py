#!/usr/bin/env python
"""Deployment scenario: size an accelerator for an unseen LLM (§III-E).

The workload the paper's intro motivates: an engineer must pick one
(PE count, L2 buffer) configuration to serve a *new* model that was never
in the training set.  This script trains AIRCHITECT v2 on the 105-model
zoo dataset, then deploys it for Llama2-7B prefill using both paper
methods, comparing against the exhaustive deployment oracle and a
search-based alternative (GAMMA).

Run:  python examples/deploy_llm_accelerator.py  (~3-4 minutes)
"""

from __future__ import annotations

import numpy as np

from repro.core import (AirchitectV2, DeploymentEvaluator, ModelConfig,
                        Stage1Config, Stage1Trainer, Stage2Config,
                        Stage2Trainer)
from repro.dse import DSEProblem, generate_workload_dataset
from repro.search import DesignObjective, GammaConfig, gamma_search
from repro.workloads import all_training_layers, llama


def main() -> None:
    rng = np.random.default_rng(1)
    problem = DSEProblem()

    print("== 1. Train on layers from the 105-model workload zoo")
    dataset = generate_workload_dataset(problem, all_training_layers(), rng,
                                        target_count=5000)
    model = AirchitectV2(ModelConfig(d_model=32, embed_dim=16), problem, rng)
    Stage1Trainer(model, Stage1Config(epochs=10)).train(dataset)
    Stage2Trainer(model, Stage2Config(epochs=10)).train(dataset)

    print("== 2. The unseen target: Llama2-7B prefill @ 2048 tokens")
    workload = llama("llama2_7b", seq=2048)
    print(f"   {workload}")

    evaluator = DeploymentEvaluator(problem)
    tuples = evaluator.layer_inputs(workload)
    pe_idx, l2_idx = model.predict_indices(tuples)

    print("== 3. Per-layer one-shot recommendations")
    space = problem.space
    for layer, count, p, l in zip(workload.layers, workload.counts,
                                  pe_idx, l2_idx):
        print(f"   {layer.name:24s} x{count:4d}  (M={layer.m:5d} N={layer.n:5d}"
              f" K={layer.k:5d}) -> {space.pe_choices[p]:4d} PEs,"
              f" {space.l2_choices[l]:6d} KB")

    print("== 4. Fold into one configuration (deployment methods)")
    m1 = evaluator.method1(workload, pe_idx, l2_idx)
    m2 = evaluator.method2(workload, pe_idx, l2_idx)
    oracle = evaluator.oracle_deployment(workload)
    print(f"   Method 1 (min model latency) : {m1.num_pes:4d} PEs "
          f"{m1.l2_kb:6d} KB -> {m1.total_latency:,.0f} cycles")
    print(f"   Method 2 (bottleneck layer)  : {m2.num_pes:4d} PEs "
          f"{m2.l2_kb:6d} KB -> {m2.total_latency:,.0f} cycles")
    print(f"   Exhaustive oracle            : {oracle.num_pes:4d} PEs "
          f"{oracle.l2_kb:6d} KB -> {oracle.total_latency:,.0f} cycles")
    print(f"   Method 1 vs oracle gap       : "
          f"{100 * (m1.total_latency / oracle.total_latency - 1):.1f}%")

    print("== 5. Search-based alternative: GAMMA on the dominant layer")
    weights = [l.macs * c for l, c in zip(workload.layers, workload.counts)]
    dominant = tuples[int(np.argmax(weights))]
    objective = DesignObjective(problem, dominant)
    result = gamma_search(objective, rng, GammaConfig(population=16,
                                                      generations=10))
    pes = int(space.pe_choices[result.pe_idx])
    l2 = int(space.l2_choices[result.l2_idx])
    ga_latency = evaluator.model_latency(workload, pes, l2)
    print(f"   GAMMA ({result.n_evals} cost-model evals) : {pes:4d} PEs "
          f"{l2:6d} KB -> {ga_latency:,.0f} cycles")
    print(f"   One-shot v2 needed {len(tuples)} forward passes — "
          "no search loop at deployment time.")


if __name__ == "__main__":
    main()
