"""Setuptools shim (the offline environment lacks the ``wheel`` package, so
legacy ``pip install -e .`` via setup.py is the supported editable install)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of AIRCHITECT v2 (DATE 2025): learning the "
                 "hardware accelerator design space through unified representations"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
