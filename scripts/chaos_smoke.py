"""CI chaos smoke: kill a pool worker mid-sweep, trip the breaker, recover.

Two phases against in-process :class:`repro.serving.DSEServer` instances
(in-process so the script can reach the supervisor and assert on its
recovery counters):

1. **Self-healing sweep** — arm ``pool.worker_crash`` (one worker dies
   hard mid-shard), stream a pooled ``POST /sweep``, and require that it
   completes, that a fault-free re-run of the same seeded sweep is
   bit-identical, and that ``/metrics`` shows the recovery
   (``repro_retry_total`` > 0, ``repro_pool_rebuilds_total`` > 0).
2. **Circuit breaker** — arm ``engine.transient_error`` so two
   ``/predict`` calls fail, require the breaker to open (503 +
   ``Retry-After``), then half-open after the reset window and close on
   a successful probe.

Run from the repo root (CI does)::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import multiprocessing
import signal
import sys
import time
import urllib.error
import urllib.request

import numpy as np

from repro.core import AirchitectV2, ModelConfig
from repro.dse import DSEProblem
from repro.faults import inject_faults
from repro.serving import DSEServer

SWEEP_BODY = {"random": 2048, "seed": 7, "chunk_size": 1024}
WORKLOAD = {"m": 64, "n": 512, "k": 256, "dataflow": 1}


def fail(msg: str):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def _tiny_model() -> AirchitectV2:
    config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8)
    return AirchitectV2(config, DSEProblem(), np.random.default_rng(2024))


def _post(server, path: str, doc) -> tuple[int, dict, dict]:
    req = urllib.request.Request(server.url + path,
                                 data=json.dumps(doc).encode())
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


def _sweep_predictions(server) -> list[dict]:
    req = urllib.request.Request(server.url + "/sweep",
                                 data=json.dumps(SWEEP_BODY).encode())
    with urllib.request.urlopen(req, timeout=300) as resp:
        lines = [json.loads(line) for line in resp.read().splitlines()]
    if not lines[-1].get("done"):
        fail(f"sweep stream did not finish cleanly: {lines[-1]}")
    return [p for chunk in lines[1:-1] for p in chunk["predictions"]]


def _metric(text: str, series: str) -> float | None:
    for line in text.splitlines():
        if line.startswith(series + " "):
            return float(line.split()[-1])
    return None


def _scrape(server) -> str:
    with urllib.request.urlopen(server.url + "/metrics", timeout=30) as resp:
        return resp.read().decode()


def phase_self_healing_sweep() -> None:
    if "fork" not in multiprocessing.get_all_start_methods():
        print("SKIP: self-healing sweep (no fork start method)")
        return
    # Arm before the server exists so the lazily-forked pool workers
    # inherit the armed registry; the shared one-shot budget means the
    # crash fires in exactly one worker, once.
    with inject_faults({"pool.worker_crash": 1}):
        server = DSEServer(_tiny_model(), port=0, sweep_workers=2,
                           shard_timeout_s=5.0, max_batch_size=16,
                           max_wait_ms=2)
        with server:
            chaotic = _sweep_predictions(server)
            text = _scrape(server)
            route = server._route(None)
            sup = route.executor._supervisor
            if sup.retries < 1:
                fail(f"worker crash did not trigger a retry "
                     f"(retries={sup.retries})")
            if sup.degraded:
                fail("executor degraded instead of healing the pool")
            retry = _metric(text, 'repro_retry_total'
                                  '{model="default",component="sweep"}')
            rebuilds = _metric(text, 'repro_pool_rebuilds_total'
                                     '{model="default",component="sweep"}')
            if not retry or retry < 1:
                fail(f"repro_retry_total not visible in /metrics ({retry})")
            if not rebuilds or rebuilds < 1:
                fail(f"repro_pool_rebuilds_total not visible ({rebuilds})")
            if _metric(text, 'repro_fault_fired'
                             '{point="pool.worker_crash"}') != 1:
                fail("repro_fault_fired did not record the injected crash")
            # Same seed, crash budget exhausted: the clean pooled run
            # must be bit-identical to the recovered one.
            clean = _sweep_predictions(server)
    if chaotic != clean:
        fail("recovered sweep predictions differ from the fault-free run")
    print(f"PASS: sweep survived a SIGKILLed worker bit-identically "
          f"({len(chaotic)} predictions, {sup.retries} shard retries, "
          f"{sup.rebuilds} pool rebuild(s))")


def phase_circuit_breaker() -> None:
    with inject_faults({"engine.transient_error": 2}):
        server = DSEServer(_tiny_model(), port=0, breaker_threshold=2,
                           breaker_reset_s=0.5, max_batch_size=16,
                           max_wait_ms=2)
        with server:
            for attempt in (1, 2):
                status, doc, _ = _post(server, "/predict", WORKLOAD)
                if status != 500:
                    fail(f"injected failure {attempt} answered {status}, "
                         f"expected 500: {doc}")
            status, doc, headers = _post(server, "/predict", WORKLOAD)
            if status != 503:
                fail(f"open breaker answered {status}, expected 503: {doc}")
            if not headers.get("Retry-After"):
                fail("503 response is missing the Retry-After header")
            if _metric(_scrape(server),
                       'repro_breaker_state{model="default"}') != 2.0:
                fail("repro_breaker_state gauge does not show open (2)")
            time.sleep(0.7)     # past breaker_reset_s: half-open probe
            status, doc, _ = _post(server, "/predict", WORKLOAD)
            if status != 200:
                fail(f"probe after reset answered {status}, "
                     f"expected 200: {doc}")
            if _metric(_scrape(server),
                       'repro_breaker_state{model="default"}') != 0.0:
                fail("breaker did not close after the successful probe")
            opens = server.stats_snapshot()["models"]["default"][
                "breaker"]["opens"]
            if opens != 1:
                fail(f"expected exactly one breaker open, saw {opens}")
    print("PASS: breaker opened on injected failures (503 + Retry-After) "
          "and closed on the half-open probe")


def main() -> None:
    if hasattr(signal, "SIGALRM"):      # watchdog: a hung phase fails CI
        signal.signal(signal.SIGALRM,
                      lambda *_: fail("chaos smoke exceeded 300s"))
        signal.alarm(300)
    phase_self_healing_sweep()
    phase_circuit_breaker()
    print("chaos smoke: all phases passed")


if __name__ == "__main__":
    main()
