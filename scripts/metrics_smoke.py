"""CI smoke for the telemetry endpoint: boot ``repro serve``, scrape
``GET /metrics`` twice, and validate the Prometheus text exposition.

Checks, in order:

1. the server comes up and answers ``/healthz``;
2. a ``POST /predict`` round-trips and echoes an ``X-Trace-Id`` header;
3. ``/metrics`` parses as text exposition: every series belongs to a
   ``# TYPE``-declared family, labels are well-formed, and no series
   (name + label set) appears twice;
4. a second scrape after the request shows every counter monotonically
   non-decreasing, and ``repro_requests_total`` strictly increased.

Run from the repo root (CI does)::

    PYTHONPATH=src python scripts/metrics_smoke.py
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

BOOT_TIMEOUT_S = 120.0
_SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>[^ ]+)$")
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def fail(msg: str):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_exposition(text: str) -> dict[str, float]:
    """Validate the format; returns {series-key: value}."""
    typed: dict[str, str] = {}
    series: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            fail(f"metrics line {lineno}: blank line in exposition")
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                fail(f"metrics line {lineno}: malformed TYPE: {line!r}")
            if parts[2] in typed:
                fail(f"metrics line {lineno}: duplicate TYPE for "
                     f"{parts[2]}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            fail(f"metrics line {lineno}: unknown comment {line!r}")
        match = _SERIES_RE.match(line)
        if not match:
            fail(f"metrics line {lineno}: unparseable series {line!r}")
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            fail(f"metrics line {lineno}: series {name!r} has no TYPE")
        labels = match.group("labels")
        if labels:
            for item in labels.split('",'):
                item = item if item.endswith('"') else item + '"'
                if not _LABEL_RE.match(item):
                    fail(f"metrics line {lineno}: bad label {item!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            fail(f"metrics line {lineno}: non-numeric value {line!r}")
        key = f"{name}{{{labels or ''}}}"
        if key in series:
            fail(f"metrics line {lineno}: duplicate series {key}")
        series[key] = value
    if not typed:
        fail("no # TYPE lines in exposition")
    return series


def counters_of(series: dict[str, float]) -> dict[str, float]:
    return {k: v for k, v in series.items()
            if k.split("{", 1)[0].endswith("_total")}


def main() -> int:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--untrained",
         "--scale", "tiny", "--port", "0"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    url = None
    try:
        # The bind address goes to stderr once the model is built.
        deadline = time.monotonic() + BOOT_TIMEOUT_S
        for line in proc.stderr:
            match = re.search(r"http://[0-9.]+:\d+", line)
            if match:
                url = match.group(0)
                break
            if time.monotonic() > deadline:
                break
        if url is None:
            fail("server never printed its bind address")
        for _ in range(100):
            try:
                with urllib.request.urlopen(url + "/healthz", timeout=5):
                    break
            except (urllib.error.URLError, OSError):
                time.sleep(0.1)
        else:
            fail("/healthz never came up")

        first = parse_exposition(
            urllib.request.urlopen(url + "/metrics", timeout=10)
            .read().decode())
        print(f"scrape 1: {len(first)} series OK")

        req = urllib.request.Request(
            url + "/predict",
            data=json.dumps({"m": 64, "n": 64, "k": 64}).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req, timeout=30) as resp:
            if resp.status != 200:
                fail(f"/predict answered {resp.status}")
            trace_id = resp.headers.get("X-Trace-Id")
            resp.read()
        if not trace_id:
            fail("/predict response carried no X-Trace-Id header")
        print(f"predict OK (trace {trace_id})")

        second = parse_exposition(
            urllib.request.urlopen(url + "/metrics", timeout=10)
            .read().decode())
        print(f"scrape 2: {len(second)} series OK")

        before, after = counters_of(first), counters_of(second)
        for key, value in before.items():
            if key not in after:
                fail(f"counter {key} disappeared between scrapes")
            if after[key] < value:
                fail(f"counter {key} went backwards: "
                     f"{value} -> {after[key]}")
        requests_series = [key for key in after
                           if key.startswith("repro_requests_total")]
        if not requests_series:
            fail("no repro_requests_total series exported")
        if not any(after[key] > before.get(key, 0.0)
                   for key in requests_series):
            fail("repro_requests_total did not increase after /predict")
        print("counter monotonicity OK")
        print("metrics smoke PASSED")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
