"""Concurrent-client serving: batcher speedup, tail latency, backpressure,
and the request-tracing overhead gate.

Four gates, one per serving-subsystem promise:

* **Batcher speedup** — with N concurrent clients issuing
  single-workload requests, the dynamic batcher (which coalesces them
  into engine micro-batches) must deliver >= 3x the throughput of the
  unbatched path (one engine forward pass per request), with predictions
  bit-identical to :class:`repro.core.DSEPredictor`.
* **Sustained-load SLO** — a client fleet hammering the asyncio HTTP
  front-end over keep-alive connections for a fixed wall-clock window
  must keep client-observed p99 latency under ``--p99-limit``, with the
  server's own ``/stats`` p50/p95/p99 histogram recorded alongside.
* **Saturation behaviour** — a route with a tiny ``max_queue`` and a
  deliberately slow engine must answer the overflow with HTTP 429 +
  ``Retry-After`` (bounded admission), never by queueing unboundedly.
* **Tracing overhead** — requests carrying a trace context (client span
  propagated through the batcher's queue.wait and engine.forward spans,
  PR 7's telemetry layer) must cost <= 3% throughput vs plain requests.
* **Fault-hook overhead** — the disarmed ``repro.faults.fire`` probes
  threaded through the pool/persistence/serving layers (PR 9) must cost
  <= 1% of a single-row engine pass per request, measured as the
  per-call price of a disarmed probe times a generous per-request hook
  count against the bare engine p50.

Run standalone to record the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        --clients 16 --requests-per-client 64 --duration 5 \
        --output BENCH_serving.json

or under pytest (the tests are marked ``slow``)::

    pytest benchmarks/bench_serving.py --benchmark-only -m slow -s

``--smoke`` runs a seconds-long configuration for CI: the batcher must
beat the per-request loop at all, sustained p99 stays under a lenient
CI bound, and saturation must produce at least one 429 with its
Retry-After header — so serving regressions fail PRs instead of
releases.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import (AirchitectV2, BatchedDSEPredictor, DSEPredictor,
                        ModelConfig)
from repro.dse import DSEProblem
from repro.faults import active as _active_faults
from repro.faults import fire
from repro.obs import Tracer
from repro.serving import AsyncDSEServer, DynamicBatcher, ServingStats

SPEEDUP_TARGET = 3.0
P99_LIMIT_S = 0.5
SMOKE_P99_LIMIT_S = 5.0
OBS_OVERHEAD_LIMIT = 0.03
#: Hooks a single request could plausibly cross (admission, engine,
#: per-shard dispatch...) — deliberately generous.
FAULT_HOOKS_PER_REQUEST = 8
FAULT_OVERHEAD_LIMIT = 0.01


def _drive_clients(n_clients: int, requests_per_client: int, inputs,
                   handle_one) -> tuple[float, np.ndarray, np.ndarray]:
    """Fire the client fleet; returns (elapsed, pe_idx, l2_idx) in input
    order.  ``handle_one(row) -> (pe, l2)`` is the serving path under test."""
    total = n_clients * requests_per_client
    pe_out = np.empty(total, dtype=np.int64)
    l2_out = np.empty(total, dtype=np.int64)
    barrier = threading.Barrier(n_clients + 1)

    def client(cid: int) -> None:
        barrier.wait()
        for r in range(requests_per_client):
            i = cid * requests_per_client + r
            pe_out[i], l2_out[i] = handle_one(inputs[i])

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - start, pe_out, l2_out


def run_bench(clients: int = 16, requests_per_client: int = 64,
              max_batch_size: int = 64, max_wait_ms: float = 2.0,
              seed: int = 0) -> dict:
    problem = DSEProblem()
    rng = np.random.default_rng(seed)
    model = AirchitectV2(ModelConfig(), problem, rng)
    total = clients * requests_per_client
    inputs = problem.sample_inputs(total, rng)

    reference = DSEPredictor(model)
    reference.predict_indices(inputs[0])               # warm-up (lazy allocs)

    # Unbatched per-request path: every client request is its own
    # single-row forward pass (what serving looks like without a batcher).
    loop_elapsed, loop_pe, loop_l2 = _drive_clients(
        clients, requests_per_client, inputs,
        lambda row: tuple(int(x[0]) for x in reference.predict_indices(row)))

    # Dynamic batcher: the same fleet, requests coalesced into micro-batches.
    stats = ServingStats()
    engine = BatchedDSEPredictor(model, micro_batch_size=1024,
                                 on_batch=stats.record_forward)
    with DynamicBatcher(engine, max_batch_size=max_batch_size,
                        max_wait_ms=max_wait_ms, stats=stats,
                        start=True) as batcher:
        def one(row):
            served = batcher.predict(*map(int, row), timeout=60)
            return served.pe_idx, served.l2_idx
        batched_elapsed, pe, l2 = _drive_clients(
            clients, requests_per_client, inputs, one)

    ref_pe, ref_l2 = reference.predict_indices(inputs)
    identical = bool(np.array_equal(pe, ref_pe) and np.array_equal(l2, ref_l2)
                     and np.array_equal(loop_pe, ref_pe)
                     and np.array_equal(loop_l2, ref_l2))
    loop_rps = total / max(loop_elapsed, 1e-12)
    batched_rps = total / max(batched_elapsed, 1e-12)
    return {"clients": clients,
            "requests_per_client": requests_per_client,
            "requests_total": total,
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
            "loop_elapsed_s": loop_elapsed,
            "batched_elapsed_s": batched_elapsed,
            "loop_requests_per_sec": loop_rps,
            "batched_requests_per_sec": batched_rps,
            "speedup": batched_rps / max(loop_rps, 1e-12),
            "forward_passes": stats.forward_passes,
            "mean_batch_size": stats.mean_batch_size,
            "mean_queue_wait_ms": stats.mean_queue_wait_s * 1e3,
            "identical_predictions": identical,
            "speedup_target": SPEEDUP_TARGET}


def run_obs_overhead(clients: int = 16, requests_per_client: int = 64,
                     max_batch_size: int = 64, max_wait_ms: float = 2.0,
                     rounds: int = 3, seed: int = 0) -> dict:
    """The instrumentation gate of the telemetry layer (PR 7).

    One concurrent-client fleet drives the batcher with *interleaved*
    requests: each client alternates plain requests and requests that
    carry a trace context (a client span whose id propagates through the
    batcher's queue.wait and the engine's forward spans, all landing in
    a :class:`~repro.obs.Tracer` ring).  Because both populations share
    every batch, every GC pause and every scheduler hiccup, comparing
    their median latencies is a *paired* measurement: drift and jitter
    cancel, leaving the per-request cost of carrying a trace.  Separate
    all-plain/all-traced drives were hopeless here — a dynamic batcher
    quantizes latency into flush cycles, so microsecond perturbations
    chaotically shift which cycle a request lands in and wall-clock
    differences of either sign dwarf the instrumentation under test.
    """
    problem = DSEProblem()
    rng = np.random.default_rng(seed)
    model = AirchitectV2(ModelConfig(), problem, rng)
    total = clients * requests_per_client
    inputs = problem.sample_inputs(total, rng)
    DSEPredictor(model).predict_indices(inputs[0])     # warm-up (lazy allocs)

    tracer = Tracer(ring_size=4 * total * rounds)
    latencies: dict[bool, list[float]] = {False: [], True: []}
    elapsed_total = 0.0

    stats = ServingStats()
    engine = BatchedDSEPredictor(model, micro_batch_size=1024,
                                 on_batch=stats.record_forward)
    with DynamicBatcher(engine, max_batch_size=max_batch_size,
                        max_wait_ms=max_wait_ms, stats=stats,
                        start=True) as batcher:
        counter = {"i": 0}

        def one(row):
            # Alternate per call; the dict counter is GIL-atomic enough
            # for a measurement split (exact balance does not matter).
            counter["i"] += 1
            traced = counter["i"] % 2 == 0
            begin = time.perf_counter()
            if traced:
                with tracer.span("client.request") as span:
                    served = batcher.predict(*map(int, row), timeout=60,
                                             trace=span.context)
            else:
                served = batcher.predict(*map(int, row), timeout=60)
            latencies[traced].append(time.perf_counter() - begin)
            return served.pe_idx, served.l2_idx

        for _ in range(rounds):
            seconds, _, _ = _drive_clients(
                clients, requests_per_client, inputs, one)
            elapsed_total += seconds
        spans_recorded = len(tracer.export())

    plain_p50 = float(np.median(latencies[False]))
    traced_p50 = float(np.median(latencies[True]))
    overhead = max(traced_p50 / max(plain_p50, 1e-12) - 1.0, 0.0)
    return {"clients": clients,
            "requests_per_client": requests_per_client,
            "rounds": rounds,
            "requests_measured": {"plain": len(latencies[False]),
                                  "traced": len(latencies[True])},
            "requests_per_sec": rounds * total / max(elapsed_total, 1e-12),
            "plain_p50_ms": plain_p50 * 1e3,
            "traced_p50_ms": traced_p50 * 1e3,
            "obs_overhead": overhead,
            "overhead_limit": OBS_OVERHEAD_LIMIT,
            "overhead_ok": overhead <= OBS_OVERHEAD_LIMIT,
            "spans_recorded": spans_recorded}


def run_sustained(duration_s: float = 5.0, clients: int = 8,
                  max_batch_size: int = 64, max_wait_ms: float = 2.0,
                  p99_limit_s: float = P99_LIMIT_S, seed: int = 0) -> dict:
    """Sustained load against the asyncio front-end: keep-alive client
    fleet, client-observed p50/p95/p99, server-side ``/stats`` histogram."""
    problem = DSEProblem()
    rng = np.random.default_rng(seed)
    model = AirchitectV2(ModelConfig(), problem, rng)
    inputs = problem.sample_inputs(4096, rng)
    DSEPredictor(model).predict_indices(inputs[0])     # warm-up (lazy allocs)

    latencies: list[list[float]] = [[] for _ in range(clients)]
    non_200 = [0] * clients
    stop = threading.Event()

    server = AsyncDSEServer(model, port=0, max_batch_size=max_batch_size,
                            max_wait_ms=max_wait_ms)
    with server:
        host, port = server.address

        def client(cid: int) -> None:
            conn = http.client.HTTPConnection(host, port, timeout=30)
            i = cid
            while not stop.is_set():
                row = inputs[i % len(inputs)]
                i += clients
                body = json.dumps({"m": int(row[0]), "n": int(row[1]),
                                   "k": int(row[2]),
                                   "dataflow": int(row[3])})
                begin = time.perf_counter()
                try:
                    conn.request("POST", "/predict", body)
                    resp = conn.getresponse()
                    resp.read()
                except (http.client.HTTPException, OSError):
                    conn.close()    # dropped keep-alive: reconnect
                    conn = http.client.HTTPConnection(host, port,
                                                      timeout=30)
                    continue
                latencies[cid].append(time.perf_counter() - begin)
                if resp.status != 200:
                    non_200[cid] += 1
            conn.close()

        threads = [threading.Thread(target=client, args=(c,))
                   for c in range(clients)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        time.sleep(duration_s)
        stop.set()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        with urllib.request.urlopen(server.url + "/stats",
                                    timeout=10) as resp:
            server_stats = json.loads(resp.read())

    lat = np.array([s for per_client in latencies for s in per_client])
    p50, p95, p99 = (float(np.percentile(lat, q)) if len(lat) else 0.0
                     for q in (50, 95, 99))
    return {"duration_s": duration_s,
            "clients": clients,
            "requests_total": int(len(lat)),
            "non_200_responses": int(sum(non_200)),
            "requests_per_sec": len(lat) / max(elapsed, 1e-12),
            "client_p50_ms": p50 * 1e3,
            "client_p95_ms": p95 * 1e3,
            "client_p99_ms": p99 * 1e3,
            "server_latency": server_stats.get("latency"),
            "p99_limit_s": p99_limit_s,
            "p99_ok": bool(len(lat)) and p99 <= p99_limit_s}


def run_saturation(seed: int = 0) -> dict:
    """Overload a max_queue=2 route behind a deliberately slow engine:
    the overflow must answer 429 + Retry-After, and the route must admit
    again once the burst subsides."""
    problem = DSEProblem()
    rng = np.random.default_rng(seed)
    model = AirchitectV2(ModelConfig(), problem, rng)
    server = AsyncDSEServer(model, port=0, max_batch_size=4, max_wait_ms=1,
                            max_queue=2, retry_after_s=1.0)
    route = server._route(None)
    real = route.engine.predict_indices

    def slow(batch):
        time.sleep(0.05)        # one engine pass outlives the whole burst
        return real(batch)

    route.engine.predict_indices = slow
    counts = {"200": 0, "429": 0, "other": 0}
    retry_after: list[str] = []
    lock = threading.Lock()

    with server:
        def burst_client(cid: int) -> None:
            for r in range(4):
                req = urllib.request.Request(
                    server.url + "/predict",
                    data=json.dumps({"m": 8 + cid, "n": 8 + r,
                                     "k": 8}).encode())
                try:
                    with urllib.request.urlopen(req, timeout=30) as resp:
                        status, header = resp.status, None
                        resp.read()
                except urllib.error.HTTPError as err:
                    status = err.code
                    header = err.headers.get("Retry-After")
                    err.read()
                with lock:
                    counts[str(status) if status in (200, 429)
                           else "other"] += 1
                    if status == 429 and header is not None:
                        retry_after.append(header)

        threads = [threading.Thread(target=burst_client, args=(c,))
                   for c in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # The burst is over: the bounded queue must admit again.
        req = urllib.request.Request(
            server.url + "/predict",
            data=json.dumps({"m": 64, "n": 64, "k": 64}).encode())
        with urllib.request.urlopen(req, timeout=30) as resp:
            recovered = resp.status == 200
            resp.read()

    return {"max_queue": 2,
            "burst_clients": 12,
            "responses_200": counts["200"],
            "responses_429": counts["429"],
            "responses_other": counts["other"],
            "retry_after_headers": sorted(set(retry_after)),
            "recovered_after_burst": bool(recovered),
            "backpressure_ok": counts["429"] >= 1 and counts["other"] == 0
            and len(retry_after) == counts["429"] and bool(recovered)}


def run_fault_overhead(iterations: int = 200_000, engine_reps: int = 300,
                       seed: int = 0) -> dict:
    """The robustness layer's "free when disarmed" promise (PR 9).

    Times ``fire()`` with no registry armed — the steady-state of every
    production process — then prices a request as
    ``FAULT_HOOKS_PER_REQUEST`` disarmed probes against the bare
    single-row engine p50.  The engine pass is the *floor* of any served
    request (no HTTP, no batcher queueing), so overhead relative to it
    upper-bounds the overhead on a real request.
    """
    if _active_faults() is not None:
        raise RuntimeError("fault overhead must be measured disarmed; "
                           "unset REPRO_FAULTS first")
    begin = time.perf_counter()
    for _ in range(iterations):
        fire("engine.transient_error")
    per_call_s = (time.perf_counter() - begin) / iterations

    problem = DSEProblem()
    rng = np.random.default_rng(seed)
    model = AirchitectV2(ModelConfig(), problem, rng)
    reference = DSEPredictor(model)
    row = problem.sample_inputs(1, rng)
    reference.predict_indices(row)                  # warm-up (lazy allocs)
    samples = []
    for _ in range(engine_reps):
        begin = time.perf_counter()
        reference.predict_indices(row)
        samples.append(time.perf_counter() - begin)
    engine_p50_s = float(np.median(samples))

    per_request_s = per_call_s * FAULT_HOOKS_PER_REQUEST
    overhead = per_request_s / max(engine_p50_s, 1e-12)
    return {"iterations": iterations,
            "disarmed_fire_ns": per_call_s * 1e9,
            "hooks_per_request": FAULT_HOOKS_PER_REQUEST,
            "engine_p50_us": engine_p50_s * 1e6,
            "fault_overhead": overhead,
            "fault_overhead_limit": FAULT_OVERHEAD_LIMIT,
            "fault_overhead_ok": overhead <= FAULT_OVERHEAD_LIMIT}


def run_smoke() -> dict:
    """Seconds-long CI configuration: asserts direction, not magnitude."""
    result = run_bench(clients=8, requests_per_client=12)
    result["smoke"] = True
    result["speedup_target"] = 1.0
    result["sustained"] = run_sustained(duration_s=1.5, clients=4,
                                        p99_limit_s=SMOKE_P99_LIMIT_S)
    result["saturation"] = run_saturation()
    result["observability"] = run_obs_overhead(clients=8,
                                               requests_per_client=12,
                                               rounds=2)
    result["faults"] = run_fault_overhead(iterations=50_000, engine_reps=100)
    return result


@pytest.mark.slow
def test_dynamic_batcher_beats_per_request_loop(benchmark):
    """>= 3x concurrent-client throughput with identical predictions."""
    result = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    print(json.dumps(result, indent=2))
    assert result["identical_predictions"]
    assert result["speedup"] >= SPEEDUP_TARGET


@pytest.mark.slow
def test_sustained_load_meets_p99_slo():
    """Client-observed p99 under the SLO across a 5s load window."""
    result = run_sustained()
    print(json.dumps(result, indent=2))
    assert result["non_200_responses"] == 0
    assert result["p99_ok"]
    assert result["server_latency"]["count"] > 0


@pytest.mark.slow
def test_saturated_route_backpressures_with_429():
    result = run_saturation()
    print(json.dumps(result, indent=2))
    assert result["backpressure_ok"]


@pytest.mark.slow
def test_tracing_overhead_within_gate():
    """Traced requests cost <= 3% throughput vs plain ones."""
    result = run_obs_overhead()
    print(json.dumps(result, indent=2))
    assert result["spans_recorded"] > 0
    assert result["overhead_ok"]


@pytest.mark.slow
def test_disarmed_fault_hooks_within_gate():
    """Disarmed fault probes cost <= 1% of a bare engine pass."""
    result = run_fault_overhead()
    print(json.dumps(result, indent=2))
    assert result["fault_overhead_ok"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--requests-per-client", type=int, default=64)
    parser.add_argument("--max-batch-size", type=int, default=64)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--duration", type=float, default=5.0,
                        help="sustained-load window in seconds (default 5)")
    parser.add_argument("--p99-limit", type=float, default=P99_LIMIT_S,
                        help="sustained-load p99 latency gate in seconds "
                             f"(default {P99_LIMIT_S:g})")
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long CI mode: the batcher must beat "
                             "the per-request loop, sustained p99 stays "
                             "under a lenient bound, and saturation must "
                             "answer 429 + Retry-After")
    parser.add_argument("--output", default=None,
                        help="also write the JSON record to this path "
                             "(e.g. BENCH_serving.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        result = run_smoke()
    else:
        result = run_bench(clients=args.clients,
                           requests_per_client=args.requests_per_client,
                           max_batch_size=args.max_batch_size,
                           max_wait_ms=args.max_wait_ms, seed=args.seed)
        result["sustained"] = run_sustained(duration_s=args.duration,
                                            clients=args.clients,
                                            max_batch_size=args.max_batch_size,
                                            max_wait_ms=args.max_wait_ms,
                                            p99_limit_s=args.p99_limit,
                                            seed=args.seed)
        result["saturation"] = run_saturation(seed=args.seed)
        result["observability"] = run_obs_overhead(
            clients=args.clients,
            requests_per_client=args.requests_per_client,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms, seed=args.seed)
        result["faults"] = run_fault_overhead(seed=args.seed)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    failed = False
    if not result["identical_predictions"]:
        print("FAIL: served predictions diverge from DSEPredictor",
              file=sys.stderr)
        failed = True
    if result["speedup"] < result["speedup_target"]:
        print(f"FAIL: speedup {result['speedup']:.2f}x < "
              f"{result['speedup_target']:.1f}x target", file=sys.stderr)
        failed = True
    sustained = result["sustained"]
    if sustained["non_200_responses"]:
        print(f"FAIL: sustained load saw "
              f"{sustained['non_200_responses']} non-200 responses",
              file=sys.stderr)
        failed = True
    if not sustained["p99_ok"]:
        print(f"FAIL: sustained p99 {sustained['client_p99_ms']:.1f}ms "
              f"exceeds the {sustained['p99_limit_s'] * 1e3:.0f}ms gate",
              file=sys.stderr)
        failed = True
    if not result["saturation"]["backpressure_ok"]:
        print("FAIL: saturated route did not backpressure with "
              "429 + Retry-After", file=sys.stderr)
        failed = True
    obs = result["observability"]
    if not obs["spans_recorded"]:
        print("FAIL: traced requests recorded no spans", file=sys.stderr)
        failed = True
    if not obs["overhead_ok"]:
        print(f"FAIL: tracing overhead {obs['obs_overhead'] * 100:.2f}% "
              f"exceeds the {obs['overhead_limit'] * 100:.0f}% gate",
              file=sys.stderr)
        failed = True
    fault = result["faults"]
    if not fault["fault_overhead_ok"]:
        print(f"FAIL: disarmed fault hooks cost "
              f"{fault['fault_overhead'] * 100:.3f}% of an engine pass, "
              f"over the {fault['fault_overhead_limit'] * 100:.0f}% gate",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
