"""Concurrent-client serving: dynamic batcher vs the per-request loop.

The acceptance gate of the serving subsystem: with N concurrent clients
issuing single-workload requests, the dynamic batcher (which coalesces
them into engine micro-batches) must deliver >= 3x the throughput of the
unbatched path (one engine forward pass per request), with predictions
bit-identical to :class:`repro.core.DSEPredictor`.

Run standalone to record the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        --clients 16 --requests-per-client 64 --output BENCH_serving.json

or under pytest (the test is marked ``slow``)::

    pytest benchmarks/bench_serving.py --benchmark-only -m slow -s

``--smoke`` runs a seconds-long configuration for CI that only asserts
the batcher beats the per-request loop at all (and predictions stay
identical), so serving-throughput regressions fail PRs instead of
releases.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

import numpy as np
import pytest

from repro.core import (AirchitectV2, BatchedDSEPredictor, DSEPredictor,
                        ModelConfig)
from repro.dse import DSEProblem
from repro.serving import DynamicBatcher, ServingStats

SPEEDUP_TARGET = 3.0


def _drive_clients(n_clients: int, requests_per_client: int, inputs,
                   handle_one) -> tuple[float, np.ndarray, np.ndarray]:
    """Fire the client fleet; returns (elapsed, pe_idx, l2_idx) in input
    order.  ``handle_one(row) -> (pe, l2)`` is the serving path under test."""
    total = n_clients * requests_per_client
    pe_out = np.empty(total, dtype=np.int64)
    l2_out = np.empty(total, dtype=np.int64)
    barrier = threading.Barrier(n_clients + 1)

    def client(cid: int) -> None:
        barrier.wait()
        for r in range(requests_per_client):
            i = cid * requests_per_client + r
            pe_out[i], l2_out[i] = handle_one(inputs[i])

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - start, pe_out, l2_out


def run_bench(clients: int = 16, requests_per_client: int = 64,
              max_batch_size: int = 64, max_wait_ms: float = 2.0,
              seed: int = 0) -> dict:
    problem = DSEProblem()
    rng = np.random.default_rng(seed)
    model = AirchitectV2(ModelConfig(), problem, rng)
    total = clients * requests_per_client
    inputs = problem.sample_inputs(total, rng)

    reference = DSEPredictor(model)
    reference.predict_indices(inputs[0])               # warm-up (lazy allocs)

    # Unbatched per-request path: every client request is its own
    # single-row forward pass (what serving looks like without a batcher).
    loop_elapsed, loop_pe, loop_l2 = _drive_clients(
        clients, requests_per_client, inputs,
        lambda row: tuple(int(x[0]) for x in reference.predict_indices(row)))

    # Dynamic batcher: the same fleet, requests coalesced into micro-batches.
    stats = ServingStats()
    engine = BatchedDSEPredictor(model, micro_batch_size=1024,
                                 on_batch=stats.record_forward)
    with DynamicBatcher(engine, max_batch_size=max_batch_size,
                        max_wait_ms=max_wait_ms, stats=stats,
                        start=True) as batcher:
        def one(row):
            served = batcher.predict(*map(int, row), timeout=60)
            return served.pe_idx, served.l2_idx
        batched_elapsed, pe, l2 = _drive_clients(
            clients, requests_per_client, inputs, one)

    ref_pe, ref_l2 = reference.predict_indices(inputs)
    identical = bool(np.array_equal(pe, ref_pe) and np.array_equal(l2, ref_l2)
                     and np.array_equal(loop_pe, ref_pe)
                     and np.array_equal(loop_l2, ref_l2))
    loop_rps = total / max(loop_elapsed, 1e-12)
    batched_rps = total / max(batched_elapsed, 1e-12)
    return {"clients": clients,
            "requests_per_client": requests_per_client,
            "requests_total": total,
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
            "loop_elapsed_s": loop_elapsed,
            "batched_elapsed_s": batched_elapsed,
            "loop_requests_per_sec": loop_rps,
            "batched_requests_per_sec": batched_rps,
            "speedup": batched_rps / max(loop_rps, 1e-12),
            "forward_passes": stats.forward_passes,
            "mean_batch_size": stats.mean_batch_size,
            "mean_queue_wait_ms": stats.mean_queue_wait_s * 1e3,
            "identical_predictions": identical,
            "speedup_target": SPEEDUP_TARGET}


def run_smoke() -> dict:
    """Seconds-long CI configuration: asserts direction, not magnitude."""
    result = run_bench(clients=8, requests_per_client=12)
    result["smoke"] = True
    result["speedup_target"] = 1.0
    return result


@pytest.mark.slow
def test_dynamic_batcher_beats_per_request_loop(benchmark):
    """>= 3x concurrent-client throughput with identical predictions."""
    result = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    print(json.dumps(result, indent=2))
    assert result["identical_predictions"]
    assert result["speedup"] >= SPEEDUP_TARGET


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--requests-per-client", type=int, default=64)
    parser.add_argument("--max-batch-size", type=int, default=64)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long CI mode: only asserts the "
                             "batcher beats the per-request loop at all")
    parser.add_argument("--output", default=None,
                        help="also write the JSON record to this path "
                             "(e.g. BENCH_serving.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        result = run_smoke()
    else:
        result = run_bench(clients=args.clients,
                           requests_per_client=args.requests_per_client,
                           max_batch_size=args.max_batch_size,
                           max_wait_ms=args.max_wait_ms, seed=args.seed)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    if not result["identical_predictions"]:
        print("FAIL: served predictions diverge from DSEPredictor",
              file=sys.stderr)
        return 1
    if result["speedup"] < result["speedup_target"]:
        print(f"FAIL: speedup {result['speedup']:.2f}x < "
              f"{result['speedup_target']:.1f}x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
