"""Benchmark: regenerate Table III (accuracy vs learning-based baselines).

Paper: GANDSE 84.39 | AIRCHITECT v1 77.60 | AIRCHITECT v2 91.17 (%).
Shape to reproduce: v2 is the most accurate technique, with the lowest
latency regret.
"""

from __future__ import annotations

from repro.experiments import run_table3

from .conftest import run_once


def test_table3_baseline_comparison(benchmark, scale, workspace):
    out = run_once(benchmark, run_table3, scale, workspace)
    print("\n" + out["table"])

    results = out["results"]
    benchmark.extra_info["accuracy_pct"] = {
        name: round(100 * metrics.accuracy, 2)
        for name, metrics in results.items()}

    v2 = results["airchitect_v2"]
    assert v2.accuracy >= results["airchitect_v1"].accuracy
    assert v2.accuracy >= results["gandse"].accuracy
