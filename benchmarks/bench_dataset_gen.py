"""Dataset labelling throughput: sharded multiprocessing vs serial oracle.

The acceptance gate of the parallel labelling path (PR 3): labelling a
random Table-I input batch through :class:`repro.dse.ShardedLabeller` with
>= 4 workers must be >= 2x faster than the serial
:meth:`ExhaustiveOracle.solve`, with bit-identical labels.

The win comes from two places: process fan-out (one grid solve per core)
and bounded shards (``max_shard_size`` keeps each worker's grid
intermediates cache-sized, where the serial path materialises
``samples x 768`` float64 grids in one pass) — so the speedup typically
exceeds the core count on large batches.

Run standalone to record the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_dataset_gen.py \
        --samples 40000 --workers 4 --output BENCH_dataset_gen.json

or under pytest (the test is marked ``slow``)::

    pytest benchmarks/bench_dataset_gen.py --benchmark-only -m slow -s
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np
import pytest

from repro.dse import DSEProblem, ExhaustiveOracle, ShardedLabeller

SPEEDUP_TARGET = 2.0
WORKERS_DEFAULT = 4


def run_bench(samples: int = 40000, workers: int = WORKERS_DEFAULT,
              seed: int = 0) -> dict:
    problem = DSEProblem()
    inputs = problem.sample_inputs(samples, np.random.default_rng(seed))

    # Serial path: one cold oracle, cache disabled so we measure the grid
    # solve itself (the dataset-generation workload labels each row once).
    serial_oracle = ExhaustiveOracle(problem, cache_size=0)
    start = time.perf_counter()
    serial = serial_oracle.solve(inputs)
    serial_elapsed = time.perf_counter() - start

    with ShardedLabeller(ExhaustiveOracle(problem, cache_size=0),
                         num_workers=workers) as labeller:
        start = time.perf_counter()
        sharded = labeller.label(inputs)
        sharded_elapsed = time.perf_counter() - start
        pool_workers = labeller.num_workers

    identical = bool(np.array_equal(serial.pe_idx, sharded.pe_idx)
                     and np.array_equal(serial.l2_idx, sharded.l2_idx)
                     and np.array_equal(serial.best_cost, sharded.best_cost))
    return {"samples": samples,
            "workers": pool_workers,
            "serial_elapsed_s": serial_elapsed,
            "sharded_elapsed_s": sharded_elapsed,
            "serial_samples_per_sec": samples / max(serial_elapsed, 1e-12),
            "sharded_samples_per_sec": samples / max(sharded_elapsed, 1e-12),
            "speedup": serial_elapsed / max(sharded_elapsed, 1e-12),
            "identical_labels": identical,
            "speedup_target": SPEEDUP_TARGET}


@pytest.mark.slow
def test_sharded_labelling_beats_serial(benchmark):
    """>= 2x labelling throughput on >= 4 workers, bit-identical labels."""
    result = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    print(json.dumps(result, indent=2))
    assert result["identical_labels"]
    if result["workers"] >= 4:
        assert result["speedup"] >= SPEEDUP_TARGET


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=40000)
    parser.add_argument("--workers", type=int, default=WORKERS_DEFAULT)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None,
                        help="also write the JSON record to this path "
                             "(e.g. BENCH_dataset_gen.json)")
    args = parser.parse_args(argv)

    result = run_bench(samples=args.samples, workers=args.workers,
                       seed=args.seed)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    if not result["identical_labels"]:
        print("FAIL: sharded labels diverge from the serial oracle",
              file=sys.stderr)
        return 1
    if result["workers"] >= 4 and result["speedup"] < SPEEDUP_TARGET:
        print(f"FAIL: speedup {result['speedup']:.2f}x < "
              f"{SPEEDUP_TARGET:.0f}x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
