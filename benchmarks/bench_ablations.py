"""Benchmarks: extension ablations (deployment methods, metrics, tolerance).

Not paper figures — these regenerate the design-choice studies DESIGN.md
§5 calls out, quantifying (a) the Method-1 vs Method-2 deployment gap,
(b) metric-dependent optimal-design shifts, and (c) the epsilon-cheapest
oracle rule's cost/stability trade-off.
"""

from __future__ import annotations

from repro.experiments.ablations import (run_deployment_ablation,
                                         run_metric_ablation,
                                         run_tolerance_ablation)

from .conftest import run_once


def test_ablation_deployment_methods(benchmark, scale, workspace):
    out = run_once(benchmark, run_deployment_ablation, scale, workspace)
    print("\n" + out["table"])
    for name, entry in out["results"].items():
        assert entry["method1"].total_latency <= \
            entry["method2"].total_latency + 1e-9, name


def test_ablation_optimisation_metric(benchmark, scale):
    out = run_once(benchmark, run_metric_ablation, scale)
    print("\n" + out["table"])
    stats = out["stats"]
    assert stats["energy"]["mean_pes"] <= stats["latency"]["mean_pes"]
    benchmark.extra_info["mean_pes"] = {
        metric: round(entry["mean_pes"], 1)
        for metric, entry in stats.items()}


def test_ablation_oracle_tolerance(benchmark, scale):
    out = run_once(benchmark, run_tolerance_ablation, scale)
    print("\n" + out["table"])
    stats = out["stats"]
    # Looser tolerance -> cheaper configs, bounded extra cost.
    assert stats[0.10]["mean_pes"] <= stats[0.0]["mean_pes"]
    assert stats[0.10]["mean_cost_ratio"] <= 1.10 + 1e-9
