"""Micro-benchmarks of the substrates (not paper artefacts).

These time the hot paths that make the reproduction feasible: vectorised
cost-model grid evaluation, exhaustive oracle labelling, and one training
step of the v2 model.  Useful for catching performance regressions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (AirchitectV2, BatchedDSEPredictor, ModelConfig,
                        Stage1Config, Stage1Trainer)
from repro.dse import DSEProblem, ExhaustiveOracle, generate_random_dataset
from repro.maestro import CostModel


@pytest.fixture(scope="module")
def problem():
    return DSEProblem()


def test_cost_model_grid_throughput(benchmark, problem):
    """256 layers x 768 configs in one vectorised pass."""
    cm = CostModel()
    rng = np.random.default_rng(0)
    m = rng.integers(1, 257, 256)
    n = rng.integers(1, 1678, 256)
    k = rng.integers(1, 1186, 256)
    space = problem.space

    result = benchmark(cm.evaluate_grid, m, n, k, "os",
                       space.pe_choices, space.l2_choices)
    assert result.latency_cycles.shape == (256, 64, 12)


def test_oracle_labelling_throughput(benchmark, problem):
    """Exhaustive optimal labelling of 512 random samples."""
    oracle = ExhaustiveOracle(problem)
    inputs = problem.sample_inputs(512, np.random.default_rng(1))

    result = benchmark(oracle.solve, inputs)
    assert len(result.pe_idx) == 512


def test_v2_inference_throughput(benchmark, problem):
    """One-shot DSE prediction for 1024 workloads (batched engine)."""
    rng = np.random.default_rng(2)
    model = AirchitectV2(ModelConfig(d_model=32, n_layers=2, n_heads=4,
                                     embed_dim=16), problem, rng)
    engine = BatchedDSEPredictor(model, micro_batch_size=256)
    inputs = problem.sample_inputs(1024, rng)

    pe, l2 = benchmark(engine.predict_indices, inputs)
    assert len(pe) == 1024


def test_v2_training_epoch(benchmark, problem):
    """One stage-1 epoch over 1000 samples (the training hot loop)."""
    rng = np.random.default_rng(3)
    data = generate_random_dataset(problem, 1000, rng)
    model = AirchitectV2(ModelConfig(d_model=32, n_layers=1, n_heads=4,
                                     embed_dim=16), problem, rng)
    trainer = Stage1Trainer(model, Stage1Config(epochs=1))

    history = benchmark.pedantic(trainer.train, args=(data,), rounds=1,
                                 iterations=1)
    assert np.isfinite(history["loss"]).all()
