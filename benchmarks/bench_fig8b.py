"""Benchmark: regenerate Figure 8(b) (UOV bucket-count sweep).

Paper shape: accuracy rises with the number of buckets and saturates
around K = 16, while model size grows monotonically with K — motivating
the K = 16 choice.
"""

from __future__ import annotations

from repro.experiments import run_fig8b

from .conftest import run_once


def test_fig8b_bucket_sweep(benchmark, scale, workspace):
    out = run_once(benchmark, run_fig8b, scale, workspace)
    print("\n" + out["table"])

    sweep = out["sweep"]
    results = out["results"]
    benchmark.extra_info["accuracy_pct"] = {
        k: round(100 * results[k]["metrics"].accuracy, 2) for k in sweep}

    # Model size strictly grows with K.
    sizes = [results[k]["head_params"] for k in sweep]
    assert sizes == sorted(sizes)
    assert sizes[-1] > sizes[0]
    # Enough buckets must beat very coarse bucketisation.
    accs = {k: results[k]["metrics"].accuracy for k in sweep}
    assert max(accs[k] for k in sweep if k >= 16) >= accs[sweep[0]]
