"""Consolidate ``BENCH_*.json`` records into one markdown trend table.

Every benchmark in this directory writes its result as a JSON document
(``--output BENCH_<name>.json``); this script reads all of them and
prints a single markdown report on stdout — the headline metric, the
gate each benchmark enforces, and whether the recorded run passed it —
so the perf trajectory of the repo is reviewable at a glance::

    PYTHONPATH=src python benchmarks/report.py              # repo root
    PYTHONPATH=src python benchmarks/report.py --dir /path/to/records

Unknown ``BENCH_*.json`` files are listed with their raw headline keys
rather than skipped, so new benchmarks show up without touching this
script (add a formatter when you want a nicer row).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def _fmt(value, digits: int = 2) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _gate(ok: bool) -> str:
    return "pass" if ok else "**FAIL**"


def _rows_dataset_gen(doc: dict) -> list[tuple[str, str, str, str]]:
    return [(
        "dataset_gen",
        f"{_fmt(doc['speedup'])}x label speedup "
        f"({doc['workers']} workers, {doc['samples']} samples)",
        f">= {_fmt(doc['speedup_target'], 1)}x, identical labels",
        _gate(doc["speedup"] >= doc["speedup_target"]
              and doc["identical_labels"]),
    )]


def _rows_train_step(doc: dict) -> list[tuple[str, str, str, str]]:
    rows = [(
        "train_step",
        f"{_fmt(doc['speedup'])}x fused step speedup "
        f"({_fmt(doc['fused_step_ms'])}ms vs "
        f"{_fmt(doc['reference_step_ms'])}ms)",
        f">= {_fmt(doc['speedup_target'], 1)}x, identical history",
        _gate(doc["speedup"] >= doc["speedup_target"]
              and doc["identical_history"]),
    )]
    # Records predating the graph-capture engine lack the graph keys;
    # keep rendering their fused/reference row instead of skipping.
    if "graph_speedup_vs_fused" in doc:
        rows.append((
            "train_step/graph",
            f"{_fmt(doc['graph_speedup_vs_fused'])}x graph replay vs fused "
            f"({_fmt(doc['graph_step_ms'])}ms step, "
            f"{_fmt(doc['graph_speedup'])}x vs reference)",
            f">= {_fmt(doc['graph_target'])}x fused, identical history",
            _gate(doc["graph_speedup_vs_fused"] >= doc["graph_target"]
                  and doc["identical_history"]),
        ))
    profiling = doc.get("profiling")
    if profiling:
        rows.append((
            "train_step/profiling",
            f"{profiling['profile_overhead'] * 100:.2f}% profiler overhead "
            f"({_fmt(profiling['profiled_step_ms'])}ms vs "
            f"{_fmt(profiling['plain_step_ms'])}ms step)",
            f"<= {profiling['overhead_limit'] * 100:.0f}%, "
            "identical history",
            _gate(profiling["overhead_ok"]
                  and profiling["identical_history"]),
        ))
    return rows


def _rows_serving(doc: dict) -> list[tuple[str, str, str, str]]:
    rows = [(
        "serving/batcher",
        f"{_fmt(doc['speedup'])}x batched throughput "
        f"({_fmt(doc['batched_requests_per_sec'], 0)} vs "
        f"{_fmt(doc['loop_requests_per_sec'], 0)} req/s)",
        f">= {_fmt(doc['speedup_target'], 1)}x, identical predictions",
        _gate(doc["speedup"] >= doc["speedup_target"]
              and doc["identical_predictions"]),
    )]
    sustained = doc.get("sustained")
    if sustained:
        rows.append((
            "serving/sustained",
            f"p99 {_fmt(sustained['client_p99_ms'])}ms at "
            f"{_fmt(sustained['requests_per_sec'], 0)} req/s "
            f"({sustained['clients']} clients)",
            f"p99 <= {sustained['p99_limit_s'] * 1e3:.0f}ms, all 200s",
            _gate(sustained["p99_ok"]
                  and not sustained["non_200_responses"]),
        ))
    saturation = doc.get("saturation")
    if saturation:
        rows.append((
            "serving/saturation",
            f"{saturation['responses_429']} x 429 + Retry-After, "
            f"recovered={_fmt(saturation['recovered_after_burst'])}",
            ">= 1 x 429, no other errors, recovers",
            _gate(saturation["backpressure_ok"]),
        ))
    obs = doc.get("observability")
    if obs:
        rows.append((
            "serving/tracing",
            f"{obs['obs_overhead'] * 100:.2f}% traced-request overhead "
            f"(p50 {_fmt(obs['traced_p50_ms'])}ms vs "
            f"{_fmt(obs['plain_p50_ms'])}ms, "
            f"{obs['spans_recorded']} spans)",
            f"<= {obs['overhead_limit'] * 100:.0f}%, spans recorded",
            _gate(obs["overhead_ok"] and obs["spans_recorded"] > 0),
        ))
    return rows


_FORMATTERS = {
    "BENCH_dataset_gen.json": _rows_dataset_gen,
    "BENCH_train_step.json": _rows_train_step,
    "BENCH_serving.json": _rows_serving,
}


def _rows_generic(name: str, doc: dict) -> list[tuple[str, str, str, str]]:
    headline = ", ".join(f"{k}={_fmt(v)}" for k, v in list(doc.items())[:4]
                         if not isinstance(v, (dict, list)))
    return [(name.removeprefix("BENCH_").removesuffix(".json"),
             headline or "(nested record)", "-", "-")]


def build_report(directory: str) -> tuple[str, bool]:
    """Render the markdown report; returns (text, every-gate-passed)."""
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    rows: list[tuple[str, str, str, str]] = []
    skipped: list[str] = []
    for path in paths:
        name = os.path.basename(path)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            skipped.append(f"{name}: {exc}")
            continue
        formatter = _FORMATTERS.get(name)
        try:
            rows.extend(formatter(doc) if formatter
                        else _rows_generic(name, doc))
        except KeyError as exc:    # stale record missing a field
            skipped.append(f"{name}: missing key {exc}")

    lines = ["# Benchmark trend report", ""]
    if not rows:
        lines.append(f"No BENCH_*.json records found in {directory}.")
        return "\n".join(lines) + "\n", True
    widths = [max(len(r[i]) for r in
                  rows + [("benchmark", "headline", "gate", "status")])
              for i in range(4)]
    header = ("benchmark", "headline", "gate", "status")
    lines.append("| " + " | ".join(h.ljust(w)
                                   for h, w in zip(header, widths)) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in rows:
        lines.append("| " + " | ".join(c.ljust(w)
                                       for c, w in zip(row, widths)) + " |")
    if skipped:
        lines.append("")
        for item in skipped:
            lines.append(f"- skipped {item}")
    all_ok = all(r[3] != "**FAIL**" for r in rows)
    lines.append("")
    lines.append("All gates pass." if all_ok
                 else "One or more recorded runs FAILED their gate.")
    return "\n".join(lines) + "\n", all_ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=".",
                        help="directory holding BENCH_*.json (default: "
                             "current directory)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any recorded run failed its gate")
    args = parser.parse_args(argv)
    text, all_ok = build_report(args.dir)
    print(text, end="")
    return 0 if all_ok or not args.check else 1


if __name__ == "__main__":
    sys.exit(main())
