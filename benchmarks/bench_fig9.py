"""Benchmark: regenerate Figure 9 (UOV vs classification for v1 and v2).

Paper shape: replacing classification heads with UOV heads improves
accuracy for *both* AIRCHITECT v1 and v2 while substantially shrinking
the output heads — UOV is technique-agnostic.
"""

from __future__ import annotations

from repro.experiments import run_fig9

from .conftest import run_once


def test_fig9_uov_vs_classification(benchmark, scale, workspace):
    out = run_once(benchmark, run_fig9, scale, workspace)
    print("\n" + out["table"])

    results = out["results"]
    benchmark.extra_info["accuracy_pct"] = {
        name: round(100 * entry["metrics"].accuracy, 2)
        for name, entry in results.items()}

    # The size claim is structural and must always hold.
    assert results["v1_uov"]["head_params"] < \
        results["v1_classification"]["head_params"] / 5
    assert results["v2_uov"]["head_params"] < \
        results["v2_classification"]["head_params"]

    # Accuracy claim (see EXPERIMENTS.md): at reproduction scale the big
    # classification heads retain a small edge in exact-match accuracy, so
    # we assert UOV stays *competitive* while being far smaller:
    # (a) v2's UOV heads within a few points of its classification heads;
    assert results["v2_uov"]["metrics"].accuracy >= \
        results["v2_classification"]["metrics"].accuracy - 0.08
    # (b) v1's UOV heads vastly more accurate per parameter than the
    #     768-way joint softmax;
    def per_param(entry):
        return entry["metrics"].accuracy / entry["head_params"]
    assert per_param(results["v1_uov"]) > 5 * per_param(
        results["v1_classification"])
    # (c) UOV's ordinal structure keeps predictions *close*: regret within
    #     a small factor of the classification variant's.
    assert results["v2_uov"]["metrics"].mean_regret <= \
        max(3 * results["v2_classification"]["metrics"].mean_regret, 0.05)
