"""Benchmark: regenerate Figure 5 (embedding space w/ vs w/o contrastive).

Shape to reproduce: the contrastive encoder produces a more *uniform*
embedding (lower log-potential) with better class *separation* than the
identical encoder trained without L_C.
"""

from __future__ import annotations

from repro.experiments import run_fig5

from .conftest import run_once


def test_fig5_embedding_quality(benchmark, scale, workspace):
    out = run_once(benchmark, run_fig5, scale, workspace)
    print("\n" + out["table"])

    with_c = out["with_contrastive"]["stats"]
    without_c = out["without_contrastive"]["stats"]
    benchmark.extra_info["separation"] = {
        "with": round(with_c.separation, 3),
        "without": round(without_c.separation, 3)}

    assert with_c.uniformity < without_c.uniformity
    assert with_c.separation > without_c.separation
