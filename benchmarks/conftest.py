"""Benchmark configuration.

Every benchmark regenerates one table/figure of the paper at the scale
given by ``$REPRO_SCALE`` (default: ``small``) and shares one on-disk
training cache (``$REPRO_CACHE``, default ``.repro_cache``): the first
benchmark that needs a model trains it, later ones load it.  Run with

    pytest benchmarks/ --benchmark-only -s

(-s shows the regenerated tables).  Results recorded in EXPERIMENTS.md
come from the 'small' scale.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import Workspace, get_scale


@pytest.fixture(scope="session")
def scale():
    return get_scale(os.environ.get("REPRO_SCALE"))


@pytest.fixture(scope="session")
def workspace():
    return Workspace(os.environ.get("REPRO_CACHE", ".repro_cache"))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
