"""Benchmark: regenerate Table II (stage-1 loss ablation).

Paper rows (accuracy %): none 79.43 | L_perf 81.27 | L_C 89.97 | both 91.17.
Shape to reproduce: none < perf < contrastive < both, with the contrastive
term contributing the larger share of the gain.
"""

from __future__ import annotations

from repro.experiments import run_table2

from .conftest import run_once


def test_table2_stage1_ablation(benchmark, scale, workspace):
    out = run_once(benchmark, run_table2, scale, workspace)
    print("\n" + out["table"])

    results = out["results"]
    benchmark.extra_info["accuracy_pct"] = {
        name: round(100 * metrics.accuracy, 2)
        for name, metrics in results.items()}

    # Both-losses must beat the no-extra-losses baseline.
    assert results["both"].accuracy >= results["none"].accuracy
    # Contrastive learning must provide a real improvement on its own.
    assert results["contrastive"].accuracy > results["none"].accuracy
