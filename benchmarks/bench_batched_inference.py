"""Batched DSE serving engine vs the per-sample loop (JSON-emitting).

The acceptance gate of the batched inference engine: on a 1k-workload
sweep the vectorised micro-batched path must (a) produce *identical*
predictions to the per-sample loop and (b) beat it by >= 5x throughput.

Run standalone to get a machine-readable record for the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_batched_inference.py \
        --samples 1000 --micro-batch 256 --output bench_batched.json

or under pytest-benchmark along with the other benches::

    pytest benchmarks/bench_batched_inference.py --benchmark-only -s
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core import (AirchitectV2, BatchedDSEPredictor, DSEPredictor,
                        ModelConfig)
from repro.dse import DSEProblem

SPEEDUP_TARGET = 5.0


def run_bench(samples: int = 1000, micro_batch: int = 256,
              seed: int = 0, loop_samples: int | None = None) -> dict:
    """Time the per-sample loop vs the batched engine on one sweep.

    ``loop_samples`` caps how many rows the (slow) per-sample loop times;
    its throughput extrapolates per-row.  Defaults to all rows.
    """
    problem = DSEProblem()
    rng = np.random.default_rng(seed)
    model = AirchitectV2(ModelConfig(), problem, rng)
    inputs = problem.sample_inputs(samples, rng)
    loop_samples = samples if loop_samples is None else min(loop_samples,
                                                            samples)

    # Per-sample reference: one forward pass per workload.
    loop = DSEPredictor(model)
    loop.predict_indices(inputs[0])              # warm-up (lazy allocs)
    start = time.perf_counter()
    parts = [loop.predict_indices(row) for row in inputs[:loop_samples]]
    loop_elapsed = time.perf_counter() - start
    loop_pe = np.concatenate([p for p, _ in parts])
    loop_l2 = np.concatenate([l for _, l in parts])

    # Batched engine: vectorised micro-batches under no_grad.
    engine = BatchedDSEPredictor(model, micro_batch_size=micro_batch)
    start = time.perf_counter()
    pe, l2 = engine.predict_indices(inputs)
    batched_elapsed = time.perf_counter() - start

    identical = bool(np.array_equal(pe[:loop_samples], loop_pe)
                     and np.array_equal(l2[:loop_samples], loop_l2))
    loop_sps = loop_samples / max(loop_elapsed, 1e-12)
    batched_sps = samples / max(batched_elapsed, 1e-12)
    return {"samples": samples,
            "loop_samples_timed": loop_samples,
            "micro_batch_size": micro_batch,
            "loop_elapsed_s": loop_elapsed,
            "batched_elapsed_s": batched_elapsed,
            "loop_samples_per_sec": loop_sps,
            "batched_samples_per_sec": batched_sps,
            "speedup": batched_sps / max(loop_sps, 1e-12),
            "identical_predictions": identical,
            "speedup_target": SPEEDUP_TARGET}


def test_batched_engine_beats_loop(benchmark):
    """>= 5x over the per-sample loop with bitwise-identical predictions."""
    result = benchmark.pedantic(run_bench, kwargs={"samples": 1000},
                                rounds=1, iterations=1)
    print(json.dumps(result, indent=2))
    assert result["identical_predictions"]
    assert result["speedup"] >= SPEEDUP_TARGET


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=1000)
    parser.add_argument("--micro-batch", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--loop-samples", type=int, default=None,
                        help="cap the rows timed by the per-sample loop")
    parser.add_argument("--output", default=None,
                        help="also write the JSON record to this path")
    args = parser.parse_args(argv)

    result = run_bench(samples=args.samples, micro_batch=args.micro_batch,
                       seed=args.seed, loop_samples=args.loop_samples)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    if not result["identical_predictions"]:
        print("FAIL: batched predictions diverge from the loop",
              file=sys.stderr)
        return 1
    if result["speedup"] < SPEEDUP_TARGET:
        print(f"FAIL: speedup {result['speedup']:.2f}x < "
              f"{SPEEDUP_TARGET:.0f}x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
