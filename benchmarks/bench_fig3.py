"""Benchmark: regenerate Figure 3 (dataset landscape + long-tail evidence).

Shape to reproduce: (a) the latency landscape over the design grid is
non-convex (multiple local minima) with a wide dynamic range; (b) the
optimal-design histogram is long-tailed (high Gini, few head classes).
"""

from __future__ import annotations

from repro.experiments import run_fig3

from .conftest import run_once


def test_fig3_dataset_pathologies(benchmark, scale, workspace):
    out = run_once(benchmark, run_fig3, scale, workspace)
    print("\n" + out["table"])

    landscape = out["landscape"]
    tail = out["longtail"]
    benchmark.extra_info["landscape"] = {
        k: round(v, 3) for k, v in landscape.items()}
    benchmark.extra_info["gini"] = round(tail.gini, 3)

    assert landscape["mean_local_minima"] >= 1.0       # non-convex
    assert landscape["mean_dynamic_range"] > 5.0       # non-uniform
    assert tail.gini > 0.6                             # long-tailed
    assert tail.head_share_top5 > 0.1
