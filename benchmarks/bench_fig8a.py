"""Benchmark: regenerate Figure 8(a) (BO on contrastive vs VAE embedding).

Paper shape: Bayesian optimisation over the contrastive embedding space
converges to a lower normalised latency than over the VAE latent space at
the same sample budget (on a Llama2-7B target).
"""

from __future__ import annotations

from repro.experiments import run_fig8a

from .conftest import run_once


def test_fig8a_bo_convergence(benchmark, scale, workspace):
    out = run_once(benchmark, run_fig8a, scale, workspace)
    print(f"\nFig. 8(a) target: {out['target_model']}")
    for name, curve in out["curves"].items():
        marks = [curve[min(i, len(curve) - 1)]
                 for i in (0, len(curve) // 2, len(curve) - 1)]
        print(f"  {name}: start {marks[0]:.3f} -> mid {marks[1]:.3f} "
              f"-> final {marks[2]:.3f} (x optimum)")

    benchmark.extra_info["final"] = {k: round(v, 4)
                                     for k, v in out["final"].items()}

    # Contrastive search must end at least as close to the optimum.
    assert out["final"]["contrastive_bo"] <= out["final"]["vaesa_bo"] + 0.02
    # Both curves are valid best-so-far traces bounded by the optimum.
    for curve in out["curves"].values():
        assert curve[-1] >= 1.0 - 1e-9
