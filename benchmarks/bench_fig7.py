"""Benchmark: regenerate Figure 7 (model-level latency on unseen models).

Paper shape: AIRCHITECT v2 achieves the lowest latency on every held-out
DNN/LLM; VAESA+BO is the closest baseline; the mean baseline-to-v2 latency
ratio is around 1.7x.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig7

from .conftest import run_once


def test_fig7_deployment_latency(benchmark, scale, workspace):
    out = run_once(benchmark, run_fig7, scale, workspace)
    print("\n" + out["table"])
    print(f"mean baseline/v2 ratio: folded {out['mean_baseline_ratio']:.2f}x, "
          f"per-layer {out['mean_baseline_ratio_per_layer']:.2f}x")

    benchmark.extra_info["mean_baseline_ratio"] = round(
        out["mean_baseline_ratio"], 3)
    benchmark.extra_info["mean_baseline_ratio_per_layer"] = round(
        out["mean_baseline_ratio_per_layer"], 3)
    benchmark.extra_info["normalized_per_layer"] = {
        model: {k: round(v, 3) for k, v in entry.items()}
        for model, entry in out["normalized_per_layer"].items()}

    # Folded (Method 1): v2 never loses badly on any model — Method-1
    # folding is robust for every technique (see EXPERIMENTS.md note).
    for model, entry in out["normalized"].items():
        for method in ("airchitect_v1", "gandse", "vaesa_bo"):
            assert entry[method] >= 0.93, (model, method)
    # Per-layer (no candidate-pool rescue): v2's predictions must win on
    # average — this is where raw prediction quality shows.
    assert out["mean_baseline_ratio_per_layer"] >= 1.0
