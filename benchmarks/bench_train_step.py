"""Stage-2 train-step throughput: graph replay vs fused eager vs the
frozen op-by-op reference, plus the train-phase profiling overhead gate.

The acceptance gate of the fused compute path (PR 4): a full stage-2
decoder fit (default ``ModelConfig``/``Stage2Config``, batch 256, 20
epochs) through the fused kernels, flat-arena optimisers, frozen-encoder
embedding cache and zero-copy DataLoader must be >= 2x faster than the
frozen unfused reference — the op-by-op autograd path this PR keeps intact
behind ``repro.nn.fused_kernels(False)`` — while producing a
**bit-identical** loss history (the same contract
``tests/train/test_parity.py`` enforces for all five trainers).

The telemetry layer (PR 7) adds a second gate: the same fused fit with a
:class:`~repro.train.ProfilerCallback` attached (per-phase wall-time
histograms every batch) must cost <= 3% per median step and keep the loss
history bit-identical — see ``run_profile_overhead``.

The graph-capture engine (PR 8) adds a third mode: the same fit with
``repro.nn.graph_capture`` on (the default) — trace the step once,
compile it into a fused, arena-backed flat schedule, replay every
subsequent step — again with a bit-identical loss history.  Both paths
run the same arithmetic (bit-identity forbids reassociation), so what
replay removes is per-step dispatch and allocation: Tensor/closure
construction and fresh output arrays.  That win is environment-dependent
— measured 1.05-1.5x per step on the same hardware depending on
allocator pressure (fresh-allocation cost balloons under memory load;
the arena is immune), and ~2x vs the op-by-op reference — so the graph
gate is direction-only at every scale: replay may never lose to fused
eager dispatch.  The structural payoff is the IR itself: fusion and
buffer planning are derived, not hand-maintained, and a second execution
backend can replace the numpy closures without touching capture.

The win is Python-and-memory overhead, not FLOPs: the fused kernels replay
the composed chains' exact numpy expressions in one node each, so both
paths do the same arithmetic; the reference additionally pays ~180 graph
nodes/closures per step (vs ~50), per-batch copies, per-parameter
optimiser loops, and a frozen-encoder forward pass every step that the
fused path computes once per fit.  Graph replay then removes the
remaining per-step dispatch: no Tensor/closure allocation at all, and
forward outputs write into a liveness-planned buffer arena instead of
fresh allocations.

Run standalone to record the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_train_step.py \
        --output BENCH_train_step.json

or under pytest (the test is marked ``slow``)::

    pytest benchmarks/bench_train_step.py --benchmark-only -m slow -s

``--smoke`` runs a seconds-long configuration (tiny model, 2 rounds) that
only asserts the fused path wins at all — the CI guard against perf
regressions sneaking into releases.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np
import pytest

from repro import nn
from repro.core import AirchitectV2, ModelConfig, Stage2Config, Stage2Trainer
from repro.dse import DSEProblem, generate_random_dataset

SPEEDUP_TARGET = 2.0
# Graph replay vs fused eager, per step.  Direction-only: both paths run
# identical arithmetic, and the dispatch/allocation cost replay removes
# swings 1.05-1.5x with allocator pressure, so any magnitude gate here
# would assert machine state, not code.  Replay must simply never lose.
GRAPH_TARGET = 1.0
OVERHEAD_LIMIT = 0.03
SAMPLES_DEFAULT = 2048
EPOCHS_DEFAULT = 20
ROUNDS_DEFAULT = 3

# (fused, graph_capture) per benched execution mode.
MODES = {"reference": (False, False),
         "fused": (True, False),
         "graph": (True, True)}


def _fit(problem, dataset, model_config, stage2_config,
         fused: bool, graph: bool = False, profile: bool = False):
    """One full stage-2 fit.

    Returns (total wall seconds, per-epoch wall seconds, loss history,
    profile snapshot or None); the per-epoch times come from the training
    engine's own :class:`~repro.train.ThroughputMonitor`.  With
    ``profile`` a :class:`~repro.train.ProfilerCallback` rides along, so
    the fit runs the loop's instrumented path (the overhead under test).
    """
    from repro.train import ProfilerCallback, ThroughputMonitor

    with nn.fused_kernels(fused), nn.graph_capture(graph):
        model = AirchitectV2(model_config, problem, np.random.default_rng(0))
        trainer = Stage2Trainer(model, stage2_config)
        monitor = ThroughputMonitor()
        callbacks = [monitor]
        profiler_cb = None
        if profile:
            profiler_cb = ProfilerCallback()
            callbacks.append(profiler_cb)
        start = time.perf_counter()
        history = trainer.train(dataset, callbacks=tuple(callbacks))
        total = time.perf_counter() - start
        snapshot = profiler_cb.snapshot() if profiler_cb is not None else None
        return total, [e["seconds"] for e in monitor.epochs], history, snapshot


def run_bench(samples: int = SAMPLES_DEFAULT, epochs: int = EPOCHS_DEFAULT,
              rounds: int = ROUNDS_DEFAULT, seed: int = 7,
              model_config: ModelConfig | None = None,
              batch_size: int | None = None) -> dict:
    problem = DSEProblem()
    dataset = generate_random_dataset(problem, samples,
                                      np.random.default_rng(seed))
    model_config = model_config or ModelConfig()
    stage2 = (Stage2Config(epochs=epochs) if batch_size is None
              else Stage2Config(epochs=epochs, batch_size=batch_size))

    # Warm caches (BLAS init, page pools) outside the measurement.
    _fit(problem, dataset, model_config, Stage2Config(epochs=1),
         fused=True, graph=True)

    totals = {mode: float("inf") for mode in MODES}
    epoch_times: dict[str, list[float]] = {mode: [] for mode in MODES}
    histories = {}
    for _ in range(rounds):
        for mode, (fused, graph) in MODES.items():
            total, epoch_seconds, histories[mode], _ = _fit(
                problem, dataset, model_config, stage2, fused, graph)
            totals[mode] = min(totals[mode], total)
            epoch_times[mode].extend(epoch_seconds)

    # The gate metric is steady-state step throughput: the *median* epoch
    # per mode over rounds x epochs (the typical cost — robust against
    # scheduler noise in either direction, unlike a min, which rewards
    # whichever mode has the noisier distribution), divided into steps.
    # Full-fit wall times are recorded alongside for the end-to-end view.
    steps_per_epoch = samples // stage2.batch_size
    step = {mode: float(np.median(times)) / steps_per_epoch
            for mode, times in epoch_times.items()}
    result = {"samples": samples,
              "epochs": epochs,
              "batch_size": stage2.batch_size,
              "steps_per_epoch": steps_per_epoch,
              "rounds": rounds,
              "d_model": model_config.d_model,
              "n_layers": model_config.n_layers,
              "fit_speedup": totals["reference"] / max(totals["fused"],
                                                       1e-12),
              "speedup": step["reference"] / max(step["fused"], 1e-12),
              "graph_speedup": step["reference"] / max(step["graph"], 1e-12),
              "graph_speedup_vs_fused": step["fused"] / max(step["graph"],
                                                            1e-12),
              "identical_history": bool(
                  histories["reference"] == histories["fused"]
                  == histories["graph"]),
              "speedup_target": SPEEDUP_TARGET,
              "graph_target": GRAPH_TARGET}
    for mode in MODES:
        result[f"{mode}_fit_s"] = totals[mode]
        result[f"{mode}_best_epoch_s"] = min(epoch_times[mode])
        result[f"{mode}_step_ms"] = 1000.0 * step[mode]
        result[f"{mode}_steps_per_sec"] = 1.0 / max(step[mode], 1e-12)
    return result


def run_profile_overhead(samples: int = SAMPLES_DEFAULT,
                         epochs: int = EPOCHS_DEFAULT,
                         rounds: int = ROUNDS_DEFAULT, seed: int = 7,
                         model_config: ModelConfig | None = None) -> dict:
    """The instrumentation gate of the telemetry layer (PR 7).

    The same fused stage-2 fit runs plain and with a
    :class:`~repro.train.ProfilerCallback` attached (per-phase wall-time
    histograms on every batch); the profiled median step must stay within
    ``OVERHEAD_LIMIT`` of the plain one, and the loss history must remain
    bit-identical — profiling may never change what the model computes.

    Graph capture is held off on both sides: the gate is defined against
    the instrumented eager loop (which every fallback batch still runs);
    the replay path's profiled timing mirrors ``StepContext.apply`` and
    is covered by the parity tests instead.
    """
    problem = DSEProblem()
    dataset = generate_random_dataset(problem, samples,
                                      np.random.default_rng(seed))
    model_config = model_config or ModelConfig()
    stage2 = Stage2Config(epochs=epochs)

    _fit(problem, dataset, model_config, Stage2Config(epochs=1), fused=True)

    epoch_times: dict[bool, list[float]] = {False: [], True: []}
    histories = {}
    snapshot = None
    for round_idx in range(rounds):
        # Alternate which mode runs first: a fixed order folds slow
        # drift (CPU frequency, allocator state) into whichever mode
        # always runs later and fakes an overhead.
        modes = (False, True) if round_idx % 2 == 0 else (True, False)
        for profile in modes:
            _, epoch_seconds, histories[profile], snap = _fit(
                problem, dataset, model_config, stage2,
                fused=True, profile=profile)
            epoch_times[profile].extend(epoch_seconds)
            if snap is not None:
                snapshot = snap

    steps_per_epoch = samples // stage2.batch_size
    plain_step = float(np.median(epoch_times[False])) / steps_per_epoch
    profiled_step = float(np.median(epoch_times[True])) / steps_per_epoch
    overhead = max(profiled_step / max(plain_step, 1e-12) - 1.0, 0.0)
    shares = {phase: stats["share"]
              for phase, stats in snapshot["phases"].items()}
    return {"rounds": rounds,
            "plain_step_ms": 1000.0 * plain_step,
            "profiled_step_ms": 1000.0 * profiled_step,
            "profile_overhead": overhead,
            "overhead_limit": OVERHEAD_LIMIT,
            "overhead_ok": overhead <= OVERHEAD_LIMIT,
            "identical_history": bool(histories[False] == histories[True]),
            "phase_shares": shares}


def run_smoke() -> dict:
    """Tiny configuration for CI: asserts direction, not magnitude."""
    config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8,
                         head_hidden=32, num_buckets=8)
    # Batch 64 keeps this in the dispatch-bound regime (per-step
    # Tensor/closure construction dominates the tiny matmuls) and gives
    # the per-epoch medians 8 steps instead of 2.
    result = run_bench(samples=512, epochs=6, rounds=2, model_config=config,
                       batch_size=64)
    result["smoke"] = True
    # Direction-only fused gate at this scale: the win must exist, not
    # hit the full-size magnitude target.  (The graph gate is
    # direction-only at every scale — see GRAPH_TARGET.)
    result["speedup_target"] = 1.0
    # More rounds than the speedup bench: the 3% gate needs a stable
    # median at this tiny scale, and each extra round costs ~0.1s.
    result["profiling"] = run_profile_overhead(samples=512, epochs=6,
                                               rounds=4, model_config=config)
    return result


@pytest.mark.slow
def test_fused_train_step_beats_reference(benchmark):
    """>= 2x stage-2 train-step throughput, bit-identical loss history."""
    result = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    print(json.dumps(result, indent=2))
    assert result["identical_history"]
    assert result["speedup"] >= SPEEDUP_TARGET
    # Replay may never lose to eager fused dispatch.
    assert result["graph_speedup_vs_fused"] >= GRAPH_TARGET


@pytest.mark.slow
def test_graph_replay_never_loses_dispatch_bound():
    """Graph replay wins where dispatch dominates, ~2x vs the reference.

    The dispatch-bound regime: a decoder small enough that per-step
    Tensor/closure construction and fresh output allocation — the costs
    replay removes — are a visible share of the step.  The magnitude of
    the win tracks allocator pressure (1.05-1.5x measured on the same
    hardware), so the gate is direction-only here too; the reference
    comparison is the stable magnitude claim.
    """
    config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8,
                         head_hidden=32, num_buckets=8)
    result = run_bench(samples=512, epochs=6, rounds=3, model_config=config,
                       batch_size=64)
    print(json.dumps(result, indent=2))
    assert result["identical_history"]
    assert result["graph_speedup_vs_fused"] >= GRAPH_TARGET
    assert result["graph_speedup"] >= 1.5


@pytest.mark.slow
def test_profiler_overhead_within_gate():
    """Per-phase profiling costs <= 3% per step, history bit-identical."""
    result = run_profile_overhead()
    print(json.dumps(result, indent=2))
    assert result["identical_history"]
    assert result["overhead_ok"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=SAMPLES_DEFAULT)
    parser.add_argument("--epochs", type=int, default=EPOCHS_DEFAULT)
    parser.add_argument("--rounds", type=int, default=ROUNDS_DEFAULT,
                        help="best-of-N rounds per mode (default 3)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long CI mode: tiny model, only "
                             "asserts fused beats the reference at all")
    parser.add_argument("--output", default=None,
                        help="also write the JSON record to this path "
                             "(e.g. BENCH_train_step.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        result = run_smoke()
    else:
        result = run_bench(samples=args.samples, epochs=args.epochs,
                           rounds=args.rounds, seed=args.seed)
        result["profiling"] = run_profile_overhead(
            samples=args.samples, epochs=args.epochs,
            rounds=args.rounds, seed=args.seed)
    text = json.dumps(result, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    failed = False
    if not result["identical_history"]:
        print("FAIL: loss histories diverge across reference/fused/graph",
              file=sys.stderr)
        failed = True
    if result["speedup"] < result["speedup_target"]:
        print(f"FAIL: speedup {result['speedup']:.2f}x < "
              f"{result['speedup_target']:.1f}x target", file=sys.stderr)
        failed = True
    if result["graph_speedup_vs_fused"] < result["graph_target"]:
        print(f"FAIL: graph replay {result['graph_speedup_vs_fused']:.2f}x "
              f"vs fused < {result['graph_target']:.2f}x target",
              file=sys.stderr)
        failed = True
    profiling = result["profiling"]
    if not profiling["identical_history"]:
        print("FAIL: profiled loss history diverges from the plain fit",
              file=sys.stderr)
        failed = True
    if not profiling["overhead_ok"]:
        print(f"FAIL: profiling overhead "
              f"{profiling['profile_overhead'] * 100:.2f}% exceeds the "
              f"{profiling['overhead_limit'] * 100:.0f}% gate",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
