"""Benchmark: regenerate Figure 4 (problem-space complexity).

Shape to reproduce: the input-PCA to output-bucket map is irregular —
nearby inputs frequently demand different configurations — over an input
space of O(1e9) complexity, justifying a learned model over simple
classifiers.
"""

from __future__ import annotations

from repro.experiments import run_fig4

from .conftest import run_once


def test_fig4_problem_complexity(benchmark, scale, workspace):
    out = run_once(benchmark, run_fig4, scale, workspace)
    print(f"\nFig. 4: input complexity {out['input_space_complexity']:.2e}, "
          f"{out['num_distinct_buckets']} output buckets in use, "
          f"NN-label disagreement {out['nn_label_disagreement']:.2f}")

    benchmark.extra_info["nn_label_disagreement"] = round(
        out["nn_label_disagreement"], 3)

    assert out["input_space_complexity"] > 1e9
    assert out["num_distinct_buckets"] >= 10
    # Irregularity: even nearest-neighbour inputs often disagree on buckets.
    assert out["nn_label_disagreement"] > 0.1
