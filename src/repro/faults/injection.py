"""Deterministic, seedable fault injection.

A :class:`FaultRegistry` arms a set of *named injection points* — the
places in the execution and persistence layers where real production
failures strike:

``pool.worker_crash``
    A sweep/labelling pool worker dies mid-shard (``os._exit``, i.e. a
    SIGKILL-equivalent: no exception, no result, no cleanup).
``pool.shard_hang``
    A worker wedges inside a shard (``time.sleep(hang_s)``), exercising
    the per-shard timeout path.
``storage.torn_write``
    An ``atomic_savez`` is truncated *after* the ``os.replace`` — the
    moment a power cut or ``kill -9`` tears a checkpoint/artifact.
``engine.transient_error``
    The serving engine raises :class:`TransientEngineError` for one
    request, exercising the per-route circuit breaker.

Arming is explicit and scoped::

    from repro import faults

    with faults.inject_faults({"pool.worker_crash": 1}):
        executor.predict_indices(inputs)     # one worker will die

or via the ``REPRO_FAULTS`` environment variable (JSON or the compact
``name=times[:key=value...]`` form), which is how *spawn*-started pool
workers and ``repro serve`` subprocesses re-arm themselves: the module
re-reads the variable at import time.

Cost model: every hook site calls :func:`fire`, which is a single module
global load + ``is None`` test when nothing is armed — measured at
nanoseconds per call and gated at <= 1% of request latency by
``benchmarks/bench_serving.py --smoke``.

Determinism: counted faults (``times=N``) use a lock-protected shared
counter (``multiprocessing.Value``), so *fork*-started pool workers
inherit the same budget and a ``times=1`` crash fires exactly once even
across pool rebuilds.  Probabilistic faults (``p < 1``) draw from a
``random.Random`` seeded from ``(seed, point name)`` — per-process, so
replaying the same process tree replays the same faults.  Spawn-started
workers re-arm from the environment with fresh per-process counters
(documented limitation: budgets are then per-process, not global).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import warnings

_ENV_VAR = "REPRO_FAULTS"

#: Known injection points; arming an unknown name is an error so typos
#: fail fast instead of silently never firing.
POINTS = {
    "pool.worker_crash": "pool worker exits hard (os._exit) mid-shard",
    "pool.shard_hang": "pool worker sleeps `hang_s` inside a shard",
    "storage.torn_write": "atomic_savez output truncated after replace",
    "engine.transient_error": "serving engine raises TransientEngineError",
}


class TransientEngineError(RuntimeError):
    """Synthetic engine failure raised when ``engine.transient_error``
    fires — counted by the serving route's circuit breaker."""


class _FaultPoint:
    """One armed injection point: a fire budget plus free-form options."""

    __slots__ = ("name", "options", "_remaining", "_fired", "_lock", "_rng",
                 "_p")

    def __init__(self, name: str, times: int, options: dict, seed: int):
        self.name = name
        self.options = dict(options)
        self._p = float(self.options.pop("p", 1.0))
        # Shared values: fork-started pool workers inherit them, so a
        # times=1 budget fires exactly once across the process tree.
        self._remaining = multiprocessing.Value("l", int(times), lock=False)
        self._fired = multiprocessing.Value("l", 0, lock=False)
        self._lock = multiprocessing.Lock()
        self._rng = random.Random(f"{seed}:{name}")

    def fire(self) -> dict | None:
        with self._lock:
            if self._remaining.value == 0:
                return None
            if self._p < 1.0 and self._rng.random() >= self._p:
                return None
            if self._remaining.value > 0:     # negative = unlimited
                self._remaining.value -= 1
            self._fired.value += 1
        return dict(self.options)

    @property
    def remaining(self) -> int:
        return int(self._remaining.value)

    @property
    def fired(self) -> int:
        return int(self._fired.value)


def _normalise_spec(name: str, spec) -> dict:
    if name not in POINTS:
        known = ", ".join(sorted(POINTS))
        raise ValueError(f"unknown fault injection point {name!r} "
                         f"(known: {known})")
    if isinstance(spec, bool):
        spec = {"times": int(spec)}
    elif isinstance(spec, (int, float)):
        spec = {"times": int(spec)}
    elif isinstance(spec, dict):
        spec = dict(spec)
        spec.setdefault("times", 1)
    else:
        raise ValueError(f"fault spec for {name!r} must be an int (times) "
                         f"or a dict, got {type(spec).__name__}")
    spec["times"] = int(spec["times"])
    return spec


class FaultRegistry:
    """A set of armed injection points with deterministic budgets."""

    def __init__(self, specs: dict, *, seed: int = 0):
        self.seed = int(seed)
        self._specs = {name: _normalise_spec(name, spec)
                       for name, spec in dict(specs).items()}
        self._points = {}
        for name, spec in self._specs.items():
            options = {k: v for k, v in spec.items() if k != "times"}
            self._points[name] = _FaultPoint(name, spec["times"], options,
                                             self.seed)

    def fire(self, name: str) -> dict | None:
        point = self._points.get(name)
        if point is None:
            return None
        return point.fire()

    def snapshot(self) -> dict:
        """Per-point accounting — {name: {"remaining": n, "fired": m}}."""
        return {name: {"remaining": point.remaining, "fired": point.fired}
                for name, point in self._points.items()}

    def to_env(self) -> str:
        """Serialise for ``REPRO_FAULTS`` so spawn children can re-arm."""
        return json.dumps({"seed": self.seed, "points": self._specs})

    @classmethod
    def from_text(cls, text: str) -> "FaultRegistry":
        """Parse ``REPRO_FAULTS``: full JSON, bare JSON point mapping, or
        the compact ``name=times[:key=value...]`` comma list."""
        text = text.strip()
        if text.startswith("{"):
            doc = json.loads(text)
            if "points" in doc:
                return cls(doc["points"], seed=doc.get("seed", 0))
            return cls(doc)
        specs: dict[str, dict] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            head, *opts = item.split(":")
            name, _, times = head.partition("=")
            spec: dict = {"times": int(times) if times else 1}
            for opt in opts:
                key, _, value = opt.partition("=")
                try:
                    spec[key] = float(value)
                except ValueError:
                    spec[key] = value
            specs[name] = spec
        return cls(specs)

    def attach_metrics(self, metrics, labels: dict | None = None) -> None:
        """Publish per-point gauges (``repro_fault_armed`` = remaining
        budget, -1 for unlimited; ``repro_fault_fired``) into a
        :class:`repro.obs.MetricsRegistry`."""
        labels = dict(labels or {})
        names = (*labels, "point")
        armed = metrics.gauge(
            "repro_fault_armed",
            "Remaining armed fires per fault injection point "
            "(-1 = unlimited, absent = disarmed).", label_names=names)
        fired = metrics.gauge(
            "repro_fault_fired",
            "Fault injection fires observed by this process.",
            label_names=names)
        for name, point in self._points.items():
            armed.labels(point=name, **labels).set_function(
                lambda p=point: float(p.remaining))
            fired.labels(point=name, **labels).set_function(
                lambda p=point: float(p.fired))


#: The armed registry, or None.  ``fire`` reads this once — keeping the
#: disarmed path to a global load and an identity test.
_ACTIVE: FaultRegistry | None = None


def active() -> FaultRegistry | None:
    """The currently armed registry (None when faults are disarmed)."""
    return _ACTIVE


def fire(name: str) -> dict | None:
    """Hook-site probe: returns the fault's options dict when the named
    point is armed and its budget allows a fire, else None.  The disarmed
    path is a single global test — safe to call on hot paths."""
    registry = _ACTIVE
    if registry is None:
        return None
    return registry.fire(name)


class inject_faults:
    """Context manager arming a :class:`FaultRegistry` for the dynamic
    extent of the block — and exporting it via ``REPRO_FAULTS`` so
    spawn-started pool workers re-arm on import::

        with inject_faults({"pool.shard_hang": {"times": 1, "hang_s": 5}},
                           seed=7) as registry:
            ...
        # previous arming (usually: none) restored on exit
    """

    def __init__(self, specs: dict, *, seed: int = 0):
        self._specs = dict(specs)
        self._seed = seed
        self.registry: FaultRegistry | None = None

    def __enter__(self) -> FaultRegistry:
        global _ACTIVE
        self._prev = _ACTIVE
        self._prev_env = os.environ.get(_ENV_VAR)
        self.registry = FaultRegistry(self._specs, seed=self._seed)
        os.environ[_ENV_VAR] = self.registry.to_env()
        _ACTIVE = self.registry
        return self.registry

    def __exit__(self, *exc_info) -> bool:
        global _ACTIVE
        _ACTIVE = self._prev
        if self._prev_env is None:
            os.environ.pop(_ENV_VAR, None)
        else:
            os.environ[_ENV_VAR] = self._prev_env
        return False


def arm_from_env() -> FaultRegistry | None:
    """(Re-)arm from ``REPRO_FAULTS``.  Called at import so spawn pool
    workers and ``repro serve`` subprocesses inherit the arming; a
    malformed value is ignored with a warning rather than breaking the
    host process."""
    global _ACTIVE
    text = os.environ.get(_ENV_VAR)
    if not text:
        return None
    try:
        _ACTIVE = FaultRegistry.from_text(text)
    except (ValueError, KeyError, TypeError) as exc:
        warnings.warn(f"ignoring malformed {_ENV_VAR}={text!r}: {exc}",
                      RuntimeWarning, stacklevel=2)
        _ACTIVE = None
    return _ACTIVE


arm_from_env()
