"""``repro.faults`` — fault injection and the self-healing it exercises.

Three cooperating pieces:

* :mod:`~repro.faults.injection` — a deterministic, seedable registry of
  named injection points (``pool.worker_crash``, ``pool.shard_hang``,
  ``storage.torn_write``, ``engine.transient_error``) armed via
  :func:`inject_faults` or the ``REPRO_FAULTS`` environment variable,
  with a zero-overhead disarmed path.
* :mod:`~repro.faults.supervisor` — :class:`PoolSupervisor`, the shared
  self-healing core of the sweep/labelling process pools: per-shard
  timeouts, retry-on-rebuilt-pool with :class:`RetryPolicy` backoff,
  graceful degradation to in-process execution.
* :mod:`~repro.faults.breaker` — the per-route serving
  :class:`CircuitBreaker` (closed → open → half-open).

See the README's "Fault tolerance" section for the operational story.
"""

from .breaker import STATE_CODES, CircuitBreaker
from .injection import (POINTS, FaultRegistry, TransientEngineError, active,
                        arm_from_env, fire, inject_faults)
from .retry import RetryPolicy
from .supervisor import PoolBrokenError, PoolSupervisor

__all__ = [
    "POINTS", "FaultRegistry", "TransientEngineError",
    "active", "arm_from_env", "fire", "inject_faults",
    "RetryPolicy", "CircuitBreaker", "STATE_CODES",
    "PoolSupervisor", "PoolBrokenError",
]
