"""Self-healing process-pool supervision.

:class:`PoolSupervisor` is the shared core behind
:class:`repro.serving.ShardedSweepExecutor` and
:class:`repro.dse.ShardedLabeller`: it owns the ``multiprocessing.Pool``,
dispatches pure index-tagged shards with a per-shard timeout, and — when
a worker is lost (SIGKILL), hangs, or a shard raises — retries exactly
the missing shards on a *rebuilt* pool with capped exponential backoff.
After :class:`~repro.faults.RetryPolicy.max_rebuilds` rebuilds it gives
up and raises :class:`PoolBrokenError` carrying everything that *did*
complete, so the caller can finish the remainder in-process — results
stay bit-identical to the fault-free path because shards are pure
functions of their rows and are reassembled by index.

Why per-shard ``apply_async`` handles instead of ``imap_unordered``: a
SIGKILLed worker's in-flight task simply never produces a result —
``Pool`` silently respawns the worker but the iterator would block
forever.  Individual handles give us a place to hang a timeout and an
exact inventory of which shards are missing.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import weakref

from ..obs import get_logger
from .retry import RetryPolicy

#: Once one shard has failed, surviving handles get this much grace to
#: deliver before their shards are declared missing and re-dispatched.
HARVEST_TIMEOUT_S = 0.25


class PoolBrokenError(RuntimeError):
    """The pool could not complete the batch.  ``completed`` maps shard
    index -> result for everything that finished; ``pending`` lists the
    shard indices the caller must compute in-process."""

    def __init__(self, message: str, completed: dict | None = None,
                 pending=None):
        super().__init__(message)
        self.completed = dict(completed or {})
        self.pending = list(pending or [])


#: How long graceful ``Pool.terminate`` gets before teardown is forced.
TEARDOWN_TIMEOUT_S = 5.0


def _terminate_pool(pool, timeout_s: float = TEARDOWN_TIMEOUT_S) -> None:
    """Tear down a pool without deadlocking on its shared queue lock.

    ``Pool.terminate`` flushes the task queue under ``inqueue._rlock``;
    a worker SIGKILLed while holding that lock leaves it locked forever,
    so the graceful path runs on a daemon thread with a deadline.  Past
    the deadline the workers are SIGKILLed directly and the pool's
    atexit finalizer is cancelled — it would hit the same deadlock at
    interpreter shutdown — leaving only daemon threads to abandon.
    """
    done = threading.Event()

    def _graceful():
        try:
            pool.terminate()
            pool.join()
        except Exception:   # crashed pool: teardown is best-effort
            pass
        done.set()

    thread = threading.Thread(target=_graceful, daemon=True,
                              name="repro-pool-teardown")
    thread.start()
    if done.wait(timeout_s):
        return
    for proc in list(getattr(pool, "_pool", []) or []):
        if proc.pid is not None and proc.is_alive():
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except OSError:
                pass
    finalizer = getattr(pool, "_terminate", None)
    if finalizer is not None and hasattr(finalizer, "cancel"):
        try:
            finalizer.cancel()
        except Exception:
            pass


class PoolSupervisor:
    """Owns, monitors, rebuilds and retires one process pool.

    ``factory`` builds a fresh ``multiprocessing.Pool`` (or returns None
    when pooling is impossible — no usable start method, fd exhaustion);
    the supervisor then reports itself *degraded* and every ``run``
    raises :class:`PoolBrokenError` immediately so callers fall back to
    in-process execution.
    """

    def __init__(self, factory, *, shard_timeout_s: float | None = 120.0,
                 retry: RetryPolicy | None = None, name: str = "pool",
                 registry=None, labels: dict | None = None,
                 sleep=time.sleep):
        self._factory = factory
        self.shard_timeout_s = shard_timeout_s
        self.retry = retry or RetryPolicy()
        self._name = name
        self._sleep = sleep
        self._log = get_logger("faults.pool")
        self._pool = None
        self._pool_finalizer = None
        self.degraded = False
        self.degraded_reason: str | None = None
        self.retries = 0        # shards re-dispatched
        self.rebuilds = 0       # pools rebuilt after a failure
        self._retry_metric = self._rebuild_metric = self._degraded_metric \
            = None
        if registry is not None:
            labels = dict(labels or {})
            names = tuple(labels)
            self._retry_metric = registry.counter(
                "repro_retry_total",
                "Shards re-dispatched after a pool worker was lost, hung "
                "or raised.", label_names=names).labels(**labels)
            self._rebuild_metric = registry.counter(
                "repro_pool_rebuilds_total",
                "Process pools torn down and rebuilt after a failure.",
                label_names=names).labels(**labels)
            self._degraded_metric = registry.counter(
                "repro_pool_degraded_total",
                "Times a pool gave up and execution degraded in-process.",
                label_names=names).labels(**labels)

    # -- pool lifecycle ---------------------------------------------------

    @property
    def pool(self):
        return self._pool

    def ensure(self):
        """The live pool, building one if needed; None when degraded or
        the factory declines to build one."""
        if self.degraded:
            return None
        if self._pool is None:
            pool = self._factory()
            if pool is None:
                self._mark_degraded("pool factory declined to build a pool")
                return None
            self._pool = pool
            self._pool_finalizer = weakref.finalize(self, _terminate_pool,
                                                    pool)
        return self._pool

    def worker_pids(self) -> list[int]:
        """PIDs of the current pool's workers (for chaos tests that kill
        real processes)."""
        if self._pool is None:
            return []
        return [proc.pid for proc in getattr(self._pool, "_pool", [])
                if proc.pid is not None]

    def close(self) -> None:
        """Idempotent, exception-safe teardown — callable on a pool whose
        workers have already been killed."""
        self._teardown()

    def _teardown(self) -> None:
        pool, self._pool = self._pool, None
        finalizer, self._pool_finalizer = self._pool_finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is not None:
            _terminate_pool(pool)

    def _mark_degraded(self, reason: str) -> None:
        if not self.degraded:
            self.degraded = True
            self.degraded_reason = reason
            if self._degraded_metric is not None:
                self._degraded_metric.inc()
            self._log.warning("%s: degrading to in-process execution: %s",
                              self._name, reason)

    # -- supervised execution ---------------------------------------------

    def run(self, func, tasks) -> dict:
        """Run ``func((idx, payload))`` for every ``(idx, payload)`` in
        ``tasks`` on the pool; returns {idx: result}.  Missing/failed
        shards are retried on rebuilt pools per the retry policy; raises
        :class:`PoolBrokenError` (carrying partial results) when the pool
        cannot finish."""
        pending = {int(idx): payload for idx, payload in tasks}
        results: dict = {}
        attempt = 0
        while pending:
            pool = self.ensure()
            if pool is None:
                raise PoolBrokenError(
                    f"{self._name}: process pool unavailable "
                    f"({self.degraded_reason}); {len(pending)} shard(s) "
                    f"left for in-process fallback", results,
                    sorted(pending))
            failure = self._dispatch(pool, func, pending, results)
            if not pending:
                break
            self.retries += len(pending)
            if self._retry_metric is not None:
                self._retry_metric.inc(len(pending))
            self._teardown()
            if attempt >= self.retry.max_rebuilds:
                self._mark_degraded(
                    f"{len(pending)} shard(s) still failing after "
                    f"{attempt + 1} pool build(s); last error: {failure!r}")
                raise PoolBrokenError(
                    f"{self._name}: {len(pending)} shard(s) failed after "
                    f"{attempt + 1} pool build(s) (last error: {failure!r})",
                    results, sorted(pending))
            delay = self.retry.backoff_s(attempt)
            self._log.warning(
                "%s: %d shard(s) failed (%r); rebuilding pool "
                "(rebuild %d/%d) after %.2fs backoff", self._name,
                len(pending), failure, attempt + 1,
                self.retry.max_rebuilds, delay)
            if delay > 0:
                self._sleep(delay)
            attempt += 1
            self.rebuilds += 1
            if self._rebuild_metric is not None:
                self._rebuild_metric.inc()
        return results

    def _dispatch(self, pool, func, pending: dict, results: dict):
        """One dispatch round: returns the first failure (or None) and
        moves finished shards from ``pending`` into ``results``."""
        try:
            handles = [(idx, pool.apply_async(func, ((idx, pending[idx]),)))
                       for idx in sorted(pending)]
        except Exception as exc:        # pool already broken at dispatch
            return exc
        failure = None
        for idx, handle in handles:
            timeout = (HARVEST_TIMEOUT_S if failure is not None
                       else self.shard_timeout_s)
            try:
                out = handle.get(timeout)
            except multiprocessing.TimeoutError:
                if failure is None:
                    failure = TimeoutError(
                        f"shard {idx}: no result within {timeout:g}s "
                        f"(worker lost or hung)")
            except Exception as exc:
                if failure is None:
                    failure = exc
            else:
                results[idx] = out
                pending.pop(idx)
        return failure
