"""Per-route circuit breaker for the serving layer.

Classic three-state machine:

* **closed** — requests flow; consecutive engine failures are counted.
* **open** — tripped after ``failure_threshold`` consecutive failures;
  every request is refused (the server answers 503 + ``Retry-After``)
  until ``reset_timeout_s`` has elapsed.
* **half-open** — after the timeout, exactly *one* probe request is let
  through; success closes the breaker, failure re-opens it.

Only *engine* outcomes move the state machine: client errors (400/404/
429) are recorded as *neutral* — they release a half-open probe slot
without counting for or against the engine, so a stream of bad requests
can neither trip nor heal a breaker.
"""

from __future__ import annotations

import threading
import time

#: Prometheus encoding of the state, published as ``repro_breaker_state``.
STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0, *,
                 clock=time.monotonic, on_transition=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.opens = 0          # lifetime trip count (tests/metrics)

    def _transition(self, state: str) -> None:
        self._state = state
        if state == "open":
            self._opened_at = self._clock()
            self.opens += 1
        if self._on_transition is not None:
            self._on_transition(state)

    def allow(self) -> bool:
        """May a request proceed right now?  In half-open state only one
        probe is admitted at a time; callers that got True MUST report an
        outcome (success/failure/neutral) to release the slot."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at < self.reset_timeout_s:
                    return False
                self._transition("half_open")
                self._probe_in_flight = True
                return True
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probe_in_flight = False
            if self._state != "closed":
                self._transition("closed")

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            if self._state == "half_open":
                self._transition("open")
                return
            self._failures += 1
            if self._state == "closed" \
                    and self._failures >= self.failure_threshold:
                self._transition("open")

    def record_neutral(self) -> None:
        """Client-error outcome: releases a half-open probe slot without
        moving the state machine."""
        with self._lock:
            self._probe_in_flight = False

    def retry_after_s(self) -> float:
        """Seconds until the next half-open probe would be admitted."""
        with self._lock:
            if self._state != "open":
                return 0.0
            remaining = self.reset_timeout_s \
                - (self._clock() - self._opened_at)
            return max(remaining, 0.0)

    @property
    def state(self) -> str:
        return self._state

    @property
    def state_code(self) -> int:
        return STATE_CODES[self._state]
