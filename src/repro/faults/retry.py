"""Capped exponential backoff policy for pool rebuilds."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a :class:`~repro.faults.PoolSupervisor` fights to keep a
    process pool alive before degrading to in-process execution.

    ``max_rebuilds`` pool rebuilds are attempted (so up to
    ``max_rebuilds + 1`` pool generations run), each preceded by a
    ``backoff_base_s * backoff_factor**attempt`` sleep capped at
    ``backoff_max_s``.
    """

    max_rebuilds: int = 2
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0

    def backoff_s(self, attempt: int) -> float:
        """Delay before rebuild number ``attempt`` (0-based)."""
        return min(self.backoff_base_s * self.backoff_factor ** attempt,
                   self.backoff_max_s)
