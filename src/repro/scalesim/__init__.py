"""``repro.scalesim`` — analytical systolic-array simulator (Scale-Sim style).

The substrate AIRCHITECT v1 [5] was originally built on; used here for the
systolic DSE context and as an independent sanity check of the MAESTRO-style
cost model's qualitative behaviour.
"""

from .systolic import SystolicArray, SystolicMapping, SystolicResult

__all__ = ["SystolicArray", "SystolicMapping", "SystolicResult"]
