"""Scale-Sim-style analytical systolic-array model.

AIRCHITECT v1 [5] was demonstrated on systolic-array DSE tasks whose ground
truth came from the Scale-Sim simulator [17], [20].  This module implements
Scale-Sim's *analytical* runtime equations for a rows x cols systolic array
executing a GEMM ``(M, K) x (K, N)`` under the three classic mappings:

* ``OS`` (output stationary):  spatial (M, N), temporal K.
  Cycles per fold: ``2 * rows + cols + K - 2``.
* ``WS`` (weight stationary):  spatial (K, N), temporal M.
  Cycles per fold: ``rows + cols + M - 1`` (weight fill then stream).
* ``IS`` (input stationary):   spatial (K, M), temporal N.
  Cycles per fold: ``rows + cols + N - 1``.

A *fold* is one pass with a full set of stationary values; workloads larger
than the array are processed in ``ceil(dim1/rows) * ceil(dim2/cols)`` folds.
SRAM traffic estimates follow the same operand-reuse reasoning Scale-Sim
reports in its per-layer CSV outputs.

This substrate is used (a) for the v1-style systolic design-space context,
and (b) as an independent cross-check of the MAESTRO-style model's
qualitative behaviour (both must agree that small layers prefer small
arrays, etc. — see ``tests/scalesim``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["SystolicMapping", "SystolicArray", "SystolicResult"]


class SystolicMapping(enum.IntEnum):
    """Scale-Sim's three dataflow mappings."""

    OUTPUT_STATIONARY = 0
    WEIGHT_STATIONARY = 1
    INPUT_STATIONARY = 2

    @property
    def short_name(self) -> str:
        return {SystolicMapping.OUTPUT_STATIONARY: "os",
                SystolicMapping.WEIGHT_STATIONARY: "ws",
                SystolicMapping.INPUT_STATIONARY: "is"}[self]


@dataclass
class SystolicResult:
    """Vectorised systolic-array analysis outputs."""

    cycles: np.ndarray
    folds: np.ndarray
    utilization: np.ndarray
    sram_reads: np.ndarray
    sram_writes: np.ndarray

    @property
    def macs_per_cycle(self) -> np.ndarray:
        return self.utilization


class SystolicArray:
    """An analytical rows x cols systolic array.

    Parameters
    ----------
    rows, cols:
        Physical PE array dimensions.
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be >= 1")
        self.rows = rows
        self.cols = cols

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def run_gemm(self, m, n, k, mapping: SystolicMapping) -> SystolicResult:
        """Analytical runtime for GEMM(s); ``m, n, k`` broadcast together."""
        m = np.asarray(m, dtype=np.int64)
        n = np.asarray(n, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        m, n, k = np.broadcast_arrays(m, n, k)
        rows, cols = self.rows, self.cols

        if mapping is SystolicMapping.OUTPUT_STATIONARY:
            d1, d2, temporal = m, n, k
            per_fold = 2 * rows + cols + temporal - 2
        elif mapping is SystolicMapping.WEIGHT_STATIONARY:
            d1, d2, temporal = k, n, m
            per_fold = rows + cols + temporal - 1
        elif mapping is SystolicMapping.INPUT_STATIONARY:
            d1, d2, temporal = k, m, n
            per_fold = rows + cols + temporal - 1
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unhandled mapping {mapping}")

        folds1 = -(-d1 // rows)
        folds2 = -(-d2 // cols)
        folds = folds1 * folds2
        cycles = folds * per_fold

        macs = (m * n * k).astype(np.float64)
        utilization = macs / (cycles * self.num_pes)

        # SRAM traffic: operands are read once per fold touching them,
        # outputs written once (plus partial-sum re-writes for WS/IS where
        # the reduction dimension is spatial across folds1).
        if mapping is SystolicMapping.OUTPUT_STATIONARY:
            reads = m * k * folds2 + k * n * folds1
            writes = m * n
        elif mapping is SystolicMapping.WEIGHT_STATIONARY:
            reads = k * n + m * k * folds2
            writes = m * n * folds1
        else:
            reads = m * k + k * n * folds2
            writes = m * n * folds1

        return SystolicResult(cycles=cycles.astype(np.float64),
                              folds=folds.astype(np.float64),
                              utilization=utilization,
                              sram_reads=reads.astype(np.float64),
                              sram_writes=writes.astype(np.float64))

    def best_mapping(self, m: int, n: int, k: int) -> tuple[SystolicMapping, float]:
        """Return the (mapping, cycles) pair minimising runtime."""
        best = None
        for mapping in SystolicMapping:
            cycles = float(self.run_gemm(m, n, k, mapping).cycles)
            if best is None or cycles < best[1]:
                best = (mapping, cycles)
        return best
