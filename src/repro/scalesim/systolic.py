"""Scale-Sim-style analytical systolic-array model.

AIRCHITECT v1 [5] was demonstrated on systolic-array DSE tasks whose ground
truth came from the Scale-Sim simulator [17], [20].  This module implements
Scale-Sim's *analytical* runtime equations for a rows x cols systolic array
executing a GEMM ``(M, K) x (K, N)`` under the three classic mappings:

* ``OS`` (output stationary):  spatial (M, N), temporal K.
  Cycles per fold: ``2 * rows + cols + K - 2``.
* ``WS`` (weight stationary):  spatial (K, N), temporal M.
  Cycles per fold: ``rows + cols + M - 1`` (weight fill then stream).
* ``IS`` (input stationary):   spatial (K, M), temporal N.
  Cycles per fold: ``rows + cols + N - 1``.

A *fold* is one pass with a full set of stationary values; workloads larger
than the array are processed in ``ceil(dim1/rows) * ceil(dim2/cols)`` folds.
SRAM traffic estimates follow the same operand-reuse reasoning Scale-Sim
reports in its per-layer CSV outputs.

This substrate is used (a) for the v1-style systolic design-space context,
and (b) as an independent cross-check of the MAESTRO-style model's
qualitative behaviour (both must agree that small layers prefer small
arrays, etc. — see ``tests/scalesim``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["SystolicMapping", "SystolicArray", "SystolicResult"]


class SystolicMapping(enum.IntEnum):
    """Scale-Sim's three dataflow mappings."""

    OUTPUT_STATIONARY = 0
    WEIGHT_STATIONARY = 1
    INPUT_STATIONARY = 2

    @property
    def short_name(self) -> str:
        return {SystolicMapping.OUTPUT_STATIONARY: "os",
                SystolicMapping.WEIGHT_STATIONARY: "ws",
                SystolicMapping.INPUT_STATIONARY: "is"}[self]


@dataclass
class SystolicResult:
    """Vectorised systolic-array analysis outputs."""

    cycles: np.ndarray
    folds: np.ndarray
    utilization: np.ndarray
    sram_reads: np.ndarray
    sram_writes: np.ndarray

    @property
    def macs_per_cycle(self) -> np.ndarray:
        return self.utilization


class SystolicArray:
    """An analytical rows x cols systolic array.

    Parameters
    ----------
    rows, cols:
        Physical PE array dimensions.
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be >= 1")
        self.rows = rows
        self.cols = cols

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def run_gemm(self, m, n, k, mapping: SystolicMapping) -> SystolicResult:
        """Analytical runtime for GEMM(s); ``m, n, k`` broadcast together."""
        mapping = SystolicMapping(mapping)  # raises on unhandled mappings
        m, n, k = np.broadcast_arrays(np.asarray(m, dtype=np.int64),
                                      np.asarray(n, dtype=np.int64),
                                      np.asarray(k, dtype=np.int64))
        mapping_idx = np.full(m.shape, int(mapping), dtype=np.int64)
        return self._analyze(m, n, k, mapping_idx)

    def run_gemm_mixed(self, m, n, k, mappings) -> SystolicResult:
        """Like :meth:`run_gemm` but with a *per-workload* mapping array.

        ``m, n, k, mappings`` broadcast together; the whole batch is
        evaluated in one vectorised pass (no per-sample Python branching),
        so heterogeneous-mapping sweeps need no grouping by mapping.
        """
        mappings = np.asarray(mappings, dtype=np.int64)
        if mappings.size and not np.isin(mappings, [int(v) for v in
                                                    SystolicMapping]).all():
            raise ValueError("mappings must be SystolicMapping values (0..2)")
        m, n, k, mappings = np.broadcast_arrays(
            np.asarray(m, dtype=np.int64), np.asarray(n, dtype=np.int64),
            np.asarray(k, dtype=np.int64), mappings)
        return self._analyze(m, n, k, mappings)

    def _analyze(self, m, n, k, mapping_idx) -> SystolicResult:
        """Vectorised core: per-element mapping selection via masks."""
        rows, cols = self.rows, self.cols
        os = mapping_idx == int(SystolicMapping.OUTPUT_STATIONARY)
        ws = mapping_idx == int(SystolicMapping.WEIGHT_STATIONARY)

        # Spatial dims (d1 across rows, d2 across cols) and temporal stream:
        #   OS: (M, N) spatial, K temporal;  WS: (K, N), M;  IS: (K, M), N.
        d1 = np.where(os, m, k)
        d2 = np.where(os | ws, n, m)
        temporal = np.where(os, k, np.where(ws, m, n))
        per_fold = np.where(os, 2 * rows + cols + temporal - 2,
                            rows + cols + temporal - 1)

        folds1 = -(-d1 // rows)
        folds2 = -(-d2 // cols)
        folds = folds1 * folds2
        cycles = folds * per_fold

        macs = (m * n * k).astype(np.float64)
        utilization = macs / (cycles * self.num_pes)

        # SRAM traffic: operands are read once per fold touching them,
        # outputs written once (plus partial-sum re-writes for WS/IS where
        # the reduction dimension is spatial across folds1).
        reads = np.where(os, m * k * folds2 + k * n * folds1,
                         np.where(ws, k * n + m * k * folds2,
                                  m * k + k * n * folds2))
        writes = np.where(os, m * n, m * n * folds1)

        return SystolicResult(cycles=cycles.astype(np.float64),
                              folds=folds.astype(np.float64),
                              utilization=utilization,
                              sram_reads=reads.astype(np.float64),
                              sram_writes=writes.astype(np.float64))

    def best_mapping_batch(self, m, n, k) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised mapping search: (mapping indices, cycles) per workload.

        Evaluates all three mappings for the whole batch in three
        vectorised passes and selects per workload (first mapping in enum
        order wins ties, matching :meth:`best_mapping`).
        """
        m, n, k = np.broadcast_arrays(np.asarray(m, dtype=np.int64),
                                      np.asarray(n, dtype=np.int64),
                                      np.asarray(k, dtype=np.int64))
        all_cycles = np.stack([self.run_gemm(m, n, k, mapping).cycles
                               for mapping in SystolicMapping])
        best = np.argmin(all_cycles, axis=0)
        return best, np.min(all_cycles, axis=0)

    def best_mapping(self, m: int, n: int, k: int) -> tuple[SystolicMapping, float]:
        """Return the (mapping, cycles) pair minimising runtime."""
        mapping_idx, cycles = self.best_mapping_batch(m, n, k)
        return SystolicMapping(int(mapping_idx)), float(cycles)
