"""CNN workload builders: ResNet, VGG, MobileNet, DenseNet, SqueezeNet, ...

Each builder returns a :class:`ModelWorkload` whose layers follow the
published architecture (channel/stride schedules), lowered to GEMM with
:mod:`repro.workloads.lowering`.  Input resolution is a parameter so one
architecture yields several distinct workloads (the registry uses this to
assemble the paper's 105-model training zoo).
"""

from __future__ import annotations

from ..maestro import GemmWorkload
from .lowering import conv2d_gemm, conv_out_size, depthwise_gemm, linear_gemm
from .model import ModelWorkload

__all__ = ["lenet5", "alexnet", "vgg", "resnet", "cifar_resnet",
           "mobilenet_v1", "mobilenet_v2", "densenet", "squeezenet"]


class _ConvTape:
    """Tracks spatial resolution/channels while appending conv GEMMs."""

    def __init__(self, in_size: int, in_ch: int = 3):
        self.size = in_size
        self.ch = in_ch
        self.layers: list[GemmWorkload] = []

    def conv(self, out_ch: int, kernel: int, stride: int = 1,
             padding: int | None = None, name: str = "") -> "_ConvTape":
        if padding is None:
            padding = kernel // 2
        out = conv_out_size(self.size, kernel, stride, padding)
        self.layers.append(conv2d_gemm(out_ch, self.ch, kernel, out, out, name))
        self.size, self.ch = out, out_ch
        return self

    def depthwise(self, kernel: int, stride: int = 1, name: str = "") -> "_ConvTape":
        out = conv_out_size(self.size, kernel, stride, kernel // 2)
        self.layers.append(depthwise_gemm(self.ch, kernel, out, out, name))
        self.size = out
        return self

    def pool(self, factor: int = 2) -> "_ConvTape":
        self.size = max(self.size // factor, 1)
        return self

    def fc(self, out_features: int, name: str = "") -> "_ConvTape":
        in_features = self.ch * self.size * self.size
        self.layers.append(linear_gemm(out_features, in_features, 1, name))
        self.ch, self.size = out_features, 1
        return self

    def global_pool(self) -> "_ConvTape":
        self.size = 1
        return self


def _ch(channels: int, width_mult: float) -> int:
    """Width-multiplied channel count, rounded to a multiple of 8, min 8."""
    return max(8, int(channels * width_mult + 4) // 8 * 8)


# ----------------------------------------------------------------------
# Classic CNNs
# ----------------------------------------------------------------------
def lenet5(in_size: int = 32) -> ModelWorkload:
    """LeCun's LeNet-5 (the smallest workload in the zoo)."""
    t = _ConvTape(in_size, in_ch=1)
    t.conv(6, 5, padding=0, name="c1").pool()
    t.conv(16, 5, padding=0, name="c3").pool()
    t.fc(120, "f5").fc(84, "f6").fc(10, "out")
    return ModelWorkload.from_layers(f"lenet5_{in_size}", t.layers, family="lenet")


def alexnet(in_size: int = 224) -> ModelWorkload:
    """AlexNet (single-tower variant)."""
    t = _ConvTape(in_size)
    t.conv(96, 11, stride=4, padding=2, name="conv1").pool()
    t.conv(256, 5, name="conv2").pool()
    t.conv(384, 3, name="conv3")
    t.conv(384, 3, name="conv4")
    t.conv(256, 3, name="conv5").pool()
    t.size = 6 if in_size == 224 else max(t.size, 1)
    t.fc(4096, "fc6").fc(4096, "fc7").fc(1000, "fc8")
    return ModelWorkload.from_layers(f"alexnet_{in_size}", t.layers, family="alexnet")


_VGG_PLANS = {
    11: [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    13: [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    16: [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
         512, 512, 512, "M", 512, 512, 512, "M"],
    19: [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
         512, 512, 512, 512, "M", 512, 512, 512, 512, "M"],
}


def vgg(depth: int, in_size: int = 224) -> ModelWorkload:
    """VGG-{11,13,16,19} with 3x3 convs and max-pool stages."""
    if depth not in _VGG_PLANS:
        raise ValueError(f"unsupported VGG depth {depth}")
    t = _ConvTape(in_size)
    for step in _VGG_PLANS[depth]:
        if step == "M":
            t.pool()
        else:
            t.conv(step, 3, name=f"conv{len(t.layers)}")
    t.fc(4096, "fc1").fc(4096, "fc2").fc(1000, "fc3")
    return ModelWorkload.from_layers(f"vgg{depth}_{in_size}", t.layers, family="vgg")


# ----------------------------------------------------------------------
# ResNets
# ----------------------------------------------------------------------
_RESNET_PLANS = {
    18: ("basic", [2, 2, 2, 2]),
    34: ("basic", [3, 4, 6, 3]),
    50: ("bottleneck", [3, 4, 6, 3]),
    101: ("bottleneck", [3, 4, 23, 3]),
    152: ("bottleneck", [3, 8, 36, 3]),
}


def resnet(depth: int, in_size: int = 224) -> ModelWorkload:
    """ImageNet ResNet-{18,34,50,101,152} (He et al. 2016)."""
    if depth not in _RESNET_PLANS:
        raise ValueError(f"unsupported ResNet depth {depth}")
    block, stages = _RESNET_PLANS[depth]
    t = _ConvTape(in_size)
    t.conv(64, 7, stride=2, padding=3, name="stem").pool()

    widths = [64, 128, 256, 512]
    for stage, (width, blocks) in enumerate(zip(widths, stages)):
        for b in range(blocks):
            stride = 2 if (stage > 0 and b == 0) else 1
            tag = f"s{stage}b{b}"
            if block == "basic":
                t.conv(width, 3, stride=stride, name=f"{tag}.conv1")
                t.conv(width, 3, name=f"{tag}.conv2")
            else:
                t.conv(width, 1, stride=1, padding=0, name=f"{tag}.conv1")
                t.conv(width, 3, stride=stride, name=f"{tag}.conv2")
                t.conv(width * 4, 1, padding=0, name=f"{tag}.conv3")
            if b == 0:  # projection shortcut
                t.layers.append(conv2d_gemm(
                    t.ch, widths[stage - 1] * (4 if block == "bottleneck" else 1)
                    if stage > 0 else 64,
                    1, t.size, t.size, f"{tag}.proj"))
    t.global_pool()
    t.fc(1000, "fc")
    return ModelWorkload.from_layers(f"resnet{depth}_{in_size}", t.layers,
                                     family="resnet")


def cifar_resnet(depth: int, in_size: int = 32) -> ModelWorkload:
    """CIFAR-style ResNet-{20,32,44,56,110}: 3 stages of 16/32/64 channels."""
    if (depth - 2) % 6 != 0:
        raise ValueError("CIFAR ResNet depth must be 6n + 2")
    n = (depth - 2) // 6
    t = _ConvTape(in_size)
    t.conv(16, 3, name="stem")
    for stage, width in enumerate([16, 32, 64]):
        for b in range(n):
            stride = 2 if (stage > 0 and b == 0) else 1
            t.conv(width, 3, stride=stride, name=f"s{stage}b{b}.conv1")
            t.conv(width, 3, name=f"s{stage}b{b}.conv2")
    t.global_pool()
    t.fc(10, "fc")
    return ModelWorkload.from_layers(f"cifar_resnet{depth}_{in_size}", t.layers,
                                     family="cifar_resnet")


# ----------------------------------------------------------------------
# Mobile CNNs
# ----------------------------------------------------------------------
def mobilenet_v1(width_mult: float = 1.0, in_size: int = 224) -> ModelWorkload:
    """MobileNetV1 depthwise-separable stack."""
    plan = [(64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
            (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
            (1024, 2), (1024, 1)]
    t = _ConvTape(in_size)
    t.conv(_ch(32, width_mult), 3, stride=2, name="stem")
    for i, (out_ch, stride) in enumerate(plan):
        t.depthwise(3, stride=stride, name=f"dw{i}")
        t.conv(_ch(out_ch, width_mult), 1, padding=0, name=f"pw{i}")
    t.global_pool()
    t.fc(1000, "fc")
    tag = str(width_mult).replace(".", "")
    return ModelWorkload.from_layers(f"mobilenetv1_{tag}_{in_size}", t.layers,
                                     family="mobilenet")


def mobilenet_v2(width_mult: float = 1.0, in_size: int = 224) -> ModelWorkload:
    """MobileNetV2 inverted residual stack (expansion-depthwise-projection)."""
    # (expansion, out_ch, repeats, stride)
    plan = [(1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
            (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1)]
    t = _ConvTape(in_size)
    t.conv(_ch(32, width_mult), 3, stride=2, name="stem")
    for i, (exp, out_ch, repeats, stride) in enumerate(plan):
        for r in range(repeats):
            s = stride if r == 0 else 1
            hidden = t.ch * exp
            if exp != 1:
                t.conv(hidden, 1, padding=0, name=f"b{i}.{r}.expand")
            t.depthwise(3, stride=s, name=f"b{i}.{r}.dw")
            t.conv(_ch(out_ch, width_mult), 1, padding=0, name=f"b{i}.{r}.project")
    t.conv(max(1280, _ch(1280, width_mult)), 1, padding=0, name="head")
    t.global_pool()
    t.fc(1000, "fc")
    tag = str(width_mult).replace(".", "")
    return ModelWorkload.from_layers(f"mobilenetv2_{tag}_{in_size}", t.layers,
                                     family="mobilenet")


# ----------------------------------------------------------------------
# DenseNet / SqueezeNet
# ----------------------------------------------------------------------
_DENSENET_PLANS = {121: [6, 12, 24, 16], 169: [6, 12, 32, 32],
                   201: [6, 12, 48, 32]}


def densenet(depth: int, in_size: int = 224, growth: int = 32) -> ModelWorkload:
    """DenseNet-{121,169,201}: dense blocks with 1x1+3x3 composite layers."""
    if depth not in _DENSENET_PLANS:
        raise ValueError(f"unsupported DenseNet depth {depth}")
    t = _ConvTape(in_size)
    t.conv(2 * growth, 7, stride=2, padding=3, name="stem").pool()
    channels = 2 * growth
    for stage, blocks in enumerate(_DENSENET_PLANS[depth]):
        for b in range(blocks):
            t.ch = channels
            t.conv(4 * growth, 1, padding=0, name=f"d{stage}.{b}.bottleneck")
            t.conv(growth, 3, name=f"d{stage}.{b}.conv")
            channels += growth
        if stage < 3:  # transition: halve channels and resolution
            t.ch = channels
            channels = channels // 2
            t.conv(channels, 1, padding=0, name=f"t{stage}")
            t.pool()
    t.ch = channels
    t.global_pool()
    t.fc(1000, "fc")
    return ModelWorkload.from_layers(f"densenet{depth}_{in_size}", t.layers,
                                     family="densenet")


def squeezenet(in_size: int = 224) -> ModelWorkload:
    """SqueezeNet v1.1 fire modules (squeeze 1x1 -> expand 1x1 + 3x3)."""
    fires = [(16, 64), (16, 64), (32, 128), (32, 128),
             (48, 192), (48, 192), (64, 256), (64, 256)]
    t = _ConvTape(in_size)
    t.conv(64, 3, stride=2, padding=0, name="stem").pool()
    for i, (squeeze, expand) in enumerate(fires):
        if i in (2, 4):
            t.pool()
        t.conv(squeeze, 1, padding=0, name=f"fire{i}.squeeze")
        in_ch = t.ch
        t.conv(expand, 1, padding=0, name=f"fire{i}.expand1")
        t.ch = in_ch
        t.conv(expand, 3, name=f"fire{i}.expand3")
        t.ch = expand * 2
    t.conv(1000, 1, padding=0, name="conv10")
    return ModelWorkload.from_layers(f"squeezenet_{in_size}", t.layers,
                                     family="squeezenet")
