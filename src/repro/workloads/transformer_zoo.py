"""Transformer/LLM workload builders: BERT, GPT-2, ViT, T5, Llama-2/3.

Each transformer block contributes the projection GEMMs (QKV/output/FFN)
plus the per-head attention score and context GEMMs; repeated blocks are
stored once with a multiplicity (see :class:`ModelWorkload`).  LLM prefill
is modelled (a full token batch flows through every GEMM); grouped-query
attention (Llama-3 style) shrinks the K/V projection output dims.
"""

from __future__ import annotations

from ..maestro import GemmWorkload
from .lowering import (attention_context_gemm, attention_score_gemm,
                       conv2d_gemm, linear_gemm)
from .model import ModelWorkload

__all__ = ["transformer_encoder", "bert", "gpt2", "vit", "t5_encoder", "llama"]


def _block_layers(seq: int, d_model: int, n_heads: int, d_ff: int,
                  kv_heads: int | None = None, gated_ffn: bool = False,
                  tag: str = "blk") -> list[GemmWorkload]:
    """GEMMs of one transformer block (attention + FFN)."""
    kv_heads = kv_heads or n_heads
    head_dim = d_model // n_heads
    kv_dim = head_dim * kv_heads
    layers = [
        linear_gemm(d_model, d_model, seq, f"{tag}.q_proj"),
        linear_gemm(kv_dim, d_model, seq, f"{tag}.k_proj"),
        linear_gemm(kv_dim, d_model, seq, f"{tag}.v_proj"),
    ]
    # Per-head attention GEMMs (each head is one GEMM instance).
    layers.extend(attention_score_gemm(seq, head_dim, f"{tag}.scores.h{h}")
                  for h in range(n_heads))
    layers.extend(attention_context_gemm(seq, head_dim, f"{tag}.context.h{h}")
                  for h in range(n_heads))
    layers.append(linear_gemm(d_model, d_model, seq, f"{tag}.out_proj"))
    if gated_ffn:  # Llama-style SwiGLU: gate + up + down
        layers.append(linear_gemm(d_ff, d_model, seq, f"{tag}.ffn_gate"))
        layers.append(linear_gemm(d_ff, d_model, seq, f"{tag}.ffn_up"))
        layers.append(linear_gemm(d_model, d_ff, seq, f"{tag}.ffn_down"))
    else:
        layers.append(linear_gemm(d_ff, d_model, seq, f"{tag}.ffn_up"))
        layers.append(linear_gemm(d_model, d_ff, seq, f"{tag}.ffn_down"))
    return layers


def transformer_encoder(name: str, seq: int, d_model: int, n_heads: int,
                        d_ff: int, n_layers: int, family: str,
                        kv_heads: int | None = None,
                        gated_ffn: bool = False,
                        extra: list[GemmWorkload] | None = None) -> ModelWorkload:
    """Generic stack of identical transformer blocks plus optional extras."""
    layers: list[GemmWorkload] = list(extra or [])
    for i in range(n_layers):
        layers.extend(_block_layers(seq, d_model, n_heads, d_ff,
                                    kv_heads=kv_heads, gated_ffn=gated_ffn,
                                    tag=f"layer{i}"))
    return ModelWorkload.from_layers(name, layers, family=family)


# ----------------------------------------------------------------------
# Named model families
# ----------------------------------------------------------------------
_BERT = {"base": (768, 12, 3072, 12), "large": (1024, 16, 4096, 24)}


def bert(size: str = "base", seq: int = 128) -> ModelWorkload:
    """BERT-base/large encoder at a given sequence length."""
    d_model, n_heads, d_ff, n_layers = _BERT[size]
    return transformer_encoder(f"bert_{size}_seq{seq}", seq, d_model, n_heads,
                               d_ff, n_layers, family="bert")


_GPT2 = {"small": (768, 12, 3072, 12), "medium": (1024, 16, 4096, 24),
         "large": (1280, 20, 5120, 36), "xl": (1600, 25, 6400, 48)}


def gpt2(size: str = "small", seq: int = 1024) -> ModelWorkload:
    """GPT-2 decoder stack (prefill) at a given sequence length."""
    d_model, n_heads, d_ff, n_layers = _GPT2[size]
    return transformer_encoder(f"gpt2_{size}_seq{seq}", seq, d_model, n_heads,
                               d_ff, n_layers, family="gpt2")


_VIT = {"s16": (384, 6, 1536, 12), "b16": (768, 12, 3072, 12),
        "l16": (1024, 16, 4096, 24), "h14": (1280, 16, 5120, 32)}


def vit(size: str = "b16", in_size: int = 224) -> ModelWorkload:
    """Vision Transformer: patch-embedding conv + encoder blocks."""
    d_model, n_heads, d_ff, n_layers = _VIT[size]
    patch = 14 if size.endswith("14") else 16
    tokens = (in_size // patch) ** 2 + 1  # +1 CLS token
    embed = conv2d_gemm(d_model, 3, patch, in_size // patch, in_size // patch,
                        "patch_embed")
    return transformer_encoder(f"vit_{size}_{in_size}", tokens, d_model,
                               n_heads, d_ff, n_layers, family="vit",
                               extra=[embed])


_T5 = {"small": (512, 8, 2048, 6), "base": (768, 12, 3072, 12),
       "large": (1024, 16, 4096, 24)}


def t5_encoder(size: str = "base", seq: int = 512) -> ModelWorkload:
    """T5 encoder stack."""
    d_model, n_heads, d_ff, n_layers = _T5[size]
    return transformer_encoder(f"t5_{size}_seq{seq}", seq, d_model, n_heads,
                               d_ff, n_layers, family="t5")


_LLAMA = {
    # name: (d_model, n_heads, kv_heads, d_ff, n_layers, gated)
    "llama2_7b": (4096, 32, 32, 11008, 32, True),
    "llama2_13b": (5120, 40, 40, 13824, 40, True),
    "llama2_70b": (8192, 64, 8, 28672, 80, True),
    "llama3_8b": (4096, 32, 8, 14336, 32, True),
    "llama3_70b": (8192, 64, 8, 28672, 80, True),
}


def llama(variant: str = "llama2_7b", seq: int = 2048) -> ModelWorkload:
    """Llama-2/3 decoder stack (prefill), with GQA where applicable."""
    d_model, n_heads, kv_heads, d_ff, n_layers, gated = _LLAMA[variant]
    return transformer_encoder(f"{variant}_seq{seq}", seq, d_model, n_heads,
                               d_ff, n_layers, family="llama",
                               kv_heads=kv_heads, gated_ffn=gated)
