"""The workload registry: 105 training models + held-out evaluation models.

The paper's dataset is built from **105 real DNN workloads** and its
generalisation study (Fig. 7) evaluates on *unseen* models — representative
DNNs and LLMs [32]-[34].  This registry enumerates exactly 105 named
training workloads (CNN and transformer families at several input
resolutions / sequence lengths) and a disjoint evaluation set containing
ResNet-50, Llama2-7B, Llama3-8B and friends.

``training_workloads()`` / ``evaluation_workloads()`` build the actual
:class:`ModelWorkload` objects (lazily — building all 105 takes ~100 ms).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from .cnn_zoo import (alexnet, cifar_resnet, densenet, lenet5, mobilenet_v1,
                      mobilenet_v2, resnet, squeezenet, vgg)  # noqa: F401
from .model import ModelWorkload
from .transformer_zoo import bert, gpt2, llama, t5_encoder, vit

__all__ = ["TRAINING_MODEL_COUNT", "training_registry", "evaluation_registry",
           "training_workloads", "evaluation_workloads", "build_workload",
           "all_training_layers"]

TRAINING_MODEL_COUNT = 105


def _training_specs() -> dict[str, Callable[[], ModelWorkload]]:
    """The 105 training-model builders, keyed by canonical name."""
    specs: dict[str, Callable[[], ModelWorkload]] = {}

    def add(factory: Callable[[], ModelWorkload]) -> None:
        model = factory()
        if model.name in specs:
            raise ValueError(f"duplicate workload {model.name}")
        specs[model.name] = factory

    # --- CNNs ----------------------------------------------------------
    for depth in (11, 13, 16, 19):                         # 16 VGGs
        for size in (224, 192, 160, 128):
            add(lambda d=depth, s=size: vgg(d, s))
    for depth in (18, 34, 101, 152):                       # 16 ResNets
        for size in (224, 192, 160, 128):
            add(lambda d=depth, s=size: resnet(d, s))
    for size in (192, 160, 128):                           # 3 ResNet-50s
        add(lambda s=size: resnet(50, s))                  # (224 held out)
    for width in (0.25, 0.5, 0.75, 1.0):                   # 8 MobileNetV1
        for size in (224, 160):
            add(lambda w=width, s=size: mobilenet_v1(w, s))
    for width in (0.5, 0.75, 1.0, 1.4):                    # 8 MobileNetV2
        for size in (224, 160):
            add(lambda w=width, s=size: mobilenet_v2(w, s))
    for depth in (121, 169, 201):                          # 6 DenseNets
        for size in (224, 160):
            add(lambda d=depth, s=size: densenet(d, s))
    for size in (224, 160):                                # 2 SqueezeNets
        add(lambda s=size: squeezenet(s))
    add(lambda: alexnet(224))                              # 1
    add(lambda: lenet5(32))                                # 1
    for depth in (20, 32, 44, 56, 110):                    # 5 CIFAR ResNets
        add(lambda d=depth: cifar_resnet(d))
    for depth in (11, 13, 16, 19):                         # 4 small VGGs
        add(lambda d=depth: vgg(d, 96))

    # --- Transformers ---------------------------------------------------
    for size in ("base", "large"):                         # 8 BERTs
        for seq in (128, 256, 384, 512):
            add(lambda z=size, q=seq: bert(z, q))
    for size in ("small", "medium", "large", "xl"):        # 12 GPT-2s
        for seq in (256, 512, 1024):
            add(lambda z=size, q=seq: gpt2(z, q))
    for size in ("s16", "b16", "l16"):                     # 6 ViTs
        for res in (224, 192):
            add(lambda z=size, r=res: vit(z, r))
    for size in ("small", "base", "large"):                # 3 T5 encoders
        add(lambda z=size: t5_encoder(z, 512))
    for variant in ("llama2_13b", "llama2_70b"):           # 4 Llama-2
        for seq in (1024, 2048):                           # (7B held out)
            add(lambda v=variant, q=seq: llama(v, q))
    for seq in (1024, 2048):                               # 2 Llama-3 70B
        add(lambda q=seq: llama("llama3_70b", q))          # (8B held out)

    return specs


def _evaluation_specs() -> dict[str, Callable[[], ModelWorkload]]:
    """Held-out models for the Fig. 7 generalisation study."""
    factories = [
        lambda: resnet(50, 224),
        lambda: llama("llama2_7b", 2048),
        lambda: llama("llama3_8b", 2048),
        lambda: bert("base", 192),
        lambda: gpt2("xl", 2048),
        lambda: vit("h14", 224),
        # Unseen small/heterogeneous models: their layers exercise the
        # interior of the design space where methods actually disagree.
        lambda: mobilenet_v2(1.0, 192),
        lambda: vgg(16, 256),
    ]
    return {factory().name: factory for factory in factories}


@lru_cache(maxsize=1)
def training_registry() -> dict[str, Callable[[], ModelWorkload]]:
    """Name -> builder for the 105 training models (validated count)."""
    specs = _training_specs()
    if len(specs) != TRAINING_MODEL_COUNT:
        raise AssertionError(
            f"training registry has {len(specs)} models, expected "
            f"{TRAINING_MODEL_COUNT}")
    eval_names = set(_evaluation_specs())
    overlap = eval_names & set(specs)
    if overlap:
        raise AssertionError(f"evaluation models leak into training: {overlap}")
    return specs


@lru_cache(maxsize=1)
def evaluation_registry() -> dict[str, Callable[[], ModelWorkload]]:
    return _evaluation_specs()


def build_workload(name: str) -> ModelWorkload:
    """Build a workload by name from either registry."""
    for registry in (training_registry(), evaluation_registry()):
        if name in registry:
            return registry[name]()
    raise KeyError(f"unknown workload {name!r}")


def training_workloads() -> list[ModelWorkload]:
    """Materialise all 105 training models."""
    return [factory() for factory in training_registry().values()]


def evaluation_workloads() -> list[ModelWorkload]:
    """Materialise the held-out evaluation models."""
    return [factory() for factory in evaluation_registry().values()]


def all_training_layers():
    """Stacked (L, 3) array of unique (M, N, K) layers across all 105 models."""
    import numpy as np

    arrays = [model.layer_array() for model in training_workloads()]
    return np.concatenate(arrays, axis=0)
