"""ModelWorkload: a named DNN as a weighted list of GEMM layers.

Identical layers (e.g. the 32 transformer blocks of Llama2-7B) are stored
once with a repetition count; model-level latency aggregation multiplies by
the count, which keeps deployment evaluation (Fig. 7) cheap without losing
the true layer distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..maestro import GemmWorkload

__all__ = ["ModelWorkload"]


@dataclass(frozen=True)
class ModelWorkload:
    """A DNN/LLM workload: name + GEMM layers with multiplicities."""

    name: str
    layers: tuple[GemmWorkload, ...]
    counts: tuple[int, ...]
    family: str = ""

    def __post_init__(self):
        if len(self.layers) != len(self.counts):
            raise ValueError("layers and counts must align")
        if any(c < 1 for c in self.counts):
            raise ValueError("layer counts must be >= 1")

    @classmethod
    def from_layers(cls, name: str, layers: list[GemmWorkload],
                    family: str = "") -> "ModelWorkload":
        """Build from a flat layer list, merging identical shapes."""
        merged: dict[tuple[int, int, int], tuple[GemmWorkload, int]] = {}
        order: list[tuple[int, int, int]] = []
        for layer in layers:
            key = (layer.m, layer.n, layer.k)
            if key in merged:
                existing, count = merged[key]
                merged[key] = (existing, count + 1)
            else:
                merged[key] = (layer, 1)
                order.append(key)
        kept = [merged[key] for key in order]
        return cls(name=name,
                   layers=tuple(layer for layer, _ in kept),
                   counts=tuple(count for _, count in kept),
                   family=family)

    # ------------------------------------------------------------------
    @property
    def num_unique_layers(self) -> int:
        return len(self.layers)

    @property
    def num_layers(self) -> int:
        return int(sum(self.counts))

    @property
    def total_macs(self) -> int:
        return int(sum(layer.macs * count
                       for layer, count in zip(self.layers, self.counts)))

    def layer_array(self) -> np.ndarray:
        """Unique layers as an (L, 3) int array of (M, N, K)."""
        return np.array([[l.m, l.n, l.k] for l in self.layers], dtype=np.int64)

    def count_array(self) -> np.ndarray:
        return np.array(self.counts, dtype=np.int64)

    def __str__(self) -> str:
        return (f"ModelWorkload({self.name}: {self.num_layers} layers, "
                f"{self.num_unique_layers} unique, "
                f"{self.total_macs / 1e9:.2f} GMACs)")
