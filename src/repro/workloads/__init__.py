"""``repro.workloads`` — the 105-model DNN/LLM workload zoo.

Builders for CNN and transformer architectures lowered to GEMM layers, the
105-model training registry, and the held-out evaluation models used by the
paper's generalisation study (Fig. 7).
"""

from .cnn_zoo import (alexnet, cifar_resnet, densenet, lenet5, mobilenet_v1,
                      mobilenet_v2, resnet, squeezenet, vgg)
from .lowering import (attention_context_gemm, attention_score_gemm,
                       conv2d_gemm, conv_out_size, depthwise_gemm, linear_gemm)
from .model import ModelWorkload
from .registry import (TRAINING_MODEL_COUNT, all_training_layers,
                       build_workload, evaluation_registry,
                       evaluation_workloads, training_registry,
                       training_workloads)
from .transformer_zoo import bert, gpt2, llama, t5_encoder, transformer_encoder, vit

__all__ = [
    "ModelWorkload",
    "conv2d_gemm", "depthwise_gemm", "linear_gemm", "conv_out_size",
    "attention_score_gemm", "attention_context_gemm",
    "lenet5", "alexnet", "vgg", "resnet", "cifar_resnet",
    "mobilenet_v1", "mobilenet_v2", "densenet", "squeezenet",
    "bert", "gpt2", "vit", "t5_encoder", "llama", "transformer_encoder",
    "TRAINING_MODEL_COUNT", "training_registry", "evaluation_registry",
    "training_workloads", "evaluation_workloads", "build_workload",
    "all_training_layers",
]
