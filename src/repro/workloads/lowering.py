"""Lowering DNN layers to GEMM operands (M, K) x (K, N).

The Table-I problem is formulated over GEMM layers; real networks are
mapped onto it with the standard lowerings:

* **conv2d** via im2col: the filter matrix (out_ch x in_ch*kh*kw)
  multiplies the unfolded input patches (in_ch*kh*kw x oh*ow), so
  ``M = out_ch, K = in_ch*kh*kw, N = oh*ow``.
* **linear / projection**: ``y = W x`` over a token batch gives
  ``M = out_features, K = in_features, N = tokens``.
* **attention score / context** GEMMs per head:
  ``Q K^T``: M = seq, K = head_dim, N = seq;
  ``A V``:   M = seq, K = seq,      N = head_dim.
* **depthwise conv**: each channel is an independent (1 x kh*kw) x
  (kh*kw x oh*ow) product; represented as a single grouped GEMM with
  ``M = channels, K = kh*kw, N = oh*ow`` (the channel dimension is
  data-parallel, matching how MAESTRO maps grouped convs).
"""

from __future__ import annotations

from ..maestro import GemmWorkload

__all__ = ["conv2d_gemm", "depthwise_gemm", "linear_gemm",
           "attention_score_gemm", "attention_context_gemm", "conv_out_size"]


def conv_out_size(in_size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution along one axis."""
    out = (in_size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(f"convolution output size {out} < 1 "
                         f"(in={in_size}, k={kernel}, s={stride}, p={padding})")
    return out


def conv2d_gemm(out_ch: int, in_ch: int, kernel: int, out_h: int, out_w: int,
                name: str = "") -> GemmWorkload:
    """im2col lowering of a (square-kernel) conv layer."""
    return GemmWorkload(m=out_ch, k=in_ch * kernel * kernel,
                        n=out_h * out_w, name=name)


def depthwise_gemm(channels: int, kernel: int, out_h: int, out_w: int,
                   name: str = "") -> GemmWorkload:
    """Grouped/depthwise conv as a channel-parallel GEMM."""
    return GemmWorkload(m=channels, k=kernel * kernel,
                        n=out_h * out_w, name=name)


def linear_gemm(out_features: int, in_features: int, tokens: int,
                name: str = "") -> GemmWorkload:
    """Fully-connected / projection layer over a token batch."""
    return GemmWorkload(m=out_features, k=in_features, n=tokens, name=name)


def attention_score_gemm(seq: int, head_dim: int, name: str = "") -> GemmWorkload:
    """Q K^T for one attention head."""
    return GemmWorkload(m=seq, k=head_dim, n=seq, name=name)


def attention_context_gemm(seq: int, head_dim: int, name: str = "") -> GemmWorkload:
    """Attention-weights times V for one attention head."""
    return GemmWorkload(m=seq, k=seq, n=head_dim, name=name)
