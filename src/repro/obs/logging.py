"""Structured JSON-lines logging with per-subsystem namespaces.

:func:`get_logger` returns a stdlib :class:`logging.Logger` under the
``repro.`` namespace whose records render as one JSON object per line::

    {"ts": "2026-08-07T12:00:00.123Z", "level": "info",
     "logger": "repro.serving.server", "msg": "route loaded",
     "model": "v2_small_s0", "source": "registry"}

Extra fields passed via ``logger.info("route loaded", extra={...})``
land as top-level keys, so logs are machine-parseable without regexes.
The handler attaches once to the ``repro`` root logger; libraries and
tests that configure logging themselves are never touched.  The default
level is ``WARNING`` (quiet), overridable with ``REPRO_LOG_LEVEL`` or
:func:`configure`.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time

__all__ = ["get_logger", "configure", "JsonLineFormatter"]

_ROOT_NAME = "repro"

# logging.LogRecord's own attributes; anything else on a record came in
# through `extra` and belongs in the JSON document.
_RESERVED = frozenset(vars(logging.LogRecord(
    "", 0, "", 0, "", (), None)).keys()) | {"message", "asctime",
                                            "taskName"}


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record; ``extra`` fields become keys."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%S",
                                time.gmtime(record.created))
                  + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                try:
                    json.dumps(value)
                except (TypeError, ValueError):
                    value = repr(value)
                doc[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc)


def _root() -> logging.Logger:
    return logging.getLogger(_ROOT_NAME)


def configure(level: int | str | None = None, stream=None,
              force: bool = False) -> logging.Logger:
    """Attach the JSON handler to the ``repro`` root logger (idempotent).

    ``level`` defaults to ``$REPRO_LOG_LEVEL`` or ``WARNING``; ``stream``
    defaults to stderr.  ``force=True`` replaces an existing handler
    (tests use this to capture output).
    """
    root = _root()
    ours = [h for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)]
    if ours and not force:
        handler = ours[0]
    else:
        for h in ours:
            root.removeHandler(h)
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(JsonLineFormatter())
        handler._repro_obs_handler = True
        root.addHandler(handler)
        root.propagate = False
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "WARNING")
    if isinstance(level, str):
        level = getattr(logging, level.upper(), logging.WARNING)
    root.setLevel(level)
    if stream is not None:
        handler.setStream(stream)
    return root


def get_logger(name: str) -> logging.Logger:
    """A namespaced structured logger: ``get_logger('serving.server')``
    logs as ``repro.serving.server``."""
    configure()
    if name.startswith(_ROOT_NAME + ".") or name == _ROOT_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
