"""Per-phase wall-time profiling for the training loop.

:class:`PhaseProfiler` accumulates wall-clock per named phase —
``data`` (loader iteration), ``forward`` (the task's batch computation
net of autograd), ``backward`` (``loss.backward()``) and ``optimizer``
(zero-grad + clip + step) — into :class:`~repro.obs.LatencyHistogram`
buckets, so the CLI and benchmarks report p50/p95/p99 per phase instead
of a single opaque epoch time.

It also keeps *per-batch* running sums (reset by :meth:`start_batch`)
because ``forward`` is attributed by subtraction: the loop times the
whole ``batch_step`` and subtracts whatever the :class:`StepContext`
recorded as backward/optimizer time — the task API never exposes the
forward/backward boundary directly.

Recording one phase costs two ``perf_counter`` reads and one O(1)
histogram record; the ≤3 % instrumentation gate in
``benchmarks/bench_train_step.py`` holds the loop to that.  Attach an
optional :class:`~repro.obs.MetricsRegistry` to additionally publish
``repro_train_phase_seconds{phase=...}`` histograms for scraping.
"""

from __future__ import annotations

from .metrics import LatencyHistogram, MetricsRegistry

__all__ = ["PhaseProfiler", "PHASES"]

PHASES = ("data", "forward", "backward", "optimizer")


class PhaseProfiler:
    """Accumulate per-phase wall time; not thread-safe (one loop owns it)."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self._hists = {phase: LatencyHistogram() for phase in PHASES}
        self._batch_sums = dict.fromkeys(PHASES, 0.0)
        self._metric = None
        if registry is not None:
            family = registry.histogram(
                "repro_train_phase_seconds",
                "Wall time per train-loop phase per batch.", ("phase",))
            self._metric = {phase: family.labels(phase=phase)
                            for phase in PHASES}

    # ------------------------------------------------------------------
    def record(self, phase: str, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        hist = self._hists.get(phase)
        if hist is None:
            hist = self._hists[phase] = LatencyHistogram()
            self._batch_sums.setdefault(phase, 0.0)
        hist.record(seconds)
        self._batch_sums[phase] = self._batch_sums.get(phase, 0.0) + seconds
        if self._metric is not None and phase in self._metric:
            self._metric[phase].observe(seconds)

    def start_batch(self) -> None:
        """Reset the per-batch sums (the forward-by-subtraction basis)."""
        for phase in self._batch_sums:
            self._batch_sums[phase] = 0.0

    def batch_seconds(self, phases=("backward", "optimizer")) -> float:
        """This batch's accumulated time over ``phases``."""
        return sum(self._batch_sums.get(phase, 0.0) for phase in phases)

    # ------------------------------------------------------------------
    @property
    def batches(self) -> int:
        return self._hists["forward"].count

    def total_seconds(self, phase: str) -> float:
        hist = self._hists.get(phase)
        return hist.total_s if hist is not None else 0.0

    def snapshot(self) -> dict:
        """JSON-ready per-phase stats plus each phase's share of the total."""
        phases = {phase: hist.snapshot()
                  for phase, hist in self._hists.items()}
        total = sum(p["total_s"] for p in phases.values())
        for doc in phases.values():
            doc["share"] = doc["total_s"] / total if total else 0.0
            del doc["buckets"]      # raw buckets are noise in CLI output
        return {"batches": self.batches, "total_s": total, "phases": phases}
