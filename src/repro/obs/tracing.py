"""Request tracing: trace/span ids, bounded in-memory export, NDJSON sink.

A *trace* is one request's journey through the serving stack; a *span*
is one timed segment of it (the HTTP front-end, the batcher queue wait,
the engine forward pass).  Spans carry a shared ``trace_id``, their own
``span_id``, and an optional ``parent_id``, so one request served
through :class:`~repro.serving.DynamicBatcher` exports as one coherent
tree even though its segments run on three different threads.

Design constraints, in order:

* **Cheap when off** — everything checks ``tracer is None`` first; an
  un-traced request costs one attribute read.
* **Cheap when on** — ids are ``os.urandom`` hex (no uuid machinery),
  finished spans go into a bounded ring (:class:`collections.deque`)
  and, optionally, one ``json.dumps`` line into an append-only NDJSON
  file.  No locks are held during user code.
* **Explicit propagation across threads** — the serving path hands
  :class:`SpanContext` values through ``submit(..., trace=...)`` and the
  :func:`engine_trace_scope` thread-local, because the batcher worker
  and asyncio executor threads do not share ``contextvars`` with the
  request's origin.

:func:`current_engine_contexts` is the engine-side half of the handoff:
:class:`~repro.core.BatchedDSEPredictor` reads it around each forward
pass and emits one ``engine.forward`` span per active trace, which is
how a coalesced batch attributes its single forward pass to every
request that shared it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["SpanContext", "Span", "Tracer", "engine_trace_scope",
           "current_engine_contexts"]


def new_id(nbytes: int = 8) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class SpanContext:
    """What propagates between threads: the ids plus the owning tracer."""

    trace_id: str
    span_id: str
    tracer: "Tracer | None" = field(default=None, compare=False,
                                    repr=False)

    def child_of(self) -> tuple[str, str]:
        return self.trace_id, self.span_id


class Span:
    """One in-flight timed segment; context-manager or manual ``end()``."""

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_id",
                 "attributes", "status", "start_time", "_start_pc",
                 "_ended")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: str | None = None, attributes: dict | None = None):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_id()
        self.parent_id = parent_id
        self.attributes = dict(attributes) if attributes else {}
        self.status = "ok"
        self.start_time = time.time()
        self._start_pc = time.perf_counter()
        self._ended = False

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id, self.tracer)

    def set_attribute(self, key: str, value) -> "Span":
        self.attributes[key] = value
        return self

    def end(self, duration_s: float | None = None) -> None:
        if self._ended:
            return
        self._ended = True
        if duration_s is None:
            duration_s = time.perf_counter() - self._start_pc
        self.tracer._export({
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_time": self.start_time,
            "duration_ms": duration_s * 1e3,
            "status": self.status,
            "attributes": self.attributes,
        })

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.end()


class Tracer:
    """Create spans; keep finished ones in a ring + optional NDJSON sink.

    Parameters
    ----------
    ring_size:
        How many finished spans the in-memory ring retains (oldest are
        dropped).  ``export()``/``find_trace()`` read from it.
    sink:
        Optional path of an append-only NDJSON file; every finished span
        is written as one JSON line (flushed per span, so a crash loses
        at most the in-flight one).  ``close()`` closes the handle.
    """

    def __init__(self, ring_size: int = 2048, sink: str | None = None):
        self._ring: deque[dict] = deque(maxlen=max(1, int(ring_size)))
        self._lock = threading.Lock()
        self.sink_path = sink
        self._sink_file = None
        self.spans_total = 0
        self.spans_dropped = 0

    # ------------------------------------------------------------------
    def new_trace_id(self) -> str:
        return new_id(16)

    def span(self, name: str, *, trace_id: str | None = None,
             parent: SpanContext | None = None,
             attributes: dict | None = None) -> Span:
        if parent is not None:
            return Span(self, name, parent.trace_id, parent.span_id,
                        attributes)
        return Span(self, name, trace_id or self.new_trace_id(),
                    None, attributes)

    # ------------------------------------------------------------------
    def _export(self, doc: dict) -> None:
        with self._lock:
            self.spans_total += 1
            if len(self._ring) == self._ring.maxlen:
                self.spans_dropped += 1
            self._ring.append(doc)
            if self.sink_path is not None:
                if self._sink_file is None:
                    self._sink_file = open(self.sink_path, "a")
                self._sink_file.write(json.dumps(doc) + "\n")
                self._sink_file.flush()

    def export(self, limit: int | None = None) -> list[dict]:
        """Finished spans, oldest first (most recent ``limit`` if given)."""
        with self._lock:
            spans = list(self._ring)
        return spans[-limit:] if limit else spans

    def find_trace(self, trace_id: str) -> list[dict]:
        """Every retained span of one trace, oldest first."""
        return [s for s in self.export() if s["trace_id"] == trace_id]

    def snapshot(self) -> dict:
        with self._lock:
            return {"spans_total": self.spans_total,
                    "spans_dropped": self.spans_dropped,
                    "ring_size": self._ring.maxlen,
                    "ring_used": len(self._ring),
                    "sink": self.sink_path}

    def close(self) -> None:
        with self._lock:
            if self._sink_file is not None:
                self._sink_file.close()
                self._sink_file = None


# ----------------------------------------------------------------------
# Engine-side propagation (explicitly thread-local: the batcher worker
# serves many traces' rows in one forward pass, on its own thread).
# ----------------------------------------------------------------------
_engine_scope = threading.local()


class engine_trace_scope:
    """Mark the contexts whose rows the *current thread's* next engine
    calls serve.  The batcher wraps its forward pass in this so
    :class:`~repro.core.BatchedDSEPredictor` can attribute the pass to
    every coalesced request."""

    def __init__(self, contexts):
        self.contexts = tuple(c for c in contexts if c is not None)

    def __enter__(self):
        self._previous = getattr(_engine_scope, "contexts", ())
        _engine_scope.contexts = self.contexts
        return self

    def __exit__(self, *exc) -> None:
        _engine_scope.contexts = self._previous


def current_engine_contexts() -> tuple[SpanContext, ...]:
    """The active trace contexts for engine calls on this thread."""
    return getattr(_engine_scope, "contexts", ())
