"""Label-aware metrics primitives and the registry that renders them.

One :class:`MetricsRegistry` holds every metric *family* (a name, a help
string, a fixed tuple of label names and a type); a family hands out
*children* — one per distinct label-value tuple — which carry the actual
values.  Three primitive types cover the repo's telemetry:

* :class:`Counter` — monotonically non-decreasing sums (requests,
  batches, errors, accumulated seconds);
* :class:`Gauge` — instantaneous values that go both ways (in-flight
  requests, last autoscale plan), optionally computed lazily at scrape
  time via :meth:`Gauge.set_function`;
* :class:`Histogram` — bucketed distributions backed by
  :class:`LatencyHistogram` (64 geometric buckets + overflow, O(1)
  records, mergeable snapshots) — the same histogram the serving layer
  has always used for p50/p95/p99, now shared by request latency and
  train-phase profiling alike.

Everything is thread-safe: each child takes a small private lock per
update, and the registry lock only guards family creation/iteration, so
scrapes never stall the hot path.

:meth:`MetricsRegistry.render` emits the Prometheus text exposition
format (``# HELP``/``# TYPE`` lines, one series per child,
``_bucket``/``_sum``/``_count`` expansion for histograms) — what
``GET /metrics`` serves on both HTTP front-ends.
"""

from __future__ import annotations

import bisect
import re
import threading

__all__ = ["LatencyHistogram", "Counter", "Gauge", "Histogram",
           "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _geometric_bounds(min_s: float, growth: float, count: int) -> list[float]:
    bounds, edge = [], min_s
    for _ in range(count):
        bounds.append(edge)
        edge *= growth
    return bounds


class LatencyHistogram:
    """Fixed geometric-bucket latency histogram with O(1) records.

    64 buckets spanning 50 microseconds to ~64 seconds (ratio 1.25), plus
    an overflow bucket: enough resolution for p50/p95/p99 under serving
    load without per-request allocation or unbounded sample storage.
    Percentiles report the upper edge of the bucket holding the target
    rank (clamped to the maximum observed sample), so they are
    conservative estimates within one bucket ratio of the true value.

    Not thread-safe on its own: its owners (:class:`Histogram` children,
    :class:`repro.serving.ServingStats`) serialise access under their
    locks.  Snapshots carry the raw bucket counts *and* the exact
    ``total_s`` so :meth:`merge_snapshots` can recompute aggregate
    percentiles and means from summed counts instead of averaging
    averages (or round-tripping through the rounded ``mean_ms``).
    """

    _BOUNDS = _geometric_bounds(5e-5, 1.25, 64)     # upper bucket edges, s

    def __init__(self):
        self._counts = [0] * (len(self._BOUNDS) + 1)    # +1: overflow
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        self._counts[bisect.bisect_left(self._BOUNDS, seconds)] += 1
        self.count += 1
        self.total_s += seconds
        self.max_s = max(self.max_s, seconds)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q`` in [0, 100] percentile estimate in seconds."""
        return self._percentile_of(self._counts, q, self.max_s)

    @classmethod
    def _percentile_of(cls, counts, q: float, max_s: float) -> float:
        total = sum(counts)
        if not total:
            return 0.0
        target = max(1, -(-int(total * q) // 100))      # ceil(total*q/100)
        seen = 0
        for i, bucket in enumerate(counts):
            seen += bucket
            if seen >= target:
                edge = cls._BOUNDS[i] if i < len(cls._BOUNDS) else max_s
                return min(edge, max_s)
        return max_s

    def snapshot(self) -> dict:
        """JSON-ready percentiles plus the raw buckets (for merging)."""
        return self._render(list(self._counts), self.count, self.total_s,
                            self.max_s)

    @classmethod
    def _render(cls, counts, count, total_s, max_s) -> dict:
        return {"count": count,
                "mean_ms": (total_s / count if count else 0.0) * 1e3,
                "total_s": total_s,
                "p50_ms": cls._percentile_of(counts, 50, max_s) * 1e3,
                "p95_ms": cls._percentile_of(counts, 95, max_s) * 1e3,
                "p99_ms": cls._percentile_of(counts, 99, max_s) * 1e3,
                "max_ms": max_s * 1e3,
                "buckets": counts}

    @classmethod
    def merge_snapshots(cls, docs) -> dict:
        """Aggregate snapshot dicts: sum buckets, recompute percentiles.

        ``total_s`` sums exactly when present; snapshots written before it
        was exported fall back to the rounded ``mean_ms * count``
        reconstruction.  Bucket lists shorter or longer than the current
        layout merge positionally (extra buckets are dropped, missing
        ones count as empty) so layout drift degrades resolution instead
        of crashing the aggregate.
        """
        docs = [d for d in docs if d and d.get("buckets")]
        counts = [0] * (len(cls._BOUNDS) + 1)
        for doc in docs:
            for i, bucket in enumerate(doc["buckets"][:len(counts)]):
                counts[i] += bucket
        return cls._render(counts,
                           sum(d["count"] for d in docs),
                           sum(d.get("total_s", d["mean_ms"] / 1e3 * d["count"])
                               for d in docs),
                           max((d["max_ms"] / 1e3 for d in docs),
                               default=0.0))


def _escape_label(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"') \
                     .replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Child:
    """One labelled series; subclassed per metric type."""

    __slots__ = ("_lock", "labels")

    def __init__(self, labels: tuple[str, ...]):
        self._lock = threading.Lock()
        self.labels = labels


class _CounterChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, labels):
        super().__init__(labels)
        self._value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value


class _GaugeChild(_Child):
    __slots__ = ("_value", "_fn")

    def __init__(self, labels):
        super().__init__(labels)
        self._value = 0
        self._fn = None

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount=1) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value) -> None:
        """Keep the running maximum of observed values."""
        with self._lock:
            self._value = max(self._value, value)

    def set_function(self, fn) -> None:
        """Compute the value lazily at scrape time (e.g. uptime)."""
        with self._lock:
            self._fn = fn

    @property
    def value(self):
        with self._lock:
            if self._fn is not None:
                return self._fn()
            return self._value


class _HistogramChild(_Child):
    __slots__ = ("raw",)

    def __init__(self, labels):
        super().__init__(labels)
        self.raw = LatencyHistogram()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.raw.record(seconds)

    def snapshot(self) -> dict:
        with self._lock:
            return self.raw.snapshot()

    @property
    def count(self) -> int:
        with self._lock:
            return self.raw.count

    @property
    def total_s(self) -> float:
        with self._lock:
            return self.raw.total_s


_CHILD_TYPES = {"counter": _CounterChild, "gauge": _GaugeChild,
                "histogram": _HistogramChild}


class _Family:
    """A named metric family: fixed label names, one child per value set."""

    def __init__(self, name: str, help: str, kind: str,
                 label_names: tuple[str, ...]):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = tuple(label_names)
        self._children: dict[tuple[str, ...], _Child] = {}
        self._lock = threading.Lock()

    def labels(self, *values, **kv):
        """The child for one label-value tuple (created on first use)."""
        if kv:
            if values:
                raise TypeError("pass label values positionally or by "
                                "name, not both")
            try:
                values = tuple(str(kv[name]) for name in self.label_names)
            except KeyError as exc:
                raise ValueError(f"{self.name}: missing label {exc}") \
                    from None
            if len(kv) != len(self.label_names):
                raise ValueError(
                    f"{self.name}: expected labels {self.label_names}, "
                    f"got {tuple(kv)}")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise ValueError(f"{self.name}: expected "
                             f"{len(self.label_names)} label value(s), "
                             f"got {len(values)}")
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = _CHILD_TYPES[self.kind](values)
                self._children[values] = child
            return child

    def remove(self, *values, **kv) -> None:
        """Drop one child (e.g. an evicted serving route's series)."""
        if kv:
            values = tuple(str(kv[name]) for name in self.label_names)
        else:
            values = tuple(str(v) for v in values)
        with self._lock:
            self._children.pop(values, None)

    def children(self) -> list[_Child]:
        with self._lock:
            return [self._children[key]
                    for key in sorted(self._children)]

    # ------------------------------------------------------------------
    def _series_name(self, labels: tuple[str, ...],
                     extra: tuple[tuple[str, str], ...] = ()) -> str:
        pairs = [f'{name}="{_escape_label(value)}"'
                 for name, value in zip(self.label_names, labels)]
        pairs += [f'{name}="{_escape_label(value)}"'
                  for name, value in extra]
        return f"{self.name}{{{','.join(pairs)}}}" if pairs else self.name

    def render(self) -> list[str]:
        """Prometheus text-format lines for this family."""
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for child in self.children():
            if self.kind == "histogram":
                snap = child.snapshot()
                cumulative = 0
                for i, count in enumerate(snap["buckets"]):
                    cumulative += count
                    le = (f"{LatencyHistogram._BOUNDS[i]:g}"
                          if i < len(LatencyHistogram._BOUNDS) else "+Inf")
                    lines.append(
                        f"{self._bucket_name(child.labels, le)} {cumulative}")
                lines.append(f"{self._sub_name('_sum', child.labels)} "
                             f"{_format_value(snap['total_s'])}")
                lines.append(f"{self._sub_name('_count', child.labels)} "
                             f"{snap['count']}")
            else:
                lines.append(f"{self._series_name(child.labels)} "
                             f"{_format_value(child.value)}")
        return lines

    def _bucket_name(self, labels: tuple[str, ...], le: str) -> str:
        pairs = [f'{name}="{_escape_label(value)}"'
                 for name, value in zip(self.label_names, labels)]
        pairs.append(f'le="{le}"')
        return f"{self.name}_bucket{{{','.join(pairs)}}}"

    def _sub_name(self, suffix: str, labels: tuple[str, ...]) -> str:
        pairs = [f'{name}="{_escape_label(value)}"'
                 for name, value in zip(self.label_names, labels)]
        body = f"{{{','.join(pairs)}}}" if pairs else ""
        return f"{self.name}{suffix}{body}"


# Convenience aliases so call sites read naturally.
Counter = _CounterChild
Gauge = _GaugeChild
Histogram = _HistogramChild


class MetricsRegistry:
    """Create-or-get metric families and render them for scraping.

    ``counter``/``gauge``/``histogram`` are idempotent: asking for an
    existing name returns the existing family (and rejects a conflicting
    type or label set, which would corrupt the exposition).  A fresh
    registry per server keeps multi-server tests and embedded uses
    isolated; :func:`repro.obs.get_registry` holds the process default.
    """

    def __init__(self):
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _family(self, name: str, help: str, kind: str,
                label_names) -> _Family:
        label_names = tuple(label_names)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, help, kind, label_names)
                self._families[name] = family
            elif family.kind != kind or family.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind} with labels {family.label_names}")
            return family

    def counter(self, name: str, help: str, label_names=()) -> _Family:
        return self._family(name, help, "counter", label_names)

    def gauge(self, name: str, help: str, label_names=()) -> _Family:
        return self._family(name, help, "gauge", label_names)

    def histogram(self, name: str, help: str, label_names=()) -> _Family:
        return self._family(name, help, "histogram", label_names)

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name]
                    for name in sorted(self._families)]

    def collect(self) -> dict:
        """A JSON-ready snapshot of every series (tests, debugging)."""
        doc: dict[str, dict] = {}
        for family in self.families():
            series = {}
            for child in family.children():
                key = ",".join(f"{n}={v}" for n, v in
                               zip(family.label_names, child.labels))
                series[key] = (child.snapshot()
                               if family.kind == "histogram"
                               else child.value)
            doc[family.name] = {"type": family.kind, "help": family.help,
                                "series": series}
        return doc

    def render(self) -> str:
        """The Prometheus text exposition document (``GET /metrics``)."""
        lines: list[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + "\n"
