"""``repro.obs`` — the unified telemetry layer.

One coherent instrumentation surface for the whole system, replacing
the per-subsystem counters that accreted around it:

* **Metrics** (:mod:`repro.obs.metrics`) — thread-safe, label-aware
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` primitives in a
  :class:`MetricsRegistry` that renders the Prometheus text exposition
  format.  :class:`~repro.serving.ServingStats` is built on these, and
  both HTTP front-ends serve the registry at ``GET /metrics``.
* **Tracing** (:mod:`repro.obs.tracing`) — trace/span ids propagated
  from the HTTP front-ends through :class:`~repro.serving.DynamicBatcher`
  futures into the engine's forward passes; finished spans land in a
  bounded in-memory ring and, optionally, an NDJSON file sink.
  Responses echo ``X-Trace-Id``.
* **Structured logging** (:mod:`repro.obs.logging`) —
  :func:`get_logger` returns per-subsystem ``repro.*`` loggers emitting
  JSON lines.
* **Profiling** (:mod:`repro.obs.profiling`) — per-phase
  (data/forward/backward/optimizer) wall-time histograms for
  :class:`~repro.train.TrainLoop`, surfaced by ``repro train --json``
  and :class:`~repro.train.ProfilerCallback`.

:func:`get_registry` returns the process-default registry for code
without a natural owner (the CLI, benchmarks); servers create their own
so embedded/multi-server tests stay isolated.
"""

from .logging import JsonLineFormatter, configure, get_logger
from .metrics import (Counter, Gauge, Histogram, LatencyHistogram,
                      MetricsRegistry)
from .profiling import PHASES, PhaseProfiler
from .tracing import (Span, SpanContext, Tracer, current_engine_contexts,
                      engine_trace_scope)

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "LatencyHistogram",
    "Tracer", "Span", "SpanContext", "engine_trace_scope",
    "current_engine_contexts",
    "get_logger", "configure", "JsonLineFormatter",
    "PhaseProfiler", "PHASES",
    "get_registry",
]

_default_registry: MetricsRegistry | None = None


def get_registry() -> MetricsRegistry:
    """The process-default :class:`MetricsRegistry` (created on first use)."""
    global _default_registry
    if _default_registry is None:
        _default_registry = MetricsRegistry()
    return _default_registry
