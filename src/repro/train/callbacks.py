"""Callbacks for the unified :class:`~repro.train.TrainLoop`.

Four stock callbacks cover the runtime's side channels:

* :class:`Checkpointer` — periodic resumable snapshots (the loop attaches
  one automatically when ``fit(checkpoint_path=...)`` is given);
* :class:`EarlyStopping` — stop when a monitored history key stops
  improving;
* :class:`ThroughputMonitor` — per-epoch samples/sec accounting for
  benchmarks and the ``repro train`` CLI;
* :class:`ProfilerCallback` — per-phase (data/forward/backward/optimizer)
  wall-time histograms via :class:`~repro.obs.PhaseProfiler`, surfaced
  by ``repro train --json --profile``.
"""

from __future__ import annotations

import math
import os

from ..obs import PhaseProfiler
from .checkpoint import _normalise, previous_checkpoint_path, save_checkpoint

__all__ = ["Callback", "Checkpointer", "EarlyStopping", "ExecutionMonitor",
           "ThroughputMonitor", "ProfilerCallback"]


class Callback:
    """Hooks into the loop's lifecycle; all methods are optional.

    Stateful callbacks (e.g. :class:`EarlyStopping`) implement
    ``state_dict``/``load_state_dict`` so their decisions survive a
    checkpoint/resume cycle; the loop saves and restores callback state
    automatically (matched by class name).
    """

    def on_fit_begin(self, loop) -> None:
        """After setup (and any resume), before the first epoch."""

    def on_epoch_end(self, loop) -> None:
        """After each epoch's history entry (and scheduler step)."""

    def on_fit_end(self, loop) -> None:
        """After the final epoch and ``model.eval()``."""

    def state_dict(self) -> dict:
        """JSON-serialisable state to carry through checkpoints."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` on resume."""


class Checkpointer(Callback):
    """Write a resumable snapshot every ``every`` epochs (and on the last).

    With ``registry`` and ``model_id`` set, every snapshot also registers
    the model's current weights as a
    :class:`~repro.registry.ModelRegistry` artifact — the manifest
    carries the task fingerprint plus the latest history entry as
    metrics, so in-flight training runs are discoverable (and servable)
    through the same registry as finished ones.

    With ``keep_previous`` (the default), the outgoing checkpoint is
    rotated to ``<path>.prev.npz`` before each save: the write itself is
    atomic, but a kill *after* the replace can still tear the new file
    on disk, and the last-good generation is what
    :meth:`~repro.train.TrainLoop.fit` rolls back to (re-running the
    missing epochs bit-identically) instead of restarting from scratch.
    """

    def __init__(self, path, every: int = 1, registry=None,
                 model_id: str | None = None, keep_previous: bool = True):
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if (registry is None) != (model_id is None):
            raise ValueError("registry and model_id must be given together")
        self.path = path
        self.every = every
        self.registry = registry
        self.model_id = model_id
        self.keep_previous = keep_previous
        self.saves = 0

    def on_epoch_end(self, loop) -> None:
        done = loop.epoch + 1
        if done % self.every == 0 or done == loop.task.epochs:
            if self.keep_previous:
                current = _normalise(self.path)
                if os.path.exists(current):
                    os.replace(current, previous_checkpoint_path(current))
            save_checkpoint(self.path, loop)
            if self.registry is not None:
                task = loop.task
                metrics = {key: values[-1]
                           for key, values in loop.history.items() if values}
                metrics["epochs_done"] = done
                self.registry.save(
                    task.model, self.model_id,
                    fingerprint={"task": task.name, "seed": int(task.seed),
                                 "epochs": int(task.epochs)},
                    metrics=metrics)
            self.saves += 1


class EarlyStopping(Callback):
    """Request a stop after ``patience`` epochs without improvement.

    ``monitor`` names a history key (lower is better); an epoch counts as
    an improvement when it beats the best seen by more than ``min_delta``.
    The best/patience counters are checkpointed, so a resumed run makes
    the same stopping decision as an uninterrupted one — including
    stopping immediately when resuming a run that already early-stopped.
    """

    def __init__(self, monitor: str = "loss", patience: int = 5,
                 min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = min_delta
        self.best = math.inf
        self.wait = 0
        self.stopped_epoch: int | None = None

    def on_fit_begin(self, loop) -> None:
        if self.stopped_epoch is not None:     # restored from a stopped run
            loop.should_stop = True

    def on_epoch_end(self, loop) -> None:
        value = loop.history[self.monitor][-1]
        if value < self.best - self.min_delta:
            self.best = value
            self.wait = 0
            return
        self.wait += 1
        if self.wait >= self.patience:
            self.stopped_epoch = loop.epoch
            loop.should_stop = True

    def state_dict(self) -> dict:
        return {"best": self.best, "wait": self.wait,
                "stopped_epoch": self.stopped_epoch}

    def load_state_dict(self, state: dict) -> None:
        self.best = float(state["best"])
        self.wait = int(state["wait"])
        stopped = state["stopped_epoch"]
        self.stopped_epoch = None if stopped is None else int(stopped)


class ThroughputMonitor(Callback):
    """Collect per-epoch wall-clock and samples/sec statistics."""

    def __init__(self):
        self.epochs: list[dict] = []

    def on_epoch_end(self, loop) -> None:
        seconds = loop.last_epoch_seconds
        self.epochs.append({
            "epoch": loop.epoch,
            "seconds": seconds,
            "samples": loop.last_epoch_samples,
            "samples_per_sec": loop.last_epoch_samples / max(seconds, 1e-12),
        })

    @property
    def total_seconds(self) -> float:
        return sum(e["seconds"] for e in self.epochs)

    @property
    def mean_samples_per_sec(self) -> float:
        if not self.epochs:
            return 0.0
        samples = sum(e["samples"] for e in self.epochs)
        return samples / max(self.total_seconds, 1e-12)


class ExecutionMonitor(Callback):
    """Collect the loop's execution-backend report across fits.

    The loop fills ``loop.execution`` from its
    :class:`~repro.nn.graph.GraphExecutor` at the end of every fit
    (backend eager/fused/graph, capture-cache hits/misses, arena bytes);
    this callback aggregates those reports so multi-fit runs (sweeps,
    baselines alongside stage-2) surface one combined summary in
    ``repro train --json``.
    """

    _BACKEND_RANK = {"eager": 0, "fused": 1, "graph": 2}

    def __init__(self):
        self.fits: list[dict] = []

    def on_fit_end(self, loop) -> None:
        if loop.execution:
            self.fits.append(dict(loop.execution))

    def summary(self) -> dict:
        """Aggregate over every observed fit (JSON-ready)."""
        if not self.fits:
            return {"backend": "eager", "fits": 0, "captures": 0,
                    "replays": 0, "fallbacks": 0, "cache_entries": 0,
                    "arena_bytes": 0}
        backend = max((fit["backend"] for fit in self.fits),
                      key=self._BACKEND_RANK.__getitem__)
        out = {"backend": backend, "fits": len(self.fits)}
        for key in ("captures", "replays", "fallbacks", "cache_entries",
                    "arena_bytes"):
            out[key] = sum(fit[key] for fit in self.fits)
        failures = [reason for fit in self.fits
                    for reason in fit.get("failures", ())]
        if failures:
            out["failures"] = failures
        return out


class ProfilerCallback(Callback):
    """Attach a :class:`~repro.obs.PhaseProfiler` to the loop.

    The loop stays on its un-instrumented fast path unless a profiler is
    attached, so profiling is strictly opt-in; with this callback every
    batch's data/forward/backward/optimizer wall time lands in per-phase
    histograms (see :meth:`snapshot`).  Pass a
    :class:`~repro.obs.MetricsRegistry` to additionally publish
    ``repro_train_phase_seconds{phase=...}`` for scraping.
    """

    def __init__(self, profiler: PhaseProfiler | None = None,
                 registry=None):
        self.profiler = profiler if profiler is not None \
            else PhaseProfiler(registry=registry)

    def on_fit_begin(self, loop) -> None:
        loop.profiler = self.profiler

    def snapshot(self) -> dict:
        """JSON-ready per-phase stats (count/mean/p50/p95/share)."""
        return self.profiler.snapshot()
