"""``repro.train`` — the unified training engine.

One :class:`TrainLoop` runtime (epoch/batch driving, Adam + cosine
schedules, gradient clipping, loss-history accounting, verbose reporting)
drives every trainer in the reproduction — stage-1, stage-2 and the three
baselines — via small :class:`TrainTask` adapters, with a callback system
for resumable checkpoints, early stopping and throughput statistics.

``python -m repro train`` is the CLI entry point.
"""

from .callbacks import (Callback, Checkpointer, EarlyStopping,
                        ExecutionMonitor, ProfilerCallback,
                        ThroughputMonitor)
from .checkpoint import (CheckpointCorruptError, CheckpointMismatchError,
                         checkpoint_exists, load_checkpoint,
                         previous_checkpoint_path, save_checkpoint)
from .loop import OptimSpec, StepContext, TrainLoop, TrainTask

__all__ = [
    "TrainLoop", "TrainTask", "OptimSpec", "StepContext",
    "Callback", "Checkpointer", "EarlyStopping", "ExecutionMonitor",
    "ThroughputMonitor", "ProfilerCallback",
    "save_checkpoint", "load_checkpoint", "checkpoint_exists",
    "previous_checkpoint_path",
    "CheckpointMismatchError", "CheckpointCorruptError",
]
