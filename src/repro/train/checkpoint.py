"""Resumable training checkpoints: one ``.npz`` per run, written atomically.

A checkpoint captures everything a :class:`~repro.train.TrainLoop` needs to
continue bit-identically to an uninterrupted run:

* model parameters *and buffers* (``model.<dotted name>`` arrays),
* per-optimiser Adam/SGD moments (``opt.<slot>.<key>.<i>`` arrays) plus
  step counts and the current learning rate,
* the data/noise RNG state (so epoch E+1 shuffles and draws exactly what
  it would have),
* per-epoch history so far, the next epoch index, task extra state, and
  stateful-callback snapshots (e.g. EarlyStopping's patience counters),

alongside a fingerprint of the task (name, seed, epochs, history keys,
optimiser slots) so a checkpoint can never silently resume a *different*
training run.  Writes go through the shared
:func:`repro.registry.atomic_savez` (temp file + ``os.replace``), so an
interrupt mid-save leaves the previous snapshot intact.  The archive
format itself is unchanged from the pre-registry writer — old
checkpoints resume bit-identically (they simply predate the embedded
content checksum, which is then skipped).

Loads are *verified*: the archive's embedded checksum is checked before
any state is applied, and a torn or bit-rotted checkpoint raises
:class:`CheckpointCorruptError` (a :class:`CheckpointMismatchError`)
after the damaged file is quarantined to ``<path>.corrupt`` — the
:class:`~repro.train.TrainLoop` resume path then rolls back to the
previous good generation kept by :class:`~repro.train.Checkpointer`
(``<path>.prev.npz``), or restarts fresh when none survives.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..registry.storage import (CorruptArtifactError, atomic_savez,
                                quarantine_artifact, read_verified)

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_exists",
           "previous_checkpoint_path", "CheckpointMismatchError",
           "CheckpointCorruptError"]

_META_KEY = "__checkpoint__"
FORMAT_VERSION = 1


class CheckpointMismatchError(ValueError):
    """The checkpoint on disk belongs to a different training run."""


class CheckpointCorruptError(CheckpointMismatchError):
    """The checkpoint on disk is torn or bit-rotted (and was quarantined)."""


def _normalise(path) -> str:
    path = str(path)
    if not path.endswith(".npz"):
        path += ".npz"
    return path


def checkpoint_exists(path) -> bool:
    return os.path.exists(_normalise(path))


def previous_checkpoint_path(path) -> str:
    """The rolled-over last-good generation kept beside a checkpoint."""
    path = _normalise(path)
    return path[:-len(".npz")] + ".prev.npz"


def _task_fingerprint(loop) -> dict:
    task = loop.task
    return {"task": task.name, "seed": int(task.seed),
            "epochs": int(task.epochs),
            "history_keys": list(task.history_keys),
            "optimizer_names": sorted(loop.optimizers)}


def save_checkpoint(path, loop) -> str:
    """Snapshot the loop after ``loop.epoch``; returns the path written."""
    task = loop.task
    arrays = {f"model.{name}": value
              for name, value in task.model.state_dict().items()}
    opt_meta: dict[str, dict] = {}
    for name, opt in loop.optimizers.items():
        slot = opt_meta.setdefault(name, {"lr": float(opt.lr)})
        for key, value in opt.state_dict().items():
            if isinstance(value, list):
                for i, arr in enumerate(value):
                    arrays[f"opt.{name}.{key}.{i}"] = arr
            else:
                slot[key] = value
    meta = {
        "format": FORMAT_VERSION,
        "fingerprint": _task_fingerprint(loop),
        "epoch_next": loop.epoch + 1,
        "history": loop.history,
        "rng_state": loop.rng.bit_generator.state,
        "optimizers": opt_meta,
        "schedulers": {name: sched.epoch
                       for name, sched in loop.schedulers.items()},
        "task_state": task.extra_state(),
        "callbacks": [{"class": type(cb).__name__, "state": cb.state_dict()}
                      for cb in loop.active_callbacks],
    }
    return atomic_savez(path, {**arrays,
                               _META_KEY: np.array(json.dumps(meta))})


def load_checkpoint(path, loop) -> None:
    """Restore a snapshot into ``loop`` (model, optimisers, rng, history).

    The archive is read eagerly and checksum-verified *before* any loop
    state is touched, so a torn/garbage file can never half-apply: it
    raises :class:`CheckpointCorruptError` (with the damaged file
    quarantined to ``<path>.corrupt``) and the loop is exactly as it was.
    """
    path = _normalise(path)
    try:
        arrays = read_verified(path)
        if _META_KEY not in arrays:
            raise CheckpointMismatchError(f"{path} is not a training "
                                          f"checkpoint (no metadata)")
        meta = json.loads(str(arrays[_META_KEY][()]))
    except FileNotFoundError:
        raise
    except CorruptArtifactError as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path} is corrupt: {exc.reason}; the file was "
            f"quarantined"
            + (f" to {exc.quarantined_to}" if exc.quarantined_to else "")
            + " — resume will fall back to the previous good generation "
              "or restart") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path} has unreadable metadata ({exc}); "
            f"quarantined to {quarantine_artifact(path)}") from exc
    if meta.get("format") != FORMAT_VERSION:
        raise CheckpointMismatchError(
            f"{path}: unsupported checkpoint format {meta.get('format')}")
    expected = _task_fingerprint(loop)
    if meta["fingerprint"] != expected:
        raise CheckpointMismatchError(
            f"{path} belongs to a different run: "
            f"{meta['fingerprint']} != {expected}")

    model_state = {name[len("model."):]: arrays[name]
                   for name in arrays if name.startswith("model.")}
    loop.task.model.load_state_dict(model_state)

    for name, opt in loop.optimizers.items():
        slot = dict(meta["optimizers"][name])
        opt.lr = float(slot.pop("lr"))
        prefix = f"opt.{name}."
        lists: dict[str, dict[int, np.ndarray]] = {}
        for key in arrays:
            if not key.startswith(prefix):
                continue
            stem, idx = key[len(prefix):].rsplit(".", 1)
            lists.setdefault(stem, {})[int(idx)] = arrays[key]
        for stem, items in lists.items():
            slot[stem] = [items[i] for i in range(len(items))]
        opt.load_state_dict(slot)
    for name, sched in loop.schedulers.items():
        sched.epoch = int(meta["schedulers"].get(name, 0))

    loop.rng.bit_generator.state = meta["rng_state"]
    loop.history = {key: list(values)
                    for key, values in meta["history"].items()}
    loop.start_epoch = int(meta["epoch_next"])
    loop.task.load_extra_state(meta.get("task_state", {}))

    # Restore stateful callbacks (e.g. EarlyStopping's patience
    # counters) by class name, in order, so resumed runs make the same
    # decisions as uninterrupted ones.
    unmatched = list(loop.active_callbacks)
    for entry in meta.get("callbacks", []):
        if not entry["state"]:
            continue
        for i, cb in enumerate(unmatched):
            if type(cb).__name__ == entry["class"]:
                cb.load_state_dict(entry["state"])
                del unmatched[i]
                break
