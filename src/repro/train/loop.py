"""The unified training runtime shared by every trainer in the repo.

Before this package the reproduction carried five hand-rolled copies of
the same epoch/batch loop (stage-1, stage-2, AIRCHITECT v1, GANDSE and
VAESA).  :class:`TrainLoop` is the single runtime they all run on now:

* epoch/batch driving over a task-supplied :class:`~repro.nn.DataLoader`,
* Adam optimisers (one per :class:`OptimSpec`; GANDSE's alternating
  generator/discriminator steps use two) with optional per-spec cosine
  schedules and gradient clipping,
* per-epoch loss-history accounting and verbose reporting,
* a callback system (:mod:`repro.train.callbacks`) for checkpoint/resume,
  early stopping and throughput statistics.

A :class:`TrainTask` describes *what* one trainer does per batch; the loop
owns *when*.  Porting was done seed-for-seed: every task consumes its
``numpy`` generator in exactly the order the original loop did, so loss
histories are bit-identical to the pre-refactor code (asserted by
``tests/train/test_parity.py``).
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .. import nn

__all__ = ["OptimSpec", "StepContext", "TrainTask", "TrainLoop"]


@dataclass
class OptimSpec:
    """One optimiser slot of a task: parameters, lr, schedule, clipping.

    ``schedule`` is an epoch -> lr-multiplier callable (e.g.
    :func:`repro.nn.cosine_schedule`); ``None`` keeps the lr constant.
    """

    params: list[nn.Parameter]
    lr: float
    schedule: Callable[[int], float] | None = None
    grad_clip: float | None = None


class StepContext:
    """Handed to :meth:`TrainTask.batch_step`; applies optimiser updates.

    When the loop carries a :class:`~repro.obs.PhaseProfiler`
    (``profiler`` is set), :meth:`apply` additionally times the backward
    pass and the optimiser update into it — this is where the
    forward/backward boundary is visible, so the loop can attribute the
    rest of ``batch_step`` to the forward phase by subtraction.
    """

    def __init__(self, optimizers: dict[str, nn.Optimizer],
                 specs: dict[str, OptimSpec]):
        self._optimizers = optimizers
        self._specs = specs
        self.profiler = None

    def apply(self, loss, name: str = "main"):
        """zero_grad -> backward -> clip -> step on the named optimiser.

        Clipping goes through the optimiser's arena-aware method: same
        per-parameter norm reductions as :func:`repro.nn.clip_grad_norm`
        (the optimiser holds ``spec.params`` in the same order), but the
        rescale collapses to one whole-arena multiply on the fast path.
        """
        opt = self._optimizers[name]
        spec = self._specs[name]
        profiler = self.profiler
        if profiler is None:
            opt.zero_grad()
            loss.backward()
            if spec.grad_clip is not None:
                opt.clip_grad_norm(spec.grad_clip)
            opt.step()
            return loss
        tic = time.perf_counter()
        opt.zero_grad()
        zero_s = time.perf_counter() - tic
        tic = time.perf_counter()
        loss.backward()
        profiler.record("backward", time.perf_counter() - tic)
        tic = time.perf_counter()
        if spec.grad_clip is not None:
            opt.clip_grad_norm(spec.grad_clip)
        opt.step()
        profiler.record("optimizer", zero_s + time.perf_counter() - tic)
        return loss


class TrainTask:
    """What one trainer does per batch; subclasses fill in the specifics.

    Required attributes: ``model`` (the :class:`~repro.nn.Module` being
    fitted), ``epochs`` and ``seed``.  ``history_keys`` names the per-epoch
    metrics ``batch_step`` returns; the loop averages them over batches.
    """

    name: str = "train"
    history_keys: tuple[str, ...] = ("loss",)
    model: nn.Module
    epochs: int
    seed: int

    def loader(self, rng: np.random.Generator) -> nn.DataLoader:
        """Build the mini-batch iterator (``rng`` drives shuffling)."""
        raise NotImplementedError

    def optim_specs(self) -> dict[str, OptimSpec]:
        """Named optimiser slots ('main' for single-optimiser tasks)."""
        raise NotImplementedError

    def batch_step(self, batch: tuple, step: StepContext,
                   rng: np.random.Generator) -> dict[str, float]:
        """Forward/backward one batch; returns a value per history key."""
        raise NotImplementedError

    def graph_step(self, batch: tuple):
        """Describe one batch for graph capture, or ``None`` for eager.

        A capturable task returns ``(inputs, fn)`` (optionally
        ``(inputs, fn, optimizer_name)``) where ``inputs`` is a tuple of
        ndarrays varying per batch and ``fn(*inputs)`` is a pure
        eager-mode function producing the loss tensor — the loop's
        :class:`~repro.nn.graph.GraphExecutor` traces it once per input
        signature and replays the compiled schedule afterwards.  The
        default (``None``) keeps the task on ``batch_step`` for every
        batch.  Return ``None`` dynamically for batches (or modes, e.g.
        active dropout) where a fixed trace would not be valid.
        """
        return None

    def graph_metrics(self, loss_value: float) -> dict[str, float]:
        """Per-batch metrics for a graph-executed step (parallels
        ``batch_step``'s return value)."""
        return {key: loss_value for key in self.history_keys}

    def on_fit_begin(self) -> None:
        """After ``model.train()``, before data/optimisers (e.g. freezing)."""

    def on_fit_end(self) -> None:
        """Before ``model.eval()`` (e.g. unfreezing)."""

    def epoch_message(self, history: dict[str, list[float]]) -> str:
        """The verbose per-epoch report suffix."""
        key = self.history_keys[0]
        return f"{key}={history[key][-1]:.4f}"

    def extra_state(self) -> dict:
        """JSON-serialisable task state to carry through checkpoints."""
        return {}

    def load_extra_state(self, state: dict) -> None:
        """Restore :meth:`extra_state` on resume."""


class TrainLoop:
    """Drives a :class:`TrainTask` to completion (optionally resumable).

    ``fit`` returns the per-epoch history dict, exactly as the five
    pre-refactor loops did.  With ``checkpoint_path`` set, a resumable
    snapshot (model + optimiser moments + rng state + history) is written
    every ``checkpoint_every`` epochs and — when ``resume`` is true and the
    file exists — training continues from it instead of restarting,
    bit-identically to an uninterrupted run.
    """

    def __init__(self, task: TrainTask, callbacks: Sequence = ()):
        self.task = task
        self.callbacks = list(callbacks)
        self.rng: np.random.Generator | None = None
        self.optimizers: dict[str, nn.Optimizer] = {}
        self.schedulers: dict[str, nn.LRScheduler] = {}
        self.history: dict[str, list[float]] = {}
        self.epoch = -1
        self.start_epoch = 0
        self.should_stop = False
        self.active_callbacks: list = []
        self.last_epoch_seconds = 0.0
        self.last_epoch_samples = 0
        # Optional per-phase wall-time profiler; None keeps the loop on
        # its original un-instrumented path (zero added work per batch).
        self.profiler = None
        # Execution-backend report from the last fit (graph/fused/eager,
        # capture-cache counters); see GraphExecutor.report().
        self.execution: dict = {}

    @property
    def model(self) -> nn.Module:
        return self.task.model

    def fit(self, verbose: bool = False, checkpoint_path=None,
            checkpoint_every: int = 1, resume: bool = True) -> dict:
        from .callbacks import Checkpointer
        from .checkpoint import (CheckpointCorruptError, checkpoint_exists,
                                 load_checkpoint, previous_checkpoint_path)

        task = self.task
        callbacks = list(self.callbacks)
        if checkpoint_path is not None:
            callbacks.append(Checkpointer(checkpoint_path,
                                          every=checkpoint_every))

        model = task.model
        self.rng = np.random.default_rng(task.seed)
        model.train()
        task.on_fit_begin()
        loader = task.loader(self.rng)

        self._specs = task.optim_specs()
        self.optimizers = {}
        self.schedulers = {}
        for name, spec in self._specs.items():
            opt = nn.Adam(spec.params, lr=spec.lr)
            self.optimizers[name] = opt
            if spec.schedule is not None:
                self.schedulers[name] = nn.LRScheduler(opt, spec.schedule)

        self.history = {key: [] for key in task.history_keys}
        self.epoch = -1
        self.start_epoch = 0
        self.should_stop = False
        self.active_callbacks = callbacks
        if resume and checkpoint_path is not None:
            # Newest generation first, then the Checkpointer's rolled-over
            # last-good one.  A corrupt candidate was already quarantined
            # by the loader; falling through to an older generation just
            # re-runs the missing epochs — bit-identical by construction.
            for candidate in (checkpoint_path,
                              previous_checkpoint_path(checkpoint_path)):
                if not checkpoint_exists(candidate):
                    continue
                try:
                    load_checkpoint(candidate, self)
                    break
                except CheckpointCorruptError as exc:
                    warnings.warn(f"{exc}", RuntimeWarning, stacklevel=2)

        step = StepContext(self.optimizers, self._specs)
        for cb in callbacks:
            cb.on_fit_begin(self)
        # Callbacks (e.g. ProfilerCallback) may have attached a profiler
        # in on_fit_begin; read it once and pin it on the step context.
        profiler = self.profiler
        step.profiler = profiler
        # Tasks that override graph_step opt into capture/replay; the
        # executor still falls back to batch_step for any batch whose
        # trace is missing, disabled or uncapturable.  Everything else
        # keeps the direct batch_step binding (zero added dispatch).
        graphable = type(task).graph_step is not TrainTask.graph_step
        executor = nn.graph.GraphExecutor(
            task, enabled=graphable and nn.graph_enabled())
        run_step = executor.run if executor.active else task.batch_step
        for epoch in range(self.start_epoch, task.epochs):
            if self.should_stop:
                break
            self.epoch = epoch
            tic = time.perf_counter()
            sums = dict.fromkeys(task.history_keys, 0.0)
            batches = 0
            samples = 0
            if profiler is None:
                for batch in loader:
                    metrics = run_step(batch, step, self.rng)
                    for key in sums:
                        sums[key] += metrics[key]
                    batches += 1
                    samples += len(batch[0])
            else:
                iterator = iter(loader)
                while True:
                    tic_data = time.perf_counter()
                    try:
                        batch = next(iterator)
                    except StopIteration:
                        break
                    profiler.record("data",
                                    time.perf_counter() - tic_data)
                    profiler.start_batch()
                    tic_step = time.perf_counter()
                    metrics = run_step(batch, step, self.rng)
                    step_s = time.perf_counter() - tic_step
                    # Forward by subtraction: batch_step minus whatever
                    # StepContext.apply booked as backward/optimizer.
                    profiler.record("forward",
                                    step_s - profiler.batch_seconds())
                    for key in sums:
                        sums[key] += metrics[key]
                    batches += 1
                    samples += len(batch[0])
            for scheduler in self.schedulers.values():
                scheduler.step()
            for key in self.history:
                self.history[key].append(sums[key] / max(batches, 1))
            self.last_epoch_seconds = time.perf_counter() - tic
            self.last_epoch_samples = samples
            if verbose:
                print(f"[{task.name}] epoch {epoch + 1}/{task.epochs} "
                      f"{task.epoch_message(self.history)}")
            for cb in callbacks:
                cb.on_epoch_end(self)
        self.execution = executor.report()
        task.on_fit_end()
        model.eval()
        for cb in callbacks:
            cb.on_fit_end(self)
        return self.history
