"""Graph IR for the capture/compile/replay execution engine.

A :class:`Tracer` rides along an *eager* training step: while installed
via :func:`repro.nn.tensor.tracing`, every tensor produced through
``Tensor._make`` is reported here and recorded as a :class:`Node` — op
kind, parent node ids, static shape/dtype, and the op's kwargs.  The
step still executes through the normal eager kernels, so capture never
changes values and a trace that turns out to be uncapturable (a random
dropout mask, an unregistered constant array) costs nothing: the tracer
just marks itself failed and the engine falls back to eager dispatch.

Leaf classification
-------------------
A parent tensor not produced under the trace is a leaf.  It is matched
in this order:

* ``input`` — its ``.data`` is one of the arrays the task registered as
  a per-step input (matched by array *identity*, which the eager path
  preserves end-to-end for float64 arrays);
* ``var`` — it requires grad (parameters).  The tracer keeps a strong
  reference and the compiled step reads ``.data`` live on every replay,
  so optimiser updates and ``load_state_dict`` (which writes in place)
  are picked up without recompiling;
* ``const`` — a size-1 array (shape- or config-derived scalars such as
  ``mean``'s ``1/count``), snapshotted;
* anything else fails the capture: a same-shape array that is neither a
  registered input nor a parameter is step-varying data the graph cannot
  see (dropout masks, fresh one-hot targets, InfoNCE masks).

The same policy applies to ``numpy`` arrays inside op kwargs (the fused
loss kernels pass targets as raw arrays): registered identity becomes an
:class:`InputRef`, size-1 snapshots, anything else fails.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CaptureError", "InputRef", "Node", "Tracer",
           "LEAF_INPUT", "LEAF_VAR", "LEAF_CONST"]

LEAF_INPUT = "input"
LEAF_VAR = "var"
LEAF_CONST = "const"


class CaptureError(RuntimeError):
    """A trace cannot be compiled into a replayable schedule."""


class InputRef:
    """A kwarg array resolved from the per-step inputs at replay time."""

    __slots__ = ("pos",)

    def __init__(self, pos: int):
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InputRef({self.pos})"


class Node:
    """One IR node: an op application or a leaf binding."""

    __slots__ = ("idx", "op", "parents", "meta", "shape", "dtype",
                 "requires_grad", "leaf", "input_pos", "var", "const")

    def __init__(self, idx: int, op: str | None, parents: tuple[int, ...],
                 meta: dict | None, shape: tuple[int, ...], dtype,
                 requires_grad: bool):
        self.idx = idx
        self.op = op                      # None for leaves
        self.parents = parents
        self.meta = meta
        self.shape = shape
        self.dtype = dtype
        self.requires_grad = requires_grad
        self.leaf: str | None = None      # LEAF_* kind, None for interior
        self.input_pos: int | None = None
        self.var = None                   # strong Tensor ref for LEAF_VAR
        self.const: np.ndarray | None = None

    @property
    def interior(self) -> bool:
        return self.leaf is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = self.op if self.interior else f"leaf:{self.leaf}"
        return f"Node({self.idx}, {kind}, {self.shape})"


class Tracer:
    """Records one eager step as IR; see the module docstring."""

    def __init__(self, supported_ops=None):
        from .ops import OPS
        self._ops = OPS if supported_ops is None else supported_ops
        self.nodes: list[Node] = []
        self.index: dict[int, int] = {}       # id(tensor) -> node idx
        self._inputs: dict[int, int] = {}     # id(array) -> input position
        self.n_inputs = 0
        self.failed: str | None = None
        # Strong refs keep every classified tensor alive for the duration
        # of the trace, so CPython cannot recycle an id() into a stale
        # ``index`` hit.
        self._keep: list = []

    # -- setup ---------------------------------------------------------
    def register_input(self, array: np.ndarray) -> int:
        """Declare a per-step input array (matched by identity)."""
        pos = self._inputs.get(id(array))
        if pos is None:
            pos = self.n_inputs
            self._inputs[id(array)] = pos
            self.n_inputs += 1
            self._keep.append(array)
        return pos

    # -- recording -----------------------------------------------------
    def fail(self, reason: str) -> None:
        if self.failed is None:
            self.failed = reason

    def record(self, out, op: str | None, parents, meta: dict | None) -> None:
        """Called from ``Tensor._make`` for every op built under the trace."""
        if self.failed is not None:
            return
        if op is None or op not in self._ops:
            self.fail(f"op {op!r} has no graph lowering")
            return
        parent_idx = []
        for parent in parents:
            idx = self.index.get(id(parent))
            if idx is None:
                idx = self._classify_leaf(parent)
                if idx is None:
                    return
            parent_idx.append(idx)
        if meta is not None:
            try:
                meta = self._sanitize(meta)
            except CaptureError as exc:
                self.fail(str(exc))
                return
        node = Node(len(self.nodes), op, tuple(parent_idx), meta,
                    out.data.shape, out.data.dtype, out.requires_grad)
        self.nodes.append(node)
        self.index[id(out)] = node.idx
        self._keep.append(out)

    def lookup(self, tensor) -> int | None:
        """The node index of a traced tensor (e.g. the loss), if any."""
        return self.index.get(id(tensor))

    # -- leaf / kwarg classification -----------------------------------
    def _classify_leaf(self, tensor) -> int | None:
        arr = tensor.data
        node = Node(len(self.nodes), None, (), None, arr.shape, arr.dtype,
                    False)
        pos = self._inputs.get(id(arr))
        if pos is not None:
            if tensor.requires_grad:
                self.fail("a registered input requires grad")
                return None
            node.leaf = LEAF_INPUT
            node.input_pos = pos
        elif tensor.requires_grad:
            node.leaf = LEAF_VAR
            node.requires_grad = True
            node.var = tensor
        elif arr.size == 1:
            node.leaf = LEAF_CONST
            node.const = arr.copy()
        else:
            self.fail(f"untracked array leaf (shape {arr.shape}) — "
                      "step-varying data the graph cannot replay")
            return None
        self.nodes.append(node)
        self.index[id(tensor)] = node.idx
        self._keep.append(tensor)
        return node.idx

    def _sanitize(self, value):
        """Make an op kwarg replayable, or raise :class:`CaptureError`."""
        if isinstance(value, np.ndarray):
            pos = self._inputs.get(id(value))
            if pos is not None:
                return InputRef(pos)
            if value.size == 1:
                return value.copy()
            raise CaptureError(
                f"untracked kwarg array (shape {value.shape})")
        if isinstance(value, dict):
            return {k: self._sanitize(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return type(value)(self._sanitize(v) for v in value)
        # ints / floats / bools / None / slices / strings are static.
        return value
