"""The capture/compile/replay executor and the ``graph_capture`` switch.

:class:`GraphExecutor` sits between :class:`repro.train.TrainLoop` and a
task's ``batch_step``.  For tasks that implement ``graph_step`` (which
names the per-step input arrays and a pure ``fn(*inputs) -> loss``), the
first step per (input-shapes, fused-mode) key runs *eagerly under the
tracer* — so the capture step itself is an ordinary eager step, free to
fail capture — and is compiled into a :class:`~.schedule.CompiledStep`.
Every subsequent step with the same key replays the compiled schedule:
no Tensor/closure allocation, fused forward entries, arena-backed
buffers, and the reference backward post-order bit-for-bit.

Any cache miss falls back to eager automatically: a new batch shape
recompiles (the last partial batch of an epoch simply becomes a second
key), an uncapturable trace (dropout masks, fresh one-hot targets, an
op without a lowering) caches a failure sentinel so the fit continues
eagerly, and ``repro.nn.graph_capture(False)`` switches the engine off
wholesale.  Compile/replay/fallback counters and an arena-bytes gauge
are published through :func:`repro.obs.get_registry`.
"""

from __future__ import annotations

import time

from ..switches import Switch
from ..fused import fused_enabled
from ..tensor import tracing
from .ir import CaptureError, Tracer
from .schedule import compile_trace

__all__ = ["GraphExecutor", "graph_capture", "graph_enabled"]


_CAPTURE = Switch(True, name="graph_capture")


def graph_enabled() -> bool:
    """Whether graph capture/replay is active (escape hatch: off)."""
    return _CAPTURE.enabled


def graph_capture(enabled: bool = True):
    """Enable/disable graph capture within a scope (exception-safe).

    ``with graph_capture(False):`` forces every step through the eager
    (or fused-eager) dispatch path — the escape hatch when a workload
    is step-varying in ways the tracer cannot see.
    """
    return _CAPTURE(enabled)


_FAILED = object()   # cache sentinel: this key cannot be compiled


class GraphExecutor:
    """Per-fit capture cache + replay driver for one task.

    The cache lives on the loop (one executor per fit), keyed by
    ``(optimiser-name, input shapes/dtypes, fused-mode)`` — a batch-shape
    change mid-fit or a toggled ``fused_kernels`` between fits can never
    replay a stale schedule.  Parameter identity is stable across a fit
    (``load_state_dict`` writes in place), and compiled steps read
    parameter data live, so weight updates need no invalidation.
    """

    def __init__(self, task, enabled: bool = True):
        self.task = task
        self.enabled = bool(enabled)
        self._cache: dict = {}
        self.captures = 0
        self.replays = 0
        self.fallbacks = 0
        self.failures: list[str] = []
        self._metrics = None

    @property
    def active(self) -> bool:
        return self.enabled

    # -- metrics -------------------------------------------------------
    def _obs(self):
        if self._metrics is None:
            from ...obs import get_registry
            registry = get_registry()
            labels = (self.task.name,)
            self._metrics = {
                "captures": registry.counter(
                    "repro_graph_captures_total",
                    "Train steps captured and compiled into a graph "
                    "schedule", ("task",)).labels(*labels),
                "replays": registry.counter(
                    "repro_graph_replays_total",
                    "Train steps executed by compiled-schedule replay",
                    ("task",)).labels(*labels),
                "fallbacks": registry.counter(
                    "repro_graph_fallbacks_total",
                    "Train steps that fell back to eager dispatch",
                    ("task",)).labels(*labels),
                "arena": registry.gauge(
                    "repro_graph_arena_bytes",
                    "Preallocated arena bytes across this task's "
                    "compiled schedules", ("task",)).labels(*labels),
            }
        return self._metrics

    # -- execution -----------------------------------------------------
    def run(self, batch, step, rng):
        """Drop-in for ``task.batch_step`` with capture/replay/fallback."""
        task = self.task
        plan = task.graph_step(batch) if self.enabled else None
        if plan is None:
            self.fallbacks += 1
            self._obs()["fallbacks"].inc()
            return task.batch_step(batch, step, rng)
        inputs, fn = plan[0], plan[1]
        name = plan[2] if len(plan) > 2 else "main"
        key = (name, tuple((a.shape, a.dtype.str) for a in inputs),
               fused_enabled())
        compiled = self._cache.get(key)
        if compiled is None:
            return self._capture(key, inputs, fn, name, step)
        if compiled is _FAILED:
            self.fallbacks += 1
            self._obs()["fallbacks"].inc()
            return task.batch_step(batch, step, rng)
        return self._replay(compiled, inputs, name, step)

    def _capture(self, key, inputs, fn, name, step):
        """Trace one eager step, apply it, then try to compile it."""
        tracer = Tracer()
        for array in inputs:
            tracer.register_input(array)
        with tracing(tracer):
            loss = fn(*inputs)
        # The capture step *is* an eager step: apply it normally so the
        # fit's numbers never depend on whether compilation succeeds.
        step.apply(loss, name)
        metrics = self.task.graph_metrics(loss.item())

        loss_idx = tracer.lookup(loss)
        if tracer.failed is None and loss_idx is None:
            tracer.fail("loss tensor was not produced under the trace")
        compiled = None
        if tracer.failed is None:
            try:
                compiled = compile_trace(tracer.nodes, loss_idx)
            except CaptureError as exc:
                tracer.fail(str(exc))
        if compiled is None:
            self._cache[key] = _FAILED
            self.failures.append(tracer.failed or "unknown")
            self.fallbacks += 1
            self._obs()["fallbacks"].inc()
        else:
            self._cache[key] = compiled
            self.captures += 1
            obs = self._obs()
            obs["captures"].inc()
            obs["arena"].set(float(self.arena_bytes))
        return metrics

    def _replay(self, compiled, inputs, name, step):
        """Execute one compiled step, mirroring ``StepContext.apply``."""
        opt = step._optimizers[name]
        spec = step._specs[name]
        profiler = step.profiler
        if profiler is None:
            opt.zero_grad()
            loss = compiled.run_forward(inputs)
            compiled.run_backward()
            if spec.grad_clip is not None:
                opt.clip_grad_norm(spec.grad_clip)
            opt.step()
        else:
            tic = time.perf_counter()
            opt.zero_grad()
            zero_s = time.perf_counter() - tic
            loss = compiled.run_forward(inputs)
            tic = time.perf_counter()
            compiled.run_backward()
            profiler.record("backward", time.perf_counter() - tic)
            tic = time.perf_counter()
            if spec.grad_clip is not None:
                opt.clip_grad_norm(spec.grad_clip)
            opt.step()
            profiler.record("optimizer",
                            zero_s + time.perf_counter() - tic)
        self.replays += 1
        self._obs()["replays"].inc()
        return self.task.graph_metrics(float(loss))

    # -- reporting -----------------------------------------------------
    @property
    def arena_bytes(self) -> int:
        return sum(c.arena_bytes for c in self._cache.values()
                   if c is not _FAILED)

    def report(self) -> dict:
        """Self-describing execution summary for callbacks / ``--json``."""
        if self.replays or self.captures:
            backend = "graph"
        elif fused_enabled():
            backend = "fused"
        else:
            backend = "eager"
        return {"backend": backend,
                "graph_enabled": self.enabled,
                "cache_entries": len(self._cache),
                "captures": self.captures,
                "replays": self.replays,
                "fallbacks": self.fallbacks,
                "arena_bytes": self.arena_bytes,
                "failures": list(self.failures)}
