"""Liveness analysis and arena buffer planning for compiled schedules.

Forward *output* buffers are the allocation hot spot of an eager step:
every op allocates a fresh result array each step.  With the schedule
fixed, each node's output lifetime is fully static, so same-shape
buffers can be pooled and preallocated once per compile — replays then
write into the arena instead of allocating.

Rules that keep this bit-exact and alias-safe:

* Only ops flagged ``out_ok`` get a planned buffer, and only where the
  eager/fused kernel's expressions are pure ufunc/gemm writes (the
  lowering decides how to use the buffer; values cannot change).
* View ops (reshape/transpose/...) share their parent's *storage root*;
  a view never gets its own buffer and extends its root's lifetime.
* A node's lifetime runs from its forward position to its last read —
  forward consumers, backward closures that re-read parent values
  (``reads_parents_bwd``) or their own output (``reads_out_bwd``) —
  measured on the combined forward+backward timeline.
* At each forward position the node's buffer is claimed *before* any
  buffer expiring at that position is returned to the pool, so an op
  can never be handed a buffer that one of its own operands still
  occupies (in-place gemm or permuted copies would corrupt values).
* Backward gradients and saved intermediates are never arena'd — they
  are freshly allocated exactly like the eager closures allocate them,
  which keeps the adopt-don't-copy accumulation identical.
"""

from __future__ import annotations

import numpy as np

from .ops import OPS

__all__ = ["plan_buffers"]

# Below this many elements a pooled buffer saves less than the
# bookkeeping costs; tiny arrays also tend to be reduction scalars.
_MIN_ELEMENTS = 64


def plan_buffers(nodes, fwd_order, bwd_order):
    """Assign pooled output buffers.

    Returns ``(buffers, arena_bytes, n_buffers)`` where ``buffers`` maps
    node idx -> preallocated ndarray for eligible nodes.
    """
    # Storage root: views alias their (first) parent's storage.
    root: dict[int, int | None] = {}
    for node in nodes:
        if not node.interior:
            root[node.idx] = None          # leaves own external storage
        elif OPS[node.op].view:
            root[node.idx] = root[node.parents[0]]
        else:
            root[node.idx] = node.idx

    fwd_pos = {idx: pos for pos, idx in enumerate(fwd_order)}
    n_fwd = len(fwd_order)
    last_use: dict[int, int] = {}

    def bump(node_idx: int, pos: int) -> None:
        r = root.get(node_idx)
        if r is not None and pos > last_use.get(r, -1):
            last_use[r] = pos

    for pos, idx in enumerate(fwd_order):
        node = nodes[idx]
        bump(idx, pos)                      # creation / view aliasing
        for parent in node.parents:
            bump(parent, pos)
    for offset, idx in enumerate(bwd_order):
        pos = n_fwd + offset
        node = nodes[idx]
        opdef = OPS[node.op]
        if opdef.reads_parents_bwd:
            for parent in node.parents:
                bump(parent, pos)
        if opdef.reads_out_bwd:
            bump(idx, pos)

    # Greedy (shape, dtype)-keyed pooling over the forward order.
    expiries: dict[int, list[int]] = {}
    for r, pos in last_use.items():
        expiries.setdefault(pos, []).append(r)
    free: dict[tuple, list[np.ndarray]] = {}
    buffers: dict[int, np.ndarray] = {}
    arena_bytes = 0
    n_buffers = 0
    for pos, idx in enumerate(fwd_order):
        node = nodes[idx]
        opdef = OPS[node.op]
        if (opdef.out_ok and not opdef.view and root[idx] == idx
                and node.dtype.kind == "f"
                and int(np.prod(node.shape or (1,))) >= _MIN_ELEMENTS):
            key = (node.shape, node.dtype.str)
            pool = free.get(key)
            if pool:
                buffers[idx] = pool.pop()
            else:
                buf = np.empty(node.shape, dtype=node.dtype)
                buffers[idx] = buf
                arena_bytes += buf.nbytes
                n_buffers += 1
        # Release only after this node claimed its buffer: an operand
        # expiring here must not become this node's output storage.
        for r in expiries.get(pos, ()):
            buf = buffers.get(r)
            if buf is not None and fwd_pos.get(r, -1) <= pos:
                free.setdefault((buf.shape, buf.dtype.str), []).append(buf)
    return buffers, arena_bytes, n_buffers
