"""Lazy graph-capture execution engine: trace once, fuse, plan, replay.

The package splits cleanly along the capture -> compile -> replay
pipeline:

* :mod:`.ir` — tracing-time IR (:class:`Node`, :class:`Tracer`) built by
  the :func:`repro.nn.tensor.tracing` hook while a step runs eagerly.
* :mod:`.ops` — the lowering registry: one ``OpDef`` per traced op with
  forward/backward closure builders mirroring the eager expressions
  bit-for-bit.
* :mod:`.fusion` — dispatch-level fusion of elementwise forward chains.
* :mod:`.liveness` — output-buffer lifetimes and arena planning.
* :mod:`.schedule` — ``compile_trace`` and the replayable
  :class:`CompiledStep`.
* :mod:`.engine` — :class:`GraphExecutor` (capture cache, fallback, obs
  counters) and the ``graph_capture`` switch.
"""

from .engine import GraphExecutor, graph_capture, graph_enabled
from .ir import CaptureError, Tracer
from .schedule import CompiledStep, compile_trace

__all__ = [
    "CaptureError",
    "CompiledStep",
    "GraphExecutor",
    "Tracer",
    "compile_trace",
    "graph_capture",
    "graph_enabled",
]
