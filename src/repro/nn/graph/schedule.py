"""Compile a traced IR into a flat, replayable schedule.

``compile_trace`` turns the tracer's node list into a
:class:`CompiledStep`:

* **Forward schedule** — the reachable interior nodes in creation order
  (creation order is a topological order by construction), grouped by
  the fusion pass, each lowered to a closure over a shared slot state.
* **Backward schedule** — the *exact* DFS post-order that
  ``Tensor.backward`` would produce for this graph, replicated on node
  indices: parents pushed in declaration order, explored LIFO,
  visited-at-pop, fire guarded on a non-``None`` gradient.  Replaying
  these entries reproduces the reference gradient-arrival order into
  every shared operand bit-identically.
* **Buffer plan** — the liveness pass preallocates pooled output
  buffers (the arena) consumed by the lowered closures.

Parameter gradients flow through each parameter's own
``Tensor._accumulate`` (so flat-arena optimiser gradient buffers behave
exactly as in eager mode), and parameter *values* are read live from
``tensor.data`` on every replay — an optimiser update or an in-place
``load_state_dict`` needs no recompile.
"""

from __future__ import annotations

import numpy as np

from .fusion import fuse_forward
from .ir import CaptureError, LEAF_CONST, LEAF_INPUT, LEAF_VAR
from .liveness import plan_buffers
from .ops import OPS

__all__ = ["CompiledStep", "compile_trace"]


class _State:
    """Mutable slot state shared by every closure of one compiled step."""

    __slots__ = ("vals", "saved", "grads", "ins")

    def __init__(self, n: int):
        self.vals = [None] * n
        self.saved = [None] * n
        self.grads = None
        self.ins: tuple = ()


class _Context:
    """What op builders may ask of the compiler."""

    def __init__(self, nodes, buffers):
        self.nodes = nodes
        self._buffers = buffers
        self._sinks: dict[int, object] = {}

    def shape(self, idx: int):
        return self.nodes[idx].shape

    def dtype(self, idx: int):
        return self.nodes[idx].dtype

    def buf(self, idx: int):
        return self._buffers.get(idx)

    def sink(self, idx: int):
        """Gradient-arrival target for node ``idx`` (None: no grad flows).

        Mirrors the eager closures' ``if parent.requires_grad`` guards:
        parameters accumulate through their own ``Tensor._accumulate``
        (first arrival copies / lands in the optimiser's arena view,
        later arrivals add — identical to eager); interior nodes adopt
        the first arrival and add subsequent ones, matching the values
        the eager ``_accumulate_owned`` fast path produces.
        """
        if idx in self._sinks:
            return self._sinks[idx]
        node = self.nodes[idx]
        if not node.requires_grad:
            sink = None
        elif node.leaf == LEAF_VAR:
            tensor = node.var

            def sink(st, grad, _t=tensor):
                _t._accumulate(grad)
        else:
            def sink(st, grad, _j=idx):
                grads = st.grads
                cur = grads[_j]
                grads[_j] = grad if cur is None else cur + grad
        self._sinks[idx] = sink
        return sink


def _chain(fns):
    def run(st, _fns=tuple(fns)):
        for fn in _fns:
            fn(st)
    return run


def compile_trace(nodes, loss_idx: int) -> "CompiledStep":
    """Lower a completed trace into a :class:`CompiledStep`."""
    loss = nodes[loss_idx]
    if not loss.interior:
        raise CaptureError("loss is not a traced op result")
    if not loss.requires_grad:
        raise CaptureError("loss does not require grad")

    # Forward = reachable subgraph in creation (== topological) order.
    reach: set[int] = set()
    stack = [loss_idx]
    while stack:
        idx = stack.pop()
        if idx in reach:
            continue
        reach.add(idx)
        stack.extend(nodes[idx].parents)
    fwd_order = [idx for idx in sorted(reach) if nodes[idx].interior]

    # Backward = Tensor.backward's DFS post-order, replicated on indices
    # (visited-at-pop, parents pushed in declaration order, LIFO).
    topo: list[int] = []
    visited: set[int] = set()
    dfs: list[tuple[int, bool]] = [(loss_idx, False)]
    while dfs:
        idx, processed = dfs.pop()
        if processed:
            topo.append(idx)
            continue
        if idx in visited:
            continue
        visited.add(idx)
        node = nodes[idx]
        if node.interior and node.requires_grad:
            dfs.append((idx, True))
            for parent in node.parents:
                if nodes[parent].requires_grad and parent not in visited:
                    dfs.append((parent, False))
    bwd_order = list(reversed(topo))

    buffers, arena_bytes, n_buffers = plan_buffers(nodes, fwd_order,
                                                   bwd_order)
    ctx = _Context(nodes, buffers)
    fwd_fns: dict[int, object] = {}
    bwd_fns: dict[int, object] = {}
    for idx in fwd_order:
        node = nodes[idx]
        fwd, bwd = OPS[node.op].build(node, ctx)
        fwd_fns[idx] = fwd
        bwd_fns[idx] = bwd

    groups = fuse_forward(fwd_order, nodes)
    forward = [fwd_fns[g[0]] if len(g) == 1 else _chain([fwd_fns[i]
                                                         for i in g])
               for g in groups]
    backward = [(idx, bwd_fns[idx]) for idx in bwd_order]

    const_binds = [(n.idx, n.const) for n in nodes if n.leaf == LEAF_CONST]
    var_binds = [(n.idx, n.var) for n in nodes if n.leaf == LEAF_VAR]
    input_binds = [(n.idx, n.input_pos) for n in nodes
                   if n.leaf == LEAF_INPUT]
    return CompiledStep(len(nodes), loss_idx, forward, backward,
                        const_binds, var_binds, input_binds,
                        np.ones(loss.shape, dtype=loss.dtype),
                        arena_bytes, n_buffers,
                        {"nodes": len(nodes),
                         "scheduled": len(fwd_order),
                         "forward_entries": len(forward),
                         "backward_entries": len(backward)})


class CompiledStep:
    """A compiled forward+backward schedule over a preallocated arena."""

    def __init__(self, n_nodes, loss_idx, forward, backward, const_binds,
                 var_binds, input_binds, seed, arena_bytes, n_buffers,
                 stats):
        self._n = n_nodes
        self._loss = loss_idx
        self._forward = forward
        self._backward = backward
        self._vars = var_binds
        self._inputs = input_binds
        self._seed = seed
        self.arena_bytes = arena_bytes
        self.n_buffers = n_buffers
        self.stats = stats
        self._state = _State(n_nodes)
        for idx, const in const_binds:
            self._state.vals[idx] = const

    def run_forward(self, inputs) -> np.ndarray:
        """Execute the forward schedule; returns the loss value array."""
        st = self._state
        st.ins = inputs
        vals = st.vals
        for idx, tensor in self._vars:
            vals[idx] = tensor.data       # live read: tracks updates
        for idx, pos in self._inputs:
            vals[idx] = inputs[pos]
        for fn in self._forward:
            fn(st)
        return vals[self._loss]

    def run_backward(self) -> None:
        """Fire the backward schedule in the reference post-order."""
        st = self._state
        st.grads = [None] * self._n
        st.grads[self._loss] = self._seed
        grads = st.grads
        for idx, fn in self._backward:
            grad = grads[idx]
            if grad is not None:
                fn(st, grad)
        st.grads = None
