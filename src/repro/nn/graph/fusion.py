"""Forward-schedule fusion: group elementwise chains into one entry.

Maximal runs of single-parent elementwise ops whose parent is the
immediately preceding node in the schedule are collapsed into a single
schedule entry executed as one unit.  The heavy multi-op fusion — the
numpy-*expression* fusion — already lives in the traced
:mod:`repro.nn.fused` kernel nodes (a traced fused kernel *is* a fused
chain recorded as one IR node); this pass handles the generic leftovers
at dispatch level, dropping per-op schedule overhead without touching
any value or ordering: grouped ops stay in exactly the same relative
order, and because each chain member's sole data dependency inside the
group is its predecessor, executing the group as one entry is
observationally identical to executing its members one by one.

The backward schedule is deliberately left flat: every backward entry
keeps its own ``grad is not None`` fire guard, mirroring
``Tensor.backward`` exactly — gradient-arrival order is the contract,
so the backward is replayed entry by entry in the reference DFS
post-order.
"""

from __future__ import annotations

from .ops import OPS

__all__ = ["fuse_forward"]


def fuse_forward(fwd_order, nodes):
    """Group the forward order into chains: a list of lists of node idx."""
    groups: list[list[int]] = []
    for idx in fwd_order:
        node = nodes[idx]
        if (groups
                and OPS[node.op].ewise_unary
                and len(node.parents) == 1
                and node.parents[0] == groups[-1][-1]):
            groups[-1].append(idx)
        else:
            groups.append([idx])
    return groups
