"""Per-op lowerings for the compiled schedule.

Every supported op gets a *builder* that turns an IR :class:`~.ir.Node`
into a pair of tight closures — ``fwd(st)`` writing ``st.vals[idx]`` and
``bwd(st, grad)`` routing gradient arrivals — plus static flags the
liveness/arena and fusion passes consume.

The builders mirror the exact numpy expressions of the eager ops in
:mod:`repro.nn.tensor` and the fused kernels in :mod:`repro.nn.fused`,
**including the order of gradient arrivals into shared operands**: this
is what makes replay bit-identical to the op-by-op reference (floating
point addition is not associative, so both the expressions and the
arrival order are part of the contract).  ``out=`` buffers from the
arena are used only where the fused kernels already used in-place
writes, or for pure ufunc results — never in a way that could change a
value.

Flags
-----
``view``
    The forward output aliases parent storage (reshape/transpose/...).
    View nodes never get arena buffers and share their parent's
    liveness root.
``ewise_unary``
    Single-parent elementwise op; the fusion pass groups maximal chains
    of these into one schedule entry (see :mod:`.fusion`).
``reads_parents_bwd`` / ``reads_out_bwd``
    The backward closure reads the parents' (resp. its own) forward
    value — extends those buffers' lifetimes into the backward timeline.
"""

from __future__ import annotations

import math

import numpy as np

from ..tensor import _unbroadcast
from .ir import CaptureError, InputRef

__all__ = ["OPS", "OpDef"]

_GELU_C = math.sqrt(2.0 / math.pi)


class OpDef:
    __slots__ = ("name", "build", "view", "ewise_unary",
                 "reads_parents_bwd", "reads_out_bwd", "out_ok")

    def __init__(self, name, build, view=False, ewise_unary=False,
                 reads_parents_bwd=False, reads_out_bwd=False, out_ok=False):
        self.name = name
        self.build = build
        self.view = view
        self.ewise_unary = ewise_unary
        self.reads_parents_bwd = reads_parents_bwd
        self.reads_out_bwd = reads_out_bwd
        self.out_ok = out_ok


OPS: dict[str, OpDef] = {}


def _op(name, **flags):
    def register(build):
        OPS[name] = OpDef(name, build, **flags)
        return build
    return register


def _reader(value):
    """Resolve a sanitized kwarg: static constant or per-step input."""
    if isinstance(value, InputRef):
        pos = value.pos
        return lambda st: st.ins[pos]
    return lambda st: value


def _static(value, what):
    if isinstance(value, InputRef):
        raise CaptureError(f"{what} must be static, got a step input")
    return value


# ----------------------------------------------------------------------
# Eager arithmetic
# ----------------------------------------------------------------------
@_op("add", out_ok=True)
def _add(n, cx):
    i = n.idx
    a, b = n.parents
    sa, sb = cx.shape(a), cx.shape(b)
    ka, kb = cx.sink(a), cx.sink(b)
    buf = cx.buf(i)
    if buf is None:
        def fwd(st):
            st.vals[i] = st.vals[a] + st.vals[b]
    else:
        def fwd(st):
            st.vals[i] = np.add(st.vals[a], st.vals[b], out=buf)

    def bwd(st, grad):
        if ka is not None:
            ka(st, _unbroadcast(grad, sa))
        if kb is not None:
            kb(st, _unbroadcast(grad, sb))
    return fwd, bwd


@_op("sub", out_ok=True)
def _sub(n, cx):
    i = n.idx
    a, b = n.parents
    sa, sb = cx.shape(a), cx.shape(b)
    ka, kb = cx.sink(a), cx.sink(b)
    buf = cx.buf(i)
    if buf is None:
        def fwd(st):
            st.vals[i] = st.vals[a] - st.vals[b]
    else:
        def fwd(st):
            st.vals[i] = np.subtract(st.vals[a], st.vals[b], out=buf)

    def bwd(st, grad):
        if ka is not None:
            ka(st, _unbroadcast(grad, sa))
        if kb is not None:
            kb(st, _unbroadcast(-grad, sb))
    return fwd, bwd


@_op("mul", reads_parents_bwd=True, out_ok=True)
def _mul(n, cx):
    i = n.idx
    a, b = n.parents
    sa, sb = cx.shape(a), cx.shape(b)
    ka, kb = cx.sink(a), cx.sink(b)
    buf = cx.buf(i)
    if buf is None:
        def fwd(st):
            st.vals[i] = st.vals[a] * st.vals[b]
    else:
        def fwd(st):
            st.vals[i] = np.multiply(st.vals[a], st.vals[b], out=buf)

    def bwd(st, grad):
        if ka is not None:
            ka(st, _unbroadcast(grad * st.vals[b], sa))
        if kb is not None:
            kb(st, _unbroadcast(grad * st.vals[a], sb))
    return fwd, bwd


@_op("div", reads_parents_bwd=True, out_ok=True)
def _div(n, cx):
    i = n.idx
    a, b = n.parents
    sa, sb = cx.shape(a), cx.shape(b)
    ka, kb = cx.sink(a), cx.sink(b)
    buf = cx.buf(i)
    if buf is None:
        def fwd(st):
            st.vals[i] = st.vals[a] / st.vals[b]
    else:
        def fwd(st):
            st.vals[i] = np.divide(st.vals[a], st.vals[b], out=buf)

    def bwd(st, grad):
        if ka is not None:
            ka(st, _unbroadcast(grad / st.vals[b], sa))
        if kb is not None:
            kb(st, _unbroadcast(-grad * st.vals[a] / (st.vals[b] ** 2), sb))
    return fwd, bwd


@_op("neg", ewise_unary=True, out_ok=True)
def _neg(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    buf = cx.buf(i)
    if buf is None:
        def fwd(st):
            st.vals[i] = -st.vals[a]
    else:
        def fwd(st):
            st.vals[i] = np.negative(st.vals[a], out=buf)

    def bwd(st, grad):
        ka(st, -grad)
    return fwd, bwd


@_op("pow", ewise_unary=True, reads_parents_bwd=True)
def _pow(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    exponent = _static(n.meta["exponent"], "pow exponent")

    def fwd(st):
        st.vals[i] = st.vals[a] ** exponent

    def bwd(st, grad):
        ka(st, grad * exponent * st.vals[a] ** (exponent - 1))
    return fwd, bwd


@_op("matmul", reads_parents_bwd=True)
def _matmul(n, cx):
    i = n.idx
    a, b = n.parents
    sa, sb = cx.shape(a), cx.shape(b)
    ka, kb = cx.sink(a), cx.sink(b)

    def fwd(st):
        st.vals[i] = st.vals[a] @ st.vals[b]

    def bwd(st, grad):
        va, vb = st.vals[a], st.vals[b]
        if ka is not None:
            if vb.ndim == 1:
                ga = np.expand_dims(grad, -1) * vb
            else:
                ga = grad @ np.swapaxes(vb, -1, -2)
            if va.ndim == 1 and ga.ndim > 1:
                ga = ga.sum(axis=tuple(range(ga.ndim - 1)))
            ka(st, _unbroadcast(ga, sa))
        if kb is not None:
            if va.ndim == 1:
                gb = (np.multiply.outer(va, grad) if grad.ndim == 1
                      else va[:, None] * grad)
            else:
                g = grad if grad.ndim > 1 else np.expand_dims(grad, -1)
                gb = np.swapaxes(va, -1, -2) @ g
                if vb.ndim == 1:
                    gb = gb.squeeze(-1)
                    gb = (gb.sum(axis=tuple(range(gb.ndim - 1)))
                          if gb.ndim > 1 else gb)
            kb(st, _unbroadcast(gb, sb))
    return fwd, bwd


# ----------------------------------------------------------------------
# Eager elementwise functions
# ----------------------------------------------------------------------
@_op("exp", ewise_unary=True, reads_out_bwd=True)
def _exp(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)

    def fwd(st):
        st.vals[i] = np.exp(st.vals[a])

    def bwd(st, grad):
        ka(st, grad * st.vals[i])
    return fwd, bwd


@_op("log", ewise_unary=True, reads_parents_bwd=True)
def _log(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)

    def fwd(st):
        st.vals[i] = np.log(st.vals[a])

    def bwd(st, grad):
        ka(st, grad / st.vals[a])
    return fwd, bwd


@_op("sqrt", ewise_unary=True, reads_out_bwd=True)
def _sqrt(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)

    def fwd(st):
        st.vals[i] = np.sqrt(st.vals[a])

    def bwd(st, grad):
        ka(st, grad * 0.5 / st.vals[i])
    return fwd, bwd


@_op("abs", ewise_unary=True, reads_parents_bwd=True)
def _abs(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)

    def fwd(st):
        st.vals[i] = np.abs(st.vals[a])

    def bwd(st, grad):
        ka(st, grad * np.sign(st.vals[a]))
    return fwd, bwd


@_op("tanh", ewise_unary=True, reads_out_bwd=True)
def _tanh(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)

    def fwd(st):
        st.vals[i] = np.tanh(st.vals[a])

    def bwd(st, grad):
        ka(st, grad * (1.0 - st.vals[i] ** 2))
    return fwd, bwd


@_op("sigmoid", ewise_unary=True, reads_out_bwd=True)
def _sigmoid(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)

    def fwd(st):
        va = st.vals[a]
        st.vals[i] = np.where(va >= 0,
                              1.0 / (1.0 + np.exp(-np.clip(va, -60, 60))),
                              np.exp(np.clip(va, -60, 60))
                              / (1.0 + np.exp(np.clip(va, -60, 60))))

    def bwd(st, grad):
        out = st.vals[i]
        ka(st, grad * out * (1.0 - out))
    return fwd, bwd


@_op("relu", ewise_unary=True)
def _relu(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)

    def fwd(st):
        va = st.vals[a]
        mask = va > 0
        st.saved[i] = mask
        st.vals[i] = va * mask

    def bwd(st, grad):
        ka(st, grad * st.saved[i])
    return fwd, bwd


@_op("clip", ewise_unary=True)
def _clip(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    low = _static(n.meta["low"], "clip bound")
    high = _static(n.meta["high"], "clip bound")

    def fwd(st):
        va = st.vals[a]
        st.vals[i] = np.clip(va, low, high)
        st.saved[i] = (va >= low) & (va <= high)

    def bwd(st, grad):
        ka(st, grad * st.saved[i])
    return fwd, bwd


@_op("maximum")
def _maximum(n, cx):
    i = n.idx
    a, b = n.parents
    sa, sb = cx.shape(a), cx.shape(b)
    ka, kb = cx.sink(a), cx.sink(b)

    def fwd(st):
        va, vb = st.vals[a], st.vals[b]
        st.vals[i] = np.maximum(va, vb)
        self_mask = (va > vb) + 0.5 * (va == vb)
        st.saved[i] = (self_mask, 1.0 - self_mask)

    def bwd(st, grad):
        self_mask, other_mask = st.saved[i]
        if ka is not None:
            ka(st, _unbroadcast(grad * self_mask, sa))
        if kb is not None:
            kb(st, _unbroadcast(grad * other_mask, sb))
    return fwd, bwd


# ----------------------------------------------------------------------
# Eager reductions
# ----------------------------------------------------------------------
@_op("sum")
def _sum(n, cx):
    i = n.idx
    (a,) = n.parents
    sa = cx.shape(a)
    ka = cx.sink(a)
    axis = _static(n.meta["axis"], "sum axis")
    keepdims = _static(n.meta["keepdims"], "sum keepdims")

    def fwd(st):
        st.vals[i] = st.vals[a].sum(axis=axis, keepdims=keepdims)

    def bwd(st, grad):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        ka(st, np.broadcast_to(g, sa).copy())
    return fwd, bwd


@_op("max", reads_parents_bwd=True, reads_out_bwd=True)
def _max(n, cx):
    i = n.idx
    (a,) = n.parents
    sa = cx.shape(a)
    ka = cx.sink(a)
    axis = _static(n.meta["axis"], "max axis")
    keepdims = _static(n.meta["keepdims"], "max keepdims")

    def fwd(st):
        st.vals[i] = st.vals[a].max(axis=axis, keepdims=keepdims)

    def bwd(st, grad):
        g = grad
        out = st.vals[i]
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
            out = np.expand_dims(out, axis=axis)
        mask = (st.vals[a] == out)
        counts = mask.sum(axis=axis if axis is not None else None,
                          keepdims=True)
        ka(st, np.broadcast_to(g, sa) * mask / counts)
    return fwd, bwd


# ----------------------------------------------------------------------
# Eager shape manipulation (views)
# ----------------------------------------------------------------------
@_op("reshape", view=True)
def _reshape(n, cx):
    i = n.idx
    (a,) = n.parents
    sa = cx.shape(a)
    ka = cx.sink(a)
    shape = _static(n.meta["shape"], "reshape shape")

    def fwd(st):
        st.vals[i] = st.vals[a].reshape(shape)

    def bwd(st, grad):
        ka(st, grad.reshape(sa))
    return fwd, bwd


@_op("transpose", view=True)
def _transpose(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    axes = _static(n.meta["axes"], "transpose axes")
    inverse = None if axes is None else np.argsort(axes)

    def fwd(st):
        st.vals[i] = st.vals[a].transpose(axes)

    def bwd(st, grad):
        ka(st, grad.transpose(inverse))
    return fwd, bwd


@_op("swapaxes", view=True)
def _swapaxes(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    ax_a = _static(n.meta["a"], "swapaxes axis")
    ax_b = _static(n.meta["b"], "swapaxes axis")

    def fwd(st):
        st.vals[i] = st.vals[a].swapaxes(ax_a, ax_b)

    def bwd(st, grad):
        ka(st, grad.swapaxes(ax_a, ax_b))
    return fwd, bwd


@_op("getitem", view=True)
def _getitem(n, cx):
    i = n.idx
    (a,) = n.parents
    dtype = cx.dtype(a)
    sa = cx.shape(a)
    ka = cx.sink(a)
    index = n.meta["index"]
    if isinstance(index, (tuple, list)) and any(
            isinstance(v, InputRef) for v in index):
        raise CaptureError("getitem with a step-varying compound index")
    get_index = _reader(index)

    def fwd(st):
        st.vals[i] = st.vals[a][get_index(st)]

    def bwd(st, grad):
        full = np.zeros(sa, dtype=dtype)
        np.add.at(full, get_index(st), grad)
        ka(st, full)
    return fwd, bwd


@_op("expand_dims", view=True)
def _expand_dims(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    axis = _static(n.meta["axis"], "expand_dims axis")

    def fwd(st):
        st.vals[i] = np.expand_dims(st.vals[a], axis)

    def bwd(st, grad):
        ka(st, np.squeeze(grad, axis=axis))
    return fwd, bwd


@_op("squeeze", view=True)
def _squeeze(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    axis = _static(n.meta["axis"], "squeeze axis")

    def fwd(st):
        st.vals[i] = np.squeeze(st.vals[a], axis=axis)

    def bwd(st, grad):
        ka(st, np.expand_dims(grad, axis=axis))
    return fwd, bwd


# ----------------------------------------------------------------------
# Eager module-level ops
# ----------------------------------------------------------------------
@_op("concat")
def _concat(n, cx):
    i = n.idx
    parents = n.parents
    axis = _static(n.meta["axis"], "concat axis")
    sizes = [cx.shape(p)[axis] for p in parents]
    offsets = np.cumsum([0] + sizes)
    sinks = [cx.sink(p) for p in parents]
    ndim = len(n.shape)

    def fwd(st):
        st.vals[i] = np.concatenate([st.vals[p] for p in parents], axis=axis)

    def bwd(st, grad):
        for sink, start, stop in zip(sinks, offsets[:-1], offsets[1:]):
            if sink is not None:
                index = [slice(None)] * ndim
                index[axis] = slice(start, stop)
                sink(st, grad[tuple(index)])
    return fwd, bwd


@_op("stack")
def _stack(n, cx):
    i = n.idx
    parents = n.parents
    axis = _static(n.meta["axis"], "stack axis")
    sinks = [cx.sink(p) for p in parents]

    def fwd(st):
        st.vals[i] = np.stack([st.vals[p] for p in parents], axis=axis)

    def bwd(st, grad):
        slabs = np.moveaxis(grad, axis, 0)
        for sink, slab in zip(sinks, slabs):
            if sink is not None:
                sink(st, slab)
    return fwd, bwd


@_op("where")
def _where(n, cx):
    i = n.idx
    a, b = n.parents
    sa, sb = cx.shape(a), cx.shape(b)
    ka, kb = cx.sink(a), cx.sink(b)
    get_cond = _reader(n.meta["cond"])

    def fwd(st):
        st.vals[i] = np.where(get_cond(st), st.vals[a], st.vals[b])

    def bwd(st, grad):
        cond = get_cond(st)
        if ka is not None:
            ka(st, _unbroadcast(grad * cond, sa))
        if kb is not None:
            kb(st, _unbroadcast(grad * (~cond), sb))
    return fwd, bwd


# ----------------------------------------------------------------------
# Fused kernels (repro.nn.fused) — already single nodes; the lowering
# replays the identical kernel expressions over the planned buffers.
# ----------------------------------------------------------------------
@_op("fused.linear", reads_parents_bwd=True, out_ok=True)
def _fused_linear(n, cx):
    i = n.idx
    has_bias = len(n.parents) == 3
    if has_bias:
        x, w, b = n.parents
        sb = cx.shape(b)
        kb = cx.sink(b)
    else:
        x, w = n.parents
        kb = None
    sw = cx.shape(w)
    kx, kw = cx.sink(x), cx.sink(w)
    buf = cx.buf(i)
    if buf is None:
        if has_bias:
            def fwd(st):
                out = st.vals[x] @ st.vals[w]
                np.add(out, st.vals[b], out=out)
                st.vals[i] = out
        else:
            def fwd(st):
                st.vals[i] = st.vals[x] @ st.vals[w]
    else:
        if has_bias:
            def fwd(st):
                np.matmul(st.vals[x], st.vals[w], out=buf)
                np.add(buf, st.vals[b], out=buf)
                st.vals[i] = buf
        else:
            def fwd(st):
                st.vals[i] = np.matmul(st.vals[x], st.vals[w], out=buf)

    def bwd(st, grad):
        wd = st.vals[w]
        if kb is not None:
            kb(st, _unbroadcast(grad, sb))
        if kx is not None:
            kx(st, grad @ np.swapaxes(wd, -1, -2))
        if kw is not None:
            g = grad if grad.ndim > 1 else np.expand_dims(grad, -1)
            kw(st, _unbroadcast(np.swapaxes(st.vals[x], -1, -2) @ g, sw))
    return fwd, bwd


@_op("fused.gelu", ewise_unary=True, reads_parents_bwd=True, out_ok=True)
def _fused_gelu(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    buf = cx.buf(i)

    def fwd(st):
        xd = st.vals[a]
        x2 = xd * xd
        t = np.tanh((xd + (x2 * xd) * 0.044715) * _GELU_C)
        tp = t + 1.0
        if buf is None:
            out = xd * tp
        else:
            out = np.multiply(xd, tp, out=buf)
        np.multiply(out, 0.5, out=out)
        st.vals[i] = out
        st.saved[i] = (x2, t, tp)

    def bwd(st, grad):
        xd = st.vals[a]
        x2, t, tp = st.saved[i]
        gp = grad * 0.5
        ka(st, gp * tp)
        gs = gp
        np.multiply(gs, xd, out=gs)
        np.multiply(gs, 1.0 - t ** 2, out=gs)
        np.multiply(gs, _GELU_C, out=gs)
        ka(st, gs.copy())
        gx3 = gs
        np.multiply(gx3, 0.044715, out=gx3)
        ka(st, gx3 * x2)
        gq = gx3
        np.multiply(gq, xd, out=gq)
        np.multiply(gq, xd, out=gq)
        ka(st, gq)
        ka(st, gq)
    return fwd, bwd


@_op("fused.layer_norm", reads_parents_bwd=True, out_ok=True)
def _fused_layer_norm(n, cx):
    i = n.idx
    x, gamma, beta = n.parents
    sg, sb = cx.shape(gamma), cx.shape(beta)
    kx, kg, kb = cx.sink(x), cx.sink(gamma), cx.sink(beta)
    eps = _static(n.meta["eps"], "layer_norm eps")
    x_shape = cx.shape(x)
    inv = 1.0 / x_shape[-1]
    mean_shape = x_shape[:-1] + (1,)
    buf = cx.buf(i)

    def fwd(st):
        xd = st.vals[x]
        mean = xd.sum(axis=-1, keepdims=True) * inv
        centred = xd - mean
        sq = centred * centred
        var = sq.sum(axis=-1, keepdims=True) * inv
        sd = np.sqrt(var + eps)
        normed = centred / sd
        if buf is None:
            out = normed * st.vals[gamma]
        else:
            out = np.multiply(normed, st.vals[gamma], out=buf)
        np.add(out, st.vals[beta], out=out)
        st.vals[i] = out
        st.saved[i] = (centred, sd, normed)

    def bwd(st, grad):
        centred, sd, normed = st.saved[i]
        if kb is not None:
            kb(st, _unbroadcast(grad, sb))
        gn = grad * st.vals[gamma]
        if kg is not None:
            kg(st, _unbroadcast(grad * normed, sg))
        gc = gn / sd
        gsd = _unbroadcast(-gn * centred / (sd ** 2), mean_shape)
        gsq = np.broadcast_to((gsd * 0.5 / sd) * inv, x_shape)
        gc = gc + gsq * centred
        gc = gc + gsq * centred
        if kx is not None:
            kx(st, gc)
            gsum1 = _unbroadcast(-gc, mean_shape) * inv
            kx(st, np.broadcast_to(gsum1, x_shape))
    return fwd, bwd


@_op("fused.softmax", out_ok=True)
def _fused_softmax(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    axis = _static(n.meta["axis"], "softmax axis")
    s_shape = list(n.shape)
    s_shape[axis] = 1
    s_shape = tuple(s_shape)
    buf = cx.buf(i)

    def fwd(st):
        xd = st.vals[a]
        exps = np.exp(xd - xd.max(axis=axis, keepdims=True))
        s = exps.sum(axis=axis, keepdims=True)
        if buf is None:
            st.vals[i] = exps / s
        else:
            st.vals[i] = np.divide(exps, s, out=buf)
        st.saved[i] = (exps, s)

    def bwd(st, grad):
        exps, s = st.saved[i]
        ge = grad / s
        gs = _unbroadcast(-grad * exps / (s ** 2), s_shape)
        ge = ge + np.broadcast_to(gs, exps.shape)
        ka(st, ge * exps)
    return fwd, bwd


@_op("fused.log_softmax")
def _fused_log_softmax(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    axis = _static(n.meta["axis"], "log_softmax axis")
    lse_shape = list(n.shape)
    lse_shape[axis] = 1
    lse_shape = tuple(lse_shape)

    def fwd(st):
        xd = st.vals[a]
        shifted = xd - xd.max(axis=axis, keepdims=True)
        m2 = shifted.max(axis=axis, keepdims=True)
        e = np.exp(shifted - m2)
        se = e.sum(axis=axis, keepdims=True)
        lse = np.log(se) + m2
        st.vals[i] = shifted - lse
        st.saved[i] = (e, se)

    def bwd(st, grad):
        e, se = st.saved[i]
        gse = _unbroadcast(-grad, lse_shape) / se
        gt = np.broadcast_to(gse, e.shape) * e
        ka(st, grad + gt)
    return fwd, bwd


@_op("fused.normalize", reads_parents_bwd=True)
def _fused_normalize(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    axis = _static(n.meta["axis"], "normalize axis")
    eps = _static(n.meta["eps"], "normalize eps")
    x_shape = cx.shape(a)
    den_shape = list(x_shape)
    den_shape[axis] = 1
    den_shape = tuple(den_shape)

    def fwd(st):
        xd = st.vals[a]
        q = xd * xd
        norm = np.sqrt(q.sum(axis=axis, keepdims=True))
        den = norm + eps
        st.vals[i] = xd / den
        st.saved[i] = (norm, den)

    def bwd(st, grad):
        xd = st.vals[a]
        norm, den = st.saved[i]
        ka(st, grad / den)
        gden = _unbroadcast(-grad * xd / (den ** 2), den_shape)
        gq = np.broadcast_to((gden * 0.5 / norm), x_shape)
        gx = gq * xd
        ka(st, gx)
        ka(st, gx)
    return fwd, bwd


@_op("fused.matmul", reads_parents_bwd=True, out_ok=True)
def _fused_matmul(n, cx):
    i = n.idx
    a, b = n.parents
    sa, sb = cx.shape(a), cx.shape(b)
    ka, kb = cx.sink(a), cx.sink(b)
    buf = cx.buf(i)
    if buf is None:
        def fwd(st):
            st.vals[i] = st.vals[a] @ st.vals[b]
    else:
        def fwd(st):
            st.vals[i] = np.matmul(st.vals[a], st.vals[b], out=buf)

    def bwd(st, grad):
        if ka is not None:
            ka(st, _unbroadcast(grad @ np.swapaxes(st.vals[b], -1, -2), sa))
        if kb is not None:
            g = grad if grad.ndim > 1 else np.expand_dims(grad, -1)
            kb(st, _unbroadcast(np.swapaxes(st.vals[a], -1, -2) @ g, sb))
    return fwd, bwd


@_op("fused.scaled_matmul", reads_parents_bwd=True, out_ok=True)
def _fused_scaled_matmul(n, cx):
    i = n.idx
    a, b = n.parents
    sa, sb = cx.shape(a), cx.shape(b)
    ka, kb = cx.sink(a), cx.sink(b)
    scale = _static(n.meta["scale"], "scaled_matmul scale")
    buf = cx.buf(i)
    if buf is None:
        def fwd(st):
            out = st.vals[a] @ st.vals[b]
            np.multiply(out, scale, out=out)
            st.vals[i] = out
    else:
        def fwd(st):
            np.matmul(st.vals[a], st.vals[b], out=buf)
            np.multiply(buf, scale, out=buf)
            st.vals[i] = buf

    def bwd(st, grad):
        gm = grad * scale
        if ka is not None:
            ka(st, _unbroadcast(gm @ np.swapaxes(st.vals[b], -1, -2), sa))
        if kb is not None:
            g = gm if gm.ndim > 1 else np.expand_dims(gm, -1)
            kb(st, _unbroadcast(np.swapaxes(st.vals[a], -1, -2) @ g, sb))
    return fwd, bwd


@_op("fused.bce_with_logits", reads_parents_bwd=True)
def _fused_bce(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    get_q = _reader(n.meta["target"])

    def fwd(st):
        xd = st.vals[a]
        q = get_q(st)
        mask = xd > 0
        e = np.exp(-np.abs(xd))
        v = e + 1.0
        st.vals[i] = xd * mask + np.log(v) - xd * q
        st.saved[i] = (mask, e, v)

    def bwd(st, grad):
        xd = st.vals[a]
        mask, e, v = st.saved[i]
        ka(st, grad * mask)
        gax = -(grad / v * e)
        ka(st, gax * np.sign(xd))
        ka(st, -grad * get_q(st))
    return fwd, bwd


@_op("fused.l1_mean")
def _fused_l1_mean(n, cx):
    i = n.idx
    (a,) = n.parents
    sa = cx.shape(a)
    ka = cx.sink(a)
    get_t = _reader(n.meta["target"])

    def fwd(st):
        d = st.vals[a] - get_t(st)
        a_arr = np.abs(d)
        st.vals[i] = a_arr.sum() * (1.0 / a_arr.size)
        st.saved[i] = d

    def bwd(st, grad):
        d = st.saved[i]
        ga = np.broadcast_to(grad * (1.0 / d.size), d.shape)
        ka(st, _unbroadcast(ga * np.sign(d), sa))
    return fwd, bwd


@_op("fused.mse_mean")
def _fused_mse_mean(n, cx):
    i = n.idx
    (a,) = n.parents
    sa = cx.shape(a)
    ka = cx.sink(a)
    get_t = _reader(n.meta["target"])

    def fwd(st):
        d = st.vals[a] - get_t(st)
        sq = d * d
        st.vals[i] = sq.sum() * (1.0 / sq.size)
        st.saved[i] = d

    def bwd(st, grad):
        d = st.saved[i]
        gsq = np.broadcast_to(grad * (1.0 / d.size), d.shape)
        gd = gsq * d
        gd = gd + gsq * d
        ka(st, _unbroadcast(gd, sa))
    return fwd, bwd


@_op("fused.nll_mean")
def _fused_nll_mean(n, cx):
    i = n.idx
    (a,) = n.parents
    sa = cx.shape(a)
    ka = cx.sink(a)
    get_onehot = _reader(n.meta["onehot"])

    def fwd(st):
        onehot = get_onehot(st)
        p = st.vals[a] * onehot
        s1 = p.sum(axis=-1)
        st.vals[i] = -(s1.sum() * (1.0 / s1.size))
        st.saved[i] = (s1.shape, p.shape)

    def bwd(st, grad):
        s1_shape, p_shape = st.saved[i]
        count = 1
        for dim in s1_shape:
            count *= dim
        gs1 = np.broadcast_to((-grad) * (1.0 / count), s1_shape)
        gp = np.broadcast_to(np.expand_dims(gs1, -1), p_shape)
        ka(st, gp * get_onehot(st))
    return fwd, bwd


@_op("fused.unification_loss", reads_parents_bwd=True)
def _fused_unification(n, cx):
    i = n.idx
    (a,) = n.parents
    sa = cx.shape(a)
    ka = cx.sink(a)
    get_q = _reader(n.meta["q"])
    alpha = _static(n.meta["alpha"], "unification alpha")

    def fwd(st):
        xd = st.vals[a]
        q = get_q(st)
        clipped = np.clip(xd, -60, 60)
        eneg = np.exp(-clipped)
        epos = np.exp(clipped)
        u = np.where(xd >= 0, 1.0 / (1.0 + eneg), epos / (1.0 + epos))
        mask = xd > 0
        e = np.exp(-np.abs(xd))
        v = e + 1.0
        bce = xd * mask + np.log(v) - xd * q
        d = q - u
        gap = np.abs(d)
        m1 = gap * alpha
        m3 = u * (1.0 - alpha)
        pos = q > 0
        w = np.where(pos, m1 * bce, m3 * bce)
        s1 = w.sum(axis=-1)
        st.vals[i] = s1.sum() * (1.0 / s1.size)
        st.saved[i] = (u, mask, e, v, bce, d, m1, m3, pos,
                       s1.shape, w.shape)

    def bwd(st, grad):
        xd = st.vals[a]
        q = get_q(st)
        (u, mask, e, v, bce, d, m1, m3, pos,
         s1_shape, w_shape) = st.saved[i]
        count = 1
        for dim in s1_shape:
            count *= dim
        gs1 = np.broadcast_to(grad * (1.0 / count), s1_shape)
        gw = np.broadcast_to(np.expand_dims(gs1, -1), w_shape)
        gm2 = _unbroadcast(gw * pos, w_shape)
        gm4 = _unbroadcast(gw * ~pos, w_shape)
        gbce = gm2 * m1
        gd = (gm2 * bce) * alpha * np.sign(d)
        gu = -gd
        gbce = gbce + gm4 * m3
        gu = gu + (gm4 * bce) * (1.0 - alpha)
        ka(st, gu * u * (1.0 - u))
        ka(st, gbce * mask)
        gax = -(gbce / v * e)
        ka(st, gax * np.sign(xd))
        ka(st, -gbce * q)
    return fwd, bwd


@_op("fused.split_heads", view=True)
def _fused_split_heads(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    b, s, dim = cx.shape(a)
    num_heads = _static(n.meta["num_heads"], "split_heads num_heads")
    head_dim = _static(n.meta["head_dim"], "split_heads head_dim")

    def fwd(st):
        st.vals[i] = (st.vals[a].reshape(b, s, num_heads, head_dim)
                      .swapaxes(1, 2))

    def bwd(st, grad):
        ka(st, grad.swapaxes(1, 2).reshape(b, s, dim))
    return fwd, bwd


@_op("fused.merge_heads", out_ok=True)
def _fused_merge_heads(n, cx):
    i = n.idx
    (a,) = n.parents
    ka = cx.sink(a)
    b, h, s, hd = cx.shape(a)
    buf = cx.buf(i)
    buf4 = None if buf is None else buf.reshape(b, s, h, hd)
    if buf is None:
        def fwd(st):
            st.vals[i] = st.vals[a].swapaxes(1, 2).reshape(b, s, h * hd)
    else:
        def fwd(st):
            # Pure data movement into the planned buffer: identical
            # values to the reshape-copy of the non-contiguous view.
            np.copyto(buf4, st.vals[a].swapaxes(1, 2))
            st.vals[i] = buf

    def bwd(st, grad):
        ka(st, grad.reshape(b, s, h, hd).swapaxes(1, 2))
    return fwd, bwd
