"""Loss functions, including the two losses specific to AIRCHITECT v2.

* :class:`InfoNCELoss` — the balanced InfoNCE variant of Eq. (1): for each
  anchor, positives are same-UOV-bucket samples in the batch and negatives
  are different-bucket samples; temperature tau = 0.4 in the paper.
* :class:`UnificationLoss` — Eq. (3)/(4): a generalized-focal-style weighted
  binary cross-entropy over predicted vs. ground-truth Unified Ordinal
  Vectors, with alpha = 0.75 and gamma = 1 empirically set by the paper.

Plus the standard losses used by baselines and the stage-1 performance
predictor (L1/MSE/cross-entropy/BCE).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import fused
from .module import Module
from .tensor import Tensor, as_tensor, where

__all__ = [
    "mse_loss",
    "l1_loss",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "InfoNCELoss",
    "UnificationLoss",
]


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = as_tensor(target)
    if fused.fused_enabled() and isinstance(pred, Tensor):
        return fused.mse_mean(pred, target.data)
    diff = pred - target.detach()
    return (diff * diff).mean()


def l1_loss(pred: Tensor, target) -> Tensor:
    """Mean absolute error — the paper's performance-prediction loss L_perf."""
    target = as_tensor(target)
    if fused.fused_enabled() and isinstance(pred, Tensor):
        return fused.l1_mean(pred, target.data)
    return (pred - target.detach()).abs().mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean categorical cross-entropy from logits and integer class indices."""
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = F.log_softmax(logits, axis=-1)
    onehot = F.one_hot(targets, logits.shape[-1])
    if fused.fused_enabled():
        return fused.nll_mean(log_probs, onehot)
    return -(log_probs * Tensor(onehot)).sum(axis=-1).mean()


def _softplus(x: Tensor) -> Tensor:
    """Numerically-stable log(1 + exp(x)) = relu(x) + log(1 + exp(-|x|))."""
    return x.relu() + ((-x.abs()).exp() + 1.0).log()


def binary_cross_entropy_with_logits(logits: Tensor, targets) -> Tensor:
    """Elementwise stable BCE from logits: softplus(x) - x * q.

    Returns the *elementwise* loss tensor (caller reduces), because the
    unification loss needs per-element weighting before reduction.
    """
    targets = as_tensor(targets).detach()
    if fused.fused_enabled() and isinstance(logits, Tensor):
        return fused.bce_with_logits(logits, targets.data)
    return _softplus(logits) - logits * targets


class InfoNCELoss(Module):
    """Balanced InfoNCE contrastive loss over a batch of embeddings (Eq. 1).

    For an anchor ``p`` with embedding ``lambda_p``::

        L_C = -log(  sum_{p+} exp(l_p . l_p+ / tau)
                   / (sum_{p+} exp(l_p . l_p+ / tau) + sum_{p-} exp(l_p . l_p- / tau)) )

    Positives share the anchor's class label (same UOV bucket pair in
    stage-1 training); negatives do not.  Anchors with no positive in the
    batch contribute nothing.  Embeddings are L2-normalised internally so
    the dot product is a cosine similarity.
    """

    def __init__(self, temperature: float = 0.4):
        super().__init__()
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def forward(self, embeddings: Tensor, labels: np.ndarray) -> Tensor:
        labels = np.asarray(labels)
        n = embeddings.shape[0]
        if labels.shape[0] != n:
            raise ValueError("labels must have one entry per embedding")

        z = F.normalize(embeddings, axis=-1)
        sim = (z @ z.transpose()) * (1.0 / self.temperature)

        # Stability shift: the positive/total ratio is invariant to a
        # per-row constant, so subtract the detached row max.
        sim = sim - sim.max(axis=-1, keepdims=True).detach()
        exp_sim = sim.exp()

        eye = np.eye(n, dtype=bool)
        same = labels[:, None] == labels[None, :]
        pos_mask = (same & ~eye).astype(np.float64)
        all_mask = (~eye).astype(np.float64)

        pos_sum = (exp_sim * Tensor(pos_mask)).sum(axis=-1)
        all_sum = (exp_sim * Tensor(all_mask)).sum(axis=-1)

        has_pos = pos_mask.sum(axis=-1) > 0
        if not has_pos.any():
            # Degenerate batch (every sample its own class): zero loss that
            # still participates in the graph.
            return (embeddings * 0.0).sum()

        ratio = (pos_sum / (all_sum + 1e-12)).clip(1e-12, 1.0)
        per_anchor = -(ratio.log())
        weights = has_pos.astype(np.float64) / has_pos.sum()
        return (per_anchor * Tensor(weights)).sum()


class UnificationLoss(Module):
    """The paper's Unification Loss (Eq. 3) for UOV heads.

    Given predicted UOV logits ``x`` (u = sigmoid(x)) and ground-truth UOV
    ``q`` in [0, 1]::

        L_o = sum_i  alpha * |q_i - u_i|^gamma * BCE(u_i, q_i)   if q_i > 0
                     (1 - alpha) * u_i^gamma    * BCE(u_i, q_i)   otherwise

    The |q - u|^gamma factor focusses training on buckets whose prediction is
    far from the ground truth, and the u^gamma factor on confidently-wrong
    zero buckets — penalising predictions far from the true bucket more
    heavily, exactly as described in §III-D.
    """

    def __init__(self, alpha: float = 0.75, gamma: float = 1.0):
        super().__init__()
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self.gamma = gamma

    def forward(self, logits: Tensor, target_uov) -> Tensor:
        q = as_tensor(target_uov).detach()
        if fused.fused_enabled() and self.gamma == 1.0 \
                and isinstance(logits, Tensor):
            return fused.unification_loss(logits, q.data, self.alpha)
        u = logits.sigmoid()
        bce = binary_cross_entropy_with_logits(logits, q)

        gap = (q - u).abs()
        if self.gamma != 1.0:
            pos_weight = gap ** self.gamma
            neg_weight = u ** self.gamma
        else:
            pos_weight = gap
            neg_weight = u

        positive = q.data > 0
        weighted = where(positive,
                         pos_weight * self.alpha * bce,
                         neg_weight * (1.0 - self.alpha) * bce)
        # Sum over the K buckets, mean over batch/heads.
        per_sample = weighted.sum(axis=-1)
        return per_sample.mean()
