"""Stack-backed execution-mode switches for the ``repro.nn`` runtime.

Both execution toggles — :func:`repro.nn.fused_kernels` and
:func:`repro.nn.graph_capture` — are instances of :class:`Switch`: a
boolean whose current value is the top of a stack of scoped overrides.
Entering a scope pushes a value, leaving it pops — and the scope object
is exception-safe, so a test (or a crashed fit) can never leak a
disabled fast path into the rest of the process.  ``tests/conftest.py``
additionally snapshots and restores every switch around each test.
"""

from __future__ import annotations

__all__ = ["Switch"]


class _Scope:
    """One pushed override; usable as a context manager."""

    __slots__ = ("_switch", "_token")

    def __init__(self, switch: "Switch", value: bool):
        self._switch = switch
        switch._stack.append(bool(value))
        self._token = len(switch._stack)

    def __enter__(self) -> "_Scope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Pop this override (and anything pushed above it) exactly once."""
        stack = self._switch._stack
        if self._token and len(stack) >= self._token > 1:
            del stack[self._token - 1:]
        self._token = 0


class Switch:
    """A named boolean toggle with scoped, exception-safe overrides.

    ``switch.enabled`` reads the innermost value; calling the switch
    returns a scope object that pushes an override and pops it on
    ``__exit__`` (or :meth:`_Scope.close`), even when the body raises.
    """

    __slots__ = ("name", "_stack")

    def __init__(self, default: bool, name: str = "switch"):
        self.name = name
        self._stack: list[bool] = [bool(default)]

    @property
    def enabled(self) -> bool:
        return self._stack[-1]

    def __call__(self, enabled: bool = True) -> _Scope:
        return _Scope(self, enabled)

    def snapshot(self) -> tuple[bool, ...]:
        """The full override stack (for save/restore around tests)."""
        return tuple(self._stack)

    def restore(self, state: tuple[bool, ...]) -> None:
        self._stack[:] = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Switch({self.name}={self.enabled}, depth={len(self._stack)})"
