"""Dataset / DataLoader utilities for numpy-array training data.

Keeps the familiar iteration protocol (``for xb, yb in loader``) while
staying purely numpy: a :class:`ArrayDataset` is a tuple of aligned arrays,
and :class:`DataLoader` yields batches of those arrays (not Tensors — the
training loop decides what becomes a Tensor, since e.g. integer labels stay
numpy).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from . import fused

__all__ = ["ArrayDataset", "DataLoader", "train_test_split"]


class ArrayDataset:
    """Aligned numpy arrays, indexed along their first axis."""

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("ArrayDataset needs at least one array")
        n = len(arrays[0])
        for arr in arrays:
            if len(arr) != n:
                raise ValueError("all arrays must share the same first dimension")
        self.arrays = tuple(np.asarray(a) for a in arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index) -> tuple[np.ndarray, ...]:
        return tuple(arr[index] for arr in self.arrays)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """New dataset containing the given rows."""
        return ArrayDataset(*(arr[indices] for arr in self.arrays))


class DataLoader:
    """Mini-batch iterator over an :class:`ArrayDataset`.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Rows per batch.
    shuffle:
        Reshuffle before every epoch using ``rng``.
    rng:
        Generator used for shuffling; required when ``shuffle`` is True.
    drop_last:
        Drop the final short batch (useful for contrastive batches, which
        need enough samples to find positives).
    fast:
        Use the zero-copy batch path: the per-epoch shuffle permutation is
        applied once per array (one gather per epoch), then batches are
        contiguous *views* of the gathered arrays instead of per-batch
        fancy-index copies.  Batch values and rng consumption are identical
        to the slow path (``arr[order][a:b] == arr[order[a:b]]``); views
        are marked read-only, so a consumer that mutated its batches fails
        loudly instead of silently corrupting neighbours.  ``None``
        (default) follows the global fused-fast-path switch.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int,
                 shuffle: bool = False, rng: np.random.Generator | None = None,
                 drop_last: bool = False, fast: bool | None = None):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if shuffle and rng is None:
            raise ValueError("shuffle=True requires an rng")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng
        self.drop_last = drop_last
        self.fast = fast

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        n = len(self.dataset)
        fast = self.fast if self.fast is not None else fused.fused_enabled()
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        if not fast:
            for start in range(0, stop, self.batch_size):
                yield self.dataset[order[start:start + self.batch_size]]
            return
        if self.shuffle:
            arrays = tuple(arr[order] for arr in self.dataset.arrays)
        else:
            arrays = self.dataset.arrays
        for start in range(0, stop, self.batch_size):
            batch = []
            for arr in arrays:
                view = arr[start:start + self.batch_size]
                view.flags.writeable = False
                batch.append(view)
            yield tuple(batch)


def train_test_split(dataset: ArrayDataset, test_fraction: float,
                     rng: np.random.Generator) -> tuple[ArrayDataset, ArrayDataset]:
    """Random split into (train, test) with ``test_fraction`` held out."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = len(dataset)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)
