"""Core neural-network layers: Linear, LayerNorm, Embedding, Dropout, activations.

Every layer takes an explicit ``numpy.random.Generator`` for weight
initialisation so model construction is reproducible.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import fused
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "LayerNorm", "Embedding", "Dropout", "ReLU", "GELU", "Tanh", "Sigmoid", "Identity"]


class Linear(Module):
    """Affine map ``y = x W + b`` with W of shape (in_features, out_features)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if fused.fused_enabled() and isinstance(x, Tensor) and x.data.ndim >= 2:
            return fused.linear(x, self.weight, self.bias)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learnable affine."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        if fused.fused_enabled() and isinstance(x, Tensor):
            return fused.layer_norm(x, self.gamma, self.beta, self.eps)
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        var = (centred * centred).mean(axis=-1, keepdims=True)
        normed = centred / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal((num_embeddings, dim), rng, std=0.02))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.min() < 0 or indices.max() >= self.num_embeddings:
            raise IndexError(f"embedding index out of range [0, {self.num_embeddings})")
        return self.weight[indices]


class Dropout(Module):
    """Inverted dropout; identity when in eval mode or p == 0."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
