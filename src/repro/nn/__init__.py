"""``repro.nn`` — a compact numpy deep-learning substrate.

Implements everything the AIRCHITECT v2 reproduction needs from a DL
framework: an autograd :class:`Tensor`, transformer layers, losses
(including the paper's InfoNCE and Unification losses), optimisers and data
pipelines.  See DESIGN.md §2 for why this substitutes for PyTorch.
"""

from . import functional, fused, graph, init
from .attention import (DownsampleUnit, FeedForward, MultiHeadSelfAttention,
                        TransformerBlock, TransformerStack, UpsampleUnit)
from .fused import fused_enabled, fused_kernels
from .graph import graph_capture, graph_enabled
from .data import ArrayDataset, DataLoader, train_test_split
from .layers import (Dropout, Embedding, GELU, Identity, LayerNorm, Linear,
                     ReLU, Sigmoid, Tanh)
from .losses import (InfoNCELoss, UnificationLoss,
                     binary_cross_entropy_with_logits, cross_entropy,
                     l1_loss, mse_loss)
from .module import Module, ModuleList, Parameter, Sequential
from .optim import (Adam, AdamW, LRScheduler, Optimizer, SGD, clip_grad_norm,
                    cosine_schedule, step_schedule, warmup_cosine_schedule)
from .serialization import load_module, save_module
from .tensor import Tensor, as_tensor, concat, no_grad, stack, where

__all__ = [
    "Tensor", "as_tensor", "concat", "stack", "where", "no_grad",
    "functional", "fused", "fused_enabled", "fused_kernels", "init",
    "graph", "graph_capture", "graph_enabled",
    "Module", "ModuleList", "Parameter", "Sequential",
    "Linear", "LayerNorm", "Embedding", "Dropout",
    "ReLU", "GELU", "Tanh", "Sigmoid", "Identity",
    "MultiHeadSelfAttention", "FeedForward", "TransformerBlock",
    "TransformerStack", "DownsampleUnit", "UpsampleUnit",
    "mse_loss", "l1_loss", "cross_entropy",
    "binary_cross_entropy_with_logits", "InfoNCELoss", "UnificationLoss",
    "Optimizer", "SGD", "Adam", "AdamW", "LRScheduler", "clip_grad_norm",
    "cosine_schedule", "step_schedule", "warmup_cosine_schedule",
    "ArrayDataset", "DataLoader", "train_test_split",
    "save_module", "load_module",
]
