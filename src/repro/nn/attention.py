"""Multi-head self-attention and the transformer blocks of AIRCHITECT v2.

The paper (Fig. 2) uses an encoder and a decoder with *identical and
complementary* structures: L stacked blocks of {multi-head self-attention,
add & norm, linear (feed-forward)}, plus a **downsampling** unit on the
encoder side and an **upsampling** unit on the decoder side, following the
original transformer formulation [Vaswani 2017].

Shapes follow the convention ``(batch, seq, dim)``.
"""

from __future__ import annotations

import math

import numpy as np

from . import functional as F
from . import fused
from .layers import Dropout, GELU, LayerNorm, Linear
from .module import Module, ModuleList, Sequential
from .tensor import Tensor

__all__ = [
    "MultiHeadSelfAttention",
    "FeedForward",
    "TransformerBlock",
    "DownsampleUnit",
    "UpsampleUnit",
    "TransformerStack",
]


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` parallel heads."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim={dim} must be divisible by num_heads={num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self.attn_dropout = Dropout(dropout, rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (batch, seq, dim) -> (batch, heads, seq, head_dim)
        if fused.fused_enabled():
            return fused.split_heads(x, self.num_heads, self.head_dim)
        return x.reshape(batch, seq, self.num_heads, self.head_dim).swapaxes(1, 2)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)

        k_t = k.swapaxes(-1, -2)
        scale = 1.0 / math.sqrt(self.head_dim)
        if fused.fused_enabled():
            scores = fused.scaled_matmul(q, k_t, scale)
        else:
            scores = (q @ k_t) * scale
        attn = F.softmax(scores, axis=-1)
        attn = self.attn_dropout(attn)
        if fused.fused_enabled():
            context = fused.matmul(attn, v)  # (batch, heads, seq, head_dim)
        else:
            context = attn @ v


        if fused.fused_enabled():
            merged = fused.merge_heads(context)
        else:
            merged = context.swapaxes(1, 2).reshape(batch, seq, self.dim)
        return self.out_proj(merged)


class FeedForward(Module):
    """Position-wise feed-forward network (the 'linear' unit in Fig. 2)."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        self.net = Sequential(
            Linear(dim, hidden_dim, rng),
            GELU(),
            Dropout(dropout, rng),
            Linear(hidden_dim, dim, rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class TransformerBlock(Module):
    """One {self-attention, add & norm, feed-forward, add & norm} block."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 ffn_mult: int = 4, dropout: float = 0.0):
        super().__init__()
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng, dropout=dropout)
        self.norm1 = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_mult * dim, rng, dropout=dropout)
        self.norm2 = LayerNorm(dim)

    def forward(self, x: Tensor) -> Tensor:
        x = self.norm1(x + self.attn(x))
        x = self.norm2(x + self.ffn(x))
        return x


class DownsampleUnit(Module):
    """Encoder-side dimensionality reduction: (batch, seq, dim) -> (batch, out_dim).

    Flattens the token sequence and projects it to the latent embedding
    dimension; this is the funnel into the intermediate representation that
    stage-1 contrastive learning shapes.
    """

    def __init__(self, seq_len: int, dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.seq_len = seq_len
        self.dim = dim
        self.proj = Linear(seq_len * dim, out_dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        return self.proj(x.reshape(batch, self.seq_len * self.dim))


class UpsampleUnit(Module):
    """Decoder-side expansion: (batch, in_dim) -> (batch, seq, dim).

    Inverse of :class:`DownsampleUnit`: lifts a latent point back into a
    token sequence the decoder's self-attention blocks can process.
    """

    def __init__(self, in_dim: int, seq_len: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.seq_len = seq_len
        self.dim = dim
        self.proj = Linear(in_dim, seq_len * dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        return self.proj(x).reshape(batch, self.seq_len, self.dim)


class TransformerStack(Module):
    """``num_layers`` stacked :class:`TransformerBlock` modules."""

    def __init__(self, num_layers: int, dim: int, num_heads: int,
                 rng: np.random.Generator, ffn_mult: int = 4, dropout: float = 0.0):
        super().__init__()
        self.blocks = ModuleList([
            TransformerBlock(dim, num_heads, rng, ffn_mult=ffn_mult, dropout=dropout)
            for _ in range(num_layers)
        ])

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        return x
