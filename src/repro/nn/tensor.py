"""A small reverse-mode automatic differentiation engine over numpy arrays.

This module provides the :class:`Tensor` class used by every neural-network
component in the reproduction.  It implements the subset of operations needed
by the AIRCHITECT v2 stack (transformer encoder/decoder, contrastive and
unification losses) with full broadcasting support, and is validated against
central finite differences in ``tests/nn/test_autograd.py``.

Design notes
------------
* Gradients are accumulated into ``Tensor.grad`` (a plain ``numpy.ndarray``)
  by :meth:`Tensor.backward`, which walks the recorded computation graph in
  reverse topological order.
* The DFS post-order used by ``backward`` is part of the numeric contract
  (it fixes the arrival order of gradient contributions into shared
  tensors); the fused kernels in :mod:`repro.nn.fused` collapse
  single-input op chains, which occupy a contiguous run of that order, so
  fusion changes neither the values nor the accumulation order of any
  gradient.
* Broadcasting in binary operations is handled by summing the upstream
  gradient over the broadcast axes (:func:`_unbroadcast`).
* A module-level ``no_grad`` context manager disables graph recording for
  inference-time code paths.
* Optimisers may pin a preallocated gradient buffer onto a tensor
  (``_grad_buf``); accumulation then happens in place into that buffer, so
  flat-arena optimisers see every gradient land in one contiguous array
  without per-step allocations (see :class:`repro.nn.optim.Optimizer`).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor", "concat", "stack", "where"]


_GRAD_ENABLED = [True]

# Active graph tracer (see repro.nn.graph).  While the top of this stack
# is not None, every Tensor produced through ``Tensor._make`` is also
# reported to the tracer — the op still executes eagerly, so a trace that
# fails to capture costs nothing and changes no values.
_TRACER = [None]


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient graph construction."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


@contextlib.contextmanager
def tracing(tracer):
    """Report every op built under this scope to ``tracer`` (graph capture)."""
    _TRACER.append(tracer)
    try:
        yield tracer
    finally:
        _TRACER.pop()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``.

    ``shape`` is the original operand shape; the returned array has exactly
    that shape so it can be accumulated into the operand's gradient.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(data, dtype=None) -> np.ndarray:
    if isinstance(data, Tensor):
        data = data.data
    arr = np.asarray(data, dtype=dtype)
    if arr.dtype.kind in "iub":  # promote integers/bools to float for autograd
        arr = arr.astype(np.float64)
    return arr


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Integer inputs are promoted to
        float64 so that gradients are always well-defined.
    requires_grad:
        If True, operations involving this tensor are recorded so that
        :meth:`backward` can compute ``d(output)/d(this)``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_grad_buf", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._grad_buf: np.ndarray | None = None
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None] | None,
              op: str | None = None, meta: dict | None = None) -> "Tensor":
        """Create a result tensor, recording the graph edge if needed.

        ``op``/``meta`` name the operation for graph capture: while a
        tracer is installed (see :func:`tracing`), each result is also
        recorded as an IR node so :mod:`repro.nn.graph` can compile and
        replay the step without re-dispatching through Python.
        """
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        tracer = _TRACER[-1]
        if tracer is not None:
            tracer.record(out, op, parents, meta)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            buf = self._grad_buf
            if buf is not None and buf.shape == grad.shape:
                # Flat-arena fast path: land the gradient in the optimiser's
                # preallocated view (same values as the astype copy below).
                np.copyto(buf, grad)
                self.grad = buf
            else:
                self.grad = grad.astype(self.data.dtype, copy=True)
        elif self.grad is self._grad_buf:
            # In-place accumulation is bit-identical to ``grad + grad`` and
            # keeps the arena view bound.
            np.add(self.grad, grad, out=self.grad)
        else:
            self.grad = self.grad + grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Accumulate a gradient the caller hands over outright.

        Same values as :meth:`_accumulate`, but the first arrival adopts
        ``grad`` without the defensive copy.  Only the fused kernels call
        this, for arrays they freshly allocated (never a view of a live
        array) and no longer touch — intermediate tensors receive ~40
        first-arrivals per training step, so eliding those copies is a
        measurable win.
        """
        if self.grad is None:
            buf = self._grad_buf
            if buf is not None and buf.shape == grad.shape:
                np.copyto(buf, grad)
                self.grad = buf
            else:
                self.grad = grad
        elif self.grad is self._grad_buf:
            np.add(self.grad, grad, out=self.grad)
        else:
            self.grad = self.grad + grad

    def backward(self, gradient: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        gradient:
            Upstream gradient.  Defaults to ones (scalar outputs typically
            call ``loss.backward()`` with no argument).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if gradient is None:
            gradient = np.ones_like(self.data)
        else:
            gradient = np.asarray(gradient, dtype=self.data.dtype)
            gradient = np.broadcast_to(gradient, self.data.shape).copy()

        # Reverse topological order over the graph reachable from self.
        # NOTE: the *specific* post-order produced by this DFS (parents
        # pushed in declaration order, explored LIFO) is part of the
        # numeric contract: it fixes the arrival order of gradient
        # contributions into shared tensors, and floating-point addition
        # is not associative.  The fused kernels in :mod:`repro.nn.fused`
        # collapse single-input chains, which provably occupy a contiguous
        # run of this post-order, so fusing them does not reorder any
        # other node's firing slot.  Leaf tensors never fire, so they are
        # not collected.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            if node._backward is not None:
                stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(gradient)
        for node in reversed(topo):
            if node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward, "sub")

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(out_data, (self,), backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor ** only supports scalar exponents")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, "pow",
                            {"exponent": exponent})

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    # (..., n) @ (n,) -> (...,): grad_a = grad[..., None] * b
                    ga = np.expand_dims(grad, -1) * b
                else:
                    ga = grad @ np.swapaxes(b, -1, -2)
                if a.ndim == 1 and ga.ndim > 1:
                    ga = ga.sum(axis=tuple(range(ga.ndim - 1)))
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    gb = np.multiply.outer(a, grad) if grad.ndim == 1 else a[:, None] * grad
                else:
                    g = grad if grad.ndim > 1 else np.expand_dims(grad, -1)
                    a_t = np.swapaxes(a, -1, -2)
                    gb = a_t @ g
                    if b.ndim == 1:
                        gb = gb.squeeze(-1)
                        gb = gb.sum(axis=tuple(range(gb.ndim - 1))) if gb.ndim > 1 else gb
                other._accumulate(_unbroadcast(gb, other.shape))

        return Tensor._make(out_data, (self, other), backward, "matmul")

    def __rmatmul__(self, other) -> "Tensor":
        return as_tensor(other).__matmul__(self)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward, "sqrt")

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward, "abs")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic function.
        out_data = np.where(self.data >= 0,
                            1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60))),
                            np.exp(np.clip(self.data, -60, 60))
                            / (1.0 + np.exp(np.clip(self.data, -60, 60))))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward, "relu")

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside the range."""
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward, "clip",
                            {"low": low, "high": high})

    def maximum(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = np.maximum(self.data, other.data)
        # Ties split the gradient evenly, matching the subgradient convention.
        self_mask = (self.data > other.data) + 0.5 * (self.data == other.data)
        other_mask = 1.0 - self_mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * self_mask, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * other_mask, other.shape))

        return Tensor._make(out_data, (self, other), backward, "maximum")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward, "sum",
                            {"axis": axis, "keepdims": keepdims})

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out = np.expand_dims(out, axis=axis)
            mask = (self.data == out)
            # Split gradient across ties to keep the estimator unbiased.
            counts = mask.sum(axis=axis if axis is not None else None, keepdims=True)
            self._accumulate(np.broadcast_to(g, self.shape) * mask / counts)

        return Tensor._make(out_data, (self,), backward, "max",
                            {"axis": axis, "keepdims": keepdims})

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(in_shape))

        return Tensor._make(out_data, (self,), backward, "reshape",
                            {"shape": tuple(out_data.shape)})

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        out_data = self.data.transpose(axes)
        if axes is None:
            inverse = None
        else:
            inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward, "transpose",
                            {"axes": None if axes is None else tuple(axes)})

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out_data = self.data.swapaxes(a, b)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.swapaxes(a, b))

        return Tensor._make(out_data, (self,), backward, "swapaxes",
                            {"a": a, "b": b})

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward, "getitem",
                            {"index": index})

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward, "expand_dims",
                            {"axis": axis})

    def squeeze(self, axis: int) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.expand_dims(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward, "squeeze",
                            {"axis": axis})


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op for existing tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward, "concat", {"axis": axis})


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for tensor, slab in zip(tensors, slabs):
            if tensor.requires_grad:
                tensor._accumulate(slab)

    return Tensor._make(out_data, tensors, backward, "stack", {"axis": axis})


def where(condition, a, b) -> Tensor:
    """Elementwise select: ``condition ? a : b``.

    ``condition`` is data-only (no gradient flows through it).
    """
    cond = np.asarray(condition.data if isinstance(condition, Tensor) else condition, dtype=bool)
    a = as_tensor(a)
    b = as_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * (~cond), b.shape))

    return Tensor._make(out_data, (a, b), backward, "where", {"cond": cond})
