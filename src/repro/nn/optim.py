"""Optimisers and learning-rate schedules.

Adam is the workhorse for every trained model in the reproduction; SGD is
kept for baselines and tests.  Schedules are deliberately simple function
objects (callable epoch -> lr multiplier) attached via :class:`LRScheduler`.

Flat arenas
-----------
By default every optimiser packs its parameters into one contiguous
float64 buffer (and registers a matching contiguous *gradient* buffer on
each parameter, which ``Tensor._accumulate`` fills in place).  ``step``,
``zero_grad`` and gradient clipping then run as a handful of whole-arena
vectorised ops instead of a Python loop over dozens of small arrays.  The
arena update applies the *same elementwise expressions* as the per-
parameter loop, so results are bit-identical; whenever the fast path's
preconditions fail (a parameter is frozen, received no gradient this
step, or had ``.data``/``.grad`` rebound externally), the optimiser falls
back to the per-parameter loop with the exact legacy semantics (skipped
moments for gradient-less parameters included).  The checkpoint format is
unchanged: ``state_dict`` still returns per-parameter arrays, and
snapshots written by the pre-arena optimisers load bit-identically.

``fused.fused_kernels(False)`` disables arena construction entirely, which
is the frozen reference path used by ``benchmarks/bench_train_step.py``.
"""

from __future__ import annotations

import math

import numpy as np

from . import fused
from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "LRScheduler",
           "cosine_schedule", "step_schedule", "warmup_cosine_schedule",
           "clip_grad_norm"]


def _grad_norm(grads: list[np.ndarray]) -> float:
    """Global L2 norm, accumulated per-array (the numeric contract: one
    reduction per parameter, summed in parameter order)."""
    return math.sqrt(sum(float((g * g).sum()) for g in grads))


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Clip the global gradient L2 norm in place; returns the pre-clip norm."""
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = _grad_norm(grads)
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in parameters:
            if p.grad is None:
                continue
            if p.grad is p._grad_buf:
                # Arena view: scale in place so the flat buffer stays bound.
                np.multiply(p.grad, scale, out=p.grad)
            else:
                p.grad = p.grad * scale
    return total


class _FlatArena:
    """Contiguous parameter + gradient storage with per-parameter views.

    Parameter data is moved into one float64 buffer (``flat_params``) and
    each ``Parameter.data`` is rebound to a reshaped view of it; a second
    buffer (``flat_grads``) is registered as each parameter's
    ``_grad_buf`` so backward accumulation lands contiguously.  External
    code may rebind ``.data`` (e.g. a checkpoint load); :meth:`sync`
    detects that and re-packs the current values, so the arena is
    self-healing rather than a correctness hazard.
    """

    def __init__(self, parameters: list[Parameter]):
        self.parameters = parameters
        sizes = [p.data.size for p in parameters]
        self.size = int(sum(sizes))
        self.flat_params = np.empty(self.size, dtype=np.float64)
        self.flat_grads = np.zeros(self.size, dtype=np.float64)
        self.param_views: list[np.ndarray] = []
        self.grad_views: list[np.ndarray] = []
        offset = 0
        for p, n in zip(parameters, sizes):
            pv = self.flat_params[offset:offset + n].reshape(p.data.shape)
            pv[...] = p.data
            p.data = pv
            gv = self.flat_grads[offset:offset + n].reshape(p.data.shape)
            p._grad_buf = gv
            self.param_views.append(pv)
            self.grad_views.append(gv)
            offset += n

    @staticmethod
    def build(parameters: list[Parameter]) -> "_FlatArena | None":
        """An arena for ``parameters``, or None when ineligible.

        Requires the fused fast path to be enabled, at least one
        parameter, all-float64 data, and no duplicate parameters (views
        would overlap).
        """
        if not fused.fused_enabled() or not parameters:
            return None
        if any(p.data.dtype != np.float64 for p in parameters):
            return None
        if len({id(p) for p in parameters}) != len(parameters):
            return None
        return _FlatArena(parameters)

    def sync(self) -> None:
        """Re-adopt parameters whose ``.data``/``_grad_buf`` were rebound."""
        for p, pv, gv in zip(self.parameters, self.param_views,
                             self.grad_views):
            if p.data is not pv:
                pv[...] = p.data
                p.data = pv
            if p._grad_buf is not gv:
                p._grad_buf = gv

    def grads_ready(self) -> bool:
        """True when every parameter's gradient landed in its arena view
        this step (the whole-arena update is then exactly the per-parameter
        loop, elementwise)."""
        return all(p.requires_grad and p.grad is gv
                   for p, gv in zip(self.parameters, self.grad_views))

    def zeros(self) -> tuple[np.ndarray, list[np.ndarray]]:
        """A zeroed flat buffer plus per-parameter views (moment storage)."""
        flat = np.zeros(self.size, dtype=np.float64)
        views = []
        offset = 0
        for p in self.parameters:
            n = p.data.size
            views.append(flat[offset:offset + n].reshape(p.data.shape))
            offset += n
        return flat, views


class Optimizer:
    """Base optimiser holding a parameter list and a learning rate."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr
        self._arena = _FlatArena.build(self.parameters)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Arena-aware global-norm clipping over this optimiser's params.

        The norm itself is accumulated per parameter (same reductions, same
        order as :func:`clip_grad_norm`); only the rescale is collapsed to
        one whole-arena multiply when every gradient is resident.
        """
        arena = self._arena
        if arena is not None:
            arena.sync()
            if arena.grads_ready():
                total = _grad_norm(arena.grad_views)
                if total > max_norm and total > 0:
                    np.multiply(arena.flat_grads, max_norm / total,
                                out=arena.flat_grads)
                return total
        return clip_grad_norm(self.parameters, max_norm)

    def _arena_ready(self) -> bool:
        """Sync the arena and report whether the flat fast path applies."""
        arena = self._arena
        if arena is None:
            return False
        arena.sync()
        return arena.grads_ready()

    # ------------------------------------------------------------------
    # Persistence (the contract behind resumable training checkpoints:
    # array lists map onto ``self.parameters`` order, scalars are ints).
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Internal optimiser state (moments, step counts); empty by default."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`."""
        if state:
            raise ValueError(f"{type(self).__name__} carries no state, "
                             f"got keys {sorted(state)}")

    def _check_arrays(self, arrays: list, what: str) -> list[np.ndarray]:
        if len(arrays) != len(self.parameters):
            raise ValueError(f"{what} count {len(arrays)} does not match "
                             f"{len(self.parameters)} parameters")
        out = []
        for arr, p in zip(arrays, self.parameters):
            arr = np.asarray(arr)
            if arr.shape != p.data.shape:
                raise ValueError(f"{what} shape {arr.shape} does not match "
                                 f"parameter shape {p.data.shape}")
            out.append(arr.astype(np.float64, copy=True))
        return out

    def _moment_slot(self) -> tuple[np.ndarray | None, list[np.ndarray]]:
        """Flat + per-parameter moment storage (arena-backed when active)."""
        if self._arena is not None:
            return self._arena.zeros()
        return None, [np.zeros_like(p.data) for p in self.parameters]

    @staticmethod
    def _load_moments(views: list[np.ndarray],
                      arrays: list[np.ndarray]) -> list[np.ndarray]:
        """Write checkpointed moments into existing views (keeps any flat
        backing bound); returns the view list unchanged."""
        for view, arr in zip(views, arrays):
            np.copyto(view, arr)
        return views


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity_flat, self._velocity = self._moment_slot()

    def step(self) -> None:
        if self._arena_ready():
            arena = self._arena
            grad = arena.flat_grads
            if self.weight_decay:
                grad = grad + self.weight_decay * arena.flat_params
            if self.momentum:
                v = self._velocity_flat
                v *= self.momentum
                v += grad
                grad = v
            arena.flat_params -= self.lr * grad
            return
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None or not p.requires_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            np.subtract(p.data, self.lr * grad, out=p.data)

    def state_dict(self) -> dict:
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        self._velocity = self._load_moments(
            self._velocity, self._check_arrays(state["velocity"], "velocity"))


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m_flat, self._m = self._moment_slot()
        self._v_flat, self._v = self._moment_slot()
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        if self._arena_ready():
            arena = self._arena
            grad = arena.flat_grads
            if self.weight_decay:
                grad = grad + self.weight_decay * arena.flat_params
            m, v = self._m_flat, self._v_flat
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            arena.flat_params -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            return
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None or not p.requires_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            np.subtract(p.data, self.lr * m_hat / (np.sqrt(v_hat) + self.eps),
                        out=p.data)

    def state_dict(self) -> dict:
        return {"step": self._t,
                "m": [m.copy() for m in self._m],
                "v": [v.copy() for v in self._v]}

    def load_state_dict(self, state: dict) -> None:
        self._t = int(state["step"])
        self._m = self._load_moments(
            self._m, self._check_arrays(state["m"], "first moment"))
        self._v = self._load_moments(
            self._v, self._check_arrays(state["v"], "second moment"))


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            decay_mult = 1.0 - self.lr * self.weight_decay
            if self._arena_ready():
                self._arena.flat_params *= decay_mult
            else:
                for p in self.parameters:
                    if p.requires_grad and p.grad is not None:
                        np.multiply(p.data, decay_mult, out=p.data)
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class LRScheduler:
    """Multiplies the optimiser's base lr by ``schedule(epoch)`` each step."""

    def __init__(self, optimizer: Optimizer, schedule):
        self.optimizer = optimizer
        self.schedule = schedule
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        lr = self.base_lr * self.schedule(self.epoch)
        self.optimizer.lr = lr
        return lr


def cosine_schedule(total_epochs: int, min_mult: float = 0.01):
    """Cosine decay from 1.0 down to ``min_mult`` over ``total_epochs``."""

    def schedule(epoch: int) -> float:
        t = min(epoch, total_epochs) / max(total_epochs, 1)
        return min_mult + 0.5 * (1.0 - min_mult) * (1.0 + math.cos(math.pi * t))

    return schedule


def step_schedule(step_size: int, gamma: float = 0.1):
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def schedule(epoch: int) -> float:
        return gamma ** (epoch // step_size)

    return schedule


def warmup_cosine_schedule(warmup_epochs: int, total_epochs: int, min_mult: float = 0.01):
    """Linear warmup for ``warmup_epochs`` then cosine decay to ``min_mult``."""
    cosine = cosine_schedule(max(total_epochs - warmup_epochs, 1), min_mult)

    def schedule(epoch: int) -> float:
        if epoch <= warmup_epochs:
            return epoch / max(warmup_epochs, 1)
        return cosine(epoch - warmup_epochs)

    return schedule
