"""Optimisers and learning-rate schedules.

Adam is the workhorse for every trained model in the reproduction; SGD is
kept for baselines and tests.  Schedules are deliberately simple function
objects (callable epoch -> lr multiplier) attached via :class:`LRScheduler`.
"""

from __future__ import annotations

import math

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "LRScheduler",
           "cosine_schedule", "step_schedule", "warmup_cosine_schedule",
           "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Clip the global gradient L2 norm in place; returns the pre-clip norm."""
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = math.sqrt(sum(float((g * g).sum()) for g in grads))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in parameters:
            if p.grad is not None:
                p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimiser holding a parameter list and a learning rate."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Persistence (the contract behind resumable training checkpoints:
    # array lists map onto ``self.parameters`` order, scalars are ints).
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Internal optimiser state (moments, step counts); empty by default."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`."""
        if state:
            raise ValueError(f"{type(self).__name__} carries no state, "
                             f"got keys {sorted(state)}")

    def _check_arrays(self, arrays: list, what: str) -> list[np.ndarray]:
        if len(arrays) != len(self.parameters):
            raise ValueError(f"{what} count {len(arrays)} does not match "
                             f"{len(self.parameters)} parameters")
        out = []
        for arr, p in zip(arrays, self.parameters):
            arr = np.asarray(arr)
            if arr.shape != p.data.shape:
                raise ValueError(f"{what} shape {arr.shape} does not match "
                                 f"parameter shape {p.data.shape}")
            out.append(arr.astype(np.float64, copy=True))
        return out


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None or not p.requires_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data = p.data - self.lr * grad

    def state_dict(self) -> dict:
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        self._velocity = self._check_arrays(state["velocity"], "velocity")


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None or not p.requires_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {"step": self._t,
                "m": [m.copy() for m in self._m],
                "v": [v.copy() for v in self._v]}

    def load_state_dict(self, state: dict) -> None:
        self._t = int(state["step"])
        self._m = self._check_arrays(state["m"], "first moment")
        self._v = self._check_arrays(state["v"], "second moment")


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for p in self.parameters:
                if p.requires_grad and p.grad is not None:
                    p.data = p.data * (1.0 - self.lr * self.weight_decay)
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class LRScheduler:
    """Multiplies the optimiser's base lr by ``schedule(epoch)`` each step."""

    def __init__(self, optimizer: Optimizer, schedule):
        self.optimizer = optimizer
        self.schedule = schedule
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        lr = self.base_lr * self.schedule(self.epoch)
        self.optimizer.lr = lr
        return lr


def cosine_schedule(total_epochs: int, min_mult: float = 0.01):
    """Cosine decay from 1.0 down to ``min_mult`` over ``total_epochs``."""

    def schedule(epoch: int) -> float:
        t = min(epoch, total_epochs) / max(total_epochs, 1)
        return min_mult + 0.5 * (1.0 - min_mult) * (1.0 + math.cos(math.pi * t))

    return schedule


def step_schedule(step_size: int, gamma: float = 0.1):
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def schedule(epoch: int) -> float:
        return gamma ** (epoch // step_size)

    return schedule


def warmup_cosine_schedule(warmup_epochs: int, total_epochs: int, min_mult: float = 0.01):
    """Linear warmup for ``warmup_epochs`` then cosine decay to ``min_mult``."""
    cosine = cosine_schedule(max(total_epochs - warmup_epochs, 1), min_mult)

    def schedule(epoch: int) -> float:
        if epoch <= warmup_epochs:
            return epoch / max(warmup_epochs, 1)
        return cosine(epoch - warmup_epochs)

    return schedule
