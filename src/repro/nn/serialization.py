"""Model persistence: save/load ``Module`` state dicts as ``.npz`` archives.

Both functions are thin wrappers over the unified artifact layer
(:mod:`repro.registry.storage`): saves are atomic (temp file +
``os.replace``), and loads transparently accept registry artifacts — the
embedded JSON manifest key is stripped before the strict
``load_state_dict`` check — as well as plain pre-registry archives.
"""

from __future__ import annotations

import os

from ..registry.storage import atomic_savez, read_state
from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Atomically write the module's parameters to ``path`` (``.npz``
    appended if absent).

    Dotted parameter names are preserved as archive keys.  An interrupt
    mid-save leaves any existing archive at ``path`` intact.
    """
    atomic_savez(path, module.state_dict())


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved with :func:`save_module` into ``module``.

    The module must already have the right architecture; keys and shapes
    are checked strictly by ``Module.load_state_dict``.  Registry
    artifacts (which carry an embedded manifest) load the same way —
    only the state arrays reach the module.
    """
    module.load_state_dict(read_state(path))
    return module
