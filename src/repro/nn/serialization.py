"""Model persistence: save/load ``Module`` state dicts as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write the module's parameters to ``path`` (``.npz`` appended if absent).

    Dotted parameter names are preserved as archive keys.
    """
    state = module.state_dict()
    np.savez(path, **state)


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved with :func:`save_module` into ``module``.

    The module must already have the right architecture; keys and shapes are
    checked strictly by ``Module.load_state_dict``.
    """
    path = str(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module
