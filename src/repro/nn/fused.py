"""Fused forward/backward kernels for the ``repro.nn`` training hot path.

Every kernel here collapses a chain of 4-10 autograd nodes — the op-by-op
compositions in :mod:`repro.nn.tensor` / :mod:`repro.nn.functional` /
:mod:`repro.nn.losses` — into ONE graph node with a hand-written backward.
The payoff is Python overhead, not FLOPs: each composed op allocates a
result ``Tensor``, a backward closure and graph bookkeeping, and the
training models are small enough that this per-op overhead dominates the
step time.

Bit-identity contract
---------------------
The fused kernels are **bit-identical** to the compositions they replace
(asserted op-by-op and end-to-end in ``tests/nn/test_fused.py``):

* the forward replays the exact numpy expressions of the composed chain in
  the same order (in-place ``out=`` is used only on arrays the kernel owns,
  which cannot change values);
* the backward replays the chain's closure expressions in the exact order
  the backward DFS would fire them, including the *arrival order* of
  gradient contributions into shared operands — floating-point addition is
  not associative, so this order is part of the contract;
* every chain fused here has a single tensor input, so it occupies a
  contiguous run of the backward DFS post-order; collapsing it cannot
  reorder any other node's firing slot (``scaled_matmul`` keeps the
  composed matmul's parent tuple for the same reason).

The module-level switch (:func:`fused_enabled` / :func:`fused_kernels`)
drops the whole stack — kernels, flat-arena optimisers, DataLoader fast
path — back to the op-by-op reference implementation;
``benchmarks/bench_train_step.py`` uses that as its frozen baseline.
"""

from __future__ import annotations

import math

import numpy as np

from .switches import Switch
from .tensor import Tensor, _unbroadcast

__all__ = ["fused_enabled", "fused_kernels", "linear", "gelu", "layer_norm",
           "softmax", "log_softmax", "normalize", "matmul", "scaled_matmul",
           "bce_with_logits", "l1_mean", "mse_mean", "nll_mean",
           "unification_loss", "split_heads", "merge_heads"]


_FUSED = Switch(True, name="fused_kernels")


def fused_enabled() -> bool:
    """Whether the fused fast path (kernels, arenas, loader) is active."""
    return _FUSED.enabled


def fused_kernels(enabled: bool = True):
    """Enable/disable the fused fast path within a scope.

    Returns an exception-safe context manager: ``with fused_kernels(False):``
    runs the frozen op-by-op reference implementation (same bits, more
    Python) — the baseline the training benchmark measures against — and
    the override is popped even if the body raises, so a failing test can
    never leak a disabled fast path into the rest of the process.
    """
    return _FUSED(enabled)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None) -> Tensor:
    """``x @ W + b`` as one node (composed: matmul + broadcast add)."""
    xd, wd = x.data, weight.data
    out = xd @ wd
    if bias is not None:
        np.add(out, bias.data, out=out)

    def backward(grad: np.ndarray) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate_owned(_unbroadcast(grad, bias.data.shape))
        if x.requires_grad:
            # grad @ W.T already has x's shape; the composed op's
            # _unbroadcast call was an identity here.
            x._accumulate_owned(grad @ np.swapaxes(wd, -1, -2))
        if weight.requires_grad:
            g = grad if grad.ndim > 1 else np.expand_dims(grad, -1)
            weight._accumulate_owned(_unbroadcast(np.swapaxes(xd, -1, -2) @ g,
                                                  wd.shape))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, backward, "fused.linear")


_GELU_C = math.sqrt(2.0 / math.pi)


def gelu(x: Tensor) -> Tensor:
    """Tanh-approximation GELU as one node (composed: 9 elementwise nodes)."""
    xd = x.data
    x2 = xd * xd
    t = np.tanh((xd + (x2 * xd) * 0.044715) * _GELU_C)
    tp = t + 1.0
    out = xd * tp
    np.multiply(out, 0.5, out=out)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        gp = grad * 0.5
        x._accumulate_owned(gp * tp)                 # from x * (tanh + 1)
        gs = gp
        np.multiply(gs, xd, out=gs)                  # gp is dead: reuse
        np.multiply(gs, 1.0 - t ** 2, out=gs)
        np.multiply(gs, _GELU_C, out=gs)
        x._accumulate_owned(gs.copy())               # from x + 0.044715 x^3
        gx3 = gs
        np.multiply(gx3, 0.044715, out=gx3)
        x._accumulate_owned(gx3 * x2)                # from x^2 * x
        gq = gx3
        np.multiply(gq, xd, out=gq)
        np.multiply(gq, xd, out=gq)
        x._accumulate_owned(gq)                      # from x * x (both
        x._accumulate(gq)                            #  operand slots)

    return Tensor._make(out, (x,), backward, "fused.gelu")


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float) -> Tensor:
    """Last-axis layer norm as one node (composed: ~10 nodes)."""
    xd, gd = x.data, gamma.data
    inv = 1.0 / xd.shape[-1]
    mean = xd.sum(axis=-1, keepdims=True) * inv
    centred = xd - mean
    sq = centred * centred
    var = sq.sum(axis=-1, keepdims=True) * inv
    sd = np.sqrt(var + eps)
    normed = centred / sd
    out = normed * gd
    np.add(out, beta.data, out=out)

    def backward(grad: np.ndarray) -> None:
        if beta.requires_grad:
            beta._accumulate_owned(_unbroadcast(grad, beta.data.shape))
        gn = grad * gd
        if gamma.requires_grad:
            gamma._accumulate_owned(_unbroadcast(grad * normed, gd.shape))
        gc = gn / sd
        gsd = _unbroadcast(-gn * centred / (sd ** 2), sd.shape)
        gsq = np.broadcast_to((gsd * 0.5 / sd) * inv, sq.shape)
        gc = gc + gsq * centred
        gc = gc + gsq * centred
        if x.requires_grad:
            x._accumulate_owned(gc)
            gsum1 = _unbroadcast(-gc, mean.shape) * inv
            x._accumulate(np.broadcast_to(gsum1, xd.shape))

    return Tensor._make(out, (x, gamma, beta), backward, "fused.layer_norm",
                        {"eps": eps})


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Max-shifted softmax as one node (composed: shift/exp/sum/div)."""
    xd = x.data
    exps = np.exp(xd - xd.max(axis=axis, keepdims=True))
    s = exps.sum(axis=axis, keepdims=True)
    out = exps / s

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        ge = grad / s
        gs = _unbroadcast(-grad * exps / (s ** 2), s.shape)
        ge = ge + np.broadcast_to(gs, exps.shape)
        x._accumulate_owned(ge * exps)

    return Tensor._make(out, (x,), backward, "fused.softmax", {"axis": axis})


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Max-shifted log-softmax as one node (composed: shift + logsumexp)."""
    xd = x.data
    shifted = xd - xd.max(axis=axis, keepdims=True)
    m2 = shifted.max(axis=axis, keepdims=True)
    e = np.exp(shifted - m2)
    se = e.sum(axis=axis, keepdims=True)
    lse = np.log(se) + m2
    out = shifted - lse

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        gse = _unbroadcast(-grad, lse.shape) / se
        gt = np.broadcast_to(gse, e.shape) * e
        x._accumulate_owned(grad + gt)

    return Tensor._make(out, (x,), backward, "fused.log_softmax",
                        {"axis": axis})


def normalize(x: Tensor, axis: int = -1, eps: float = 1e-8) -> Tensor:
    """L2 normalisation as one node (composed: square/sum/sqrt/add/div)."""
    xd = x.data
    q = xd * xd
    norm = np.sqrt(q.sum(axis=axis, keepdims=True))
    den = norm + eps
    out = xd / den

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        x._accumulate_owned(grad / den)
        gden = _unbroadcast(-grad * xd / (den ** 2), den.shape)
        gq = np.broadcast_to((gden * 0.5 / norm), q.shape)
        gx = gq * xd
        x._accumulate(gx)
        x._accumulate(gx)

    return Tensor._make(out, (x,), backward, "fused.normalize",
                        {"axis": axis, "eps": eps})


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """``a @ b`` for ndim >= 2 operands as one node with owned-gradient
    handover (the composed ``__matmul__``'s expressions, minus the
    defensive first-arrival copies)."""
    ad, bd = a.data, b.data
    out = ad @ bd

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_owned(_unbroadcast(grad @ np.swapaxes(bd, -1, -2),
                                             ad.shape))
        if b.requires_grad:
            g = grad if grad.ndim > 1 else np.expand_dims(grad, -1)
            b._accumulate_owned(_unbroadcast(np.swapaxes(ad, -1, -2) @ g,
                                             bd.shape))

    return Tensor._make(out, (a, b), backward, "fused.matmul")


def scaled_matmul(a: Tensor, b: Tensor, scale: float) -> Tensor:
    """``(a @ b) * scale`` as one node (attention score kernel).

    Both operands must be ndim >= 2 (the composed matmul's 1-D special
    cases are not replicated here — the dispatcher falls back for those).
    """
    ad, bd = a.data, b.data
    out = ad @ bd
    np.multiply(out, scale, out=out)

    def backward(grad: np.ndarray) -> None:
        gm = grad * scale
        if a.requires_grad:
            a._accumulate_owned(_unbroadcast(gm @ np.swapaxes(bd, -1, -2),
                                             ad.shape))
        if b.requires_grad:
            g = gm if gm.ndim > 1 else np.expand_dims(gm, -1)
            b._accumulate_owned(_unbroadcast(np.swapaxes(ad, -1, -2) @ g,
                                             bd.shape))

    return Tensor._make(out, (a, b), backward, "fused.scaled_matmul",
                        {"scale": scale})


def bce_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Elementwise stable BCE-from-logits as one node (composed: 9 nodes).

    Replays ``softplus(x) - x * q`` with softplus(x) =
    ``relu(x) + log(1 + exp(-|x|))``.  Gradient arrivals into ``logits``
    follow the composed DFS order: relu slot, abs slot, then the ``x * q``
    product slot.
    """
    xd = logits.data
    mask = xd > 0
    e = np.exp(-np.abs(xd))
    v = e + 1.0
    out = xd * mask + np.log(v) - xd * targets

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        logits._accumulate_owned(grad * mask)
        gax = -(grad / v * e)
        logits._accumulate(gax * np.sign(xd))
        logits._accumulate(-grad * targets)

    return Tensor._make(out, (logits,), backward, "fused.bce_with_logits",
                        {"target": targets})


def l1_mean(pred: Tensor, target: np.ndarray) -> Tensor:
    """``|pred - target|.mean()`` as one node (composed: sub/abs/sum/mul)."""
    d = pred.data - target
    a = np.abs(d)
    n = a.size
    out = a.sum() * (1.0 / n)

    def backward(grad: np.ndarray) -> None:
        if not pred.requires_grad:
            return
        ga = np.broadcast_to(grad * (1.0 / n), a.shape)
        pred._accumulate_owned(_unbroadcast(ga * np.sign(d), pred.data.shape))

    return Tensor._make(out, (pred,), backward, "fused.l1_mean",
                        {"target": target})


def mse_mean(pred: Tensor, target: np.ndarray) -> Tensor:
    """``((pred - target) ** 2).mean()`` as one node."""
    d = pred.data - target
    sq = d * d
    n = sq.size
    out = sq.sum() * (1.0 / n)

    def backward(grad: np.ndarray) -> None:
        if not pred.requires_grad:
            return
        gsq = np.broadcast_to(grad * (1.0 / n), sq.shape)
        gd = gsq * d
        gd = gd + gsq * d
        pred._accumulate_owned(_unbroadcast(gd, pred.data.shape))

    return Tensor._make(out, (pred,), backward, "fused.mse_mean",
                        {"target": target})


def unification_loss(logits: Tensor, q: np.ndarray, alpha: float) -> Tensor:
    """The paper's Unification Loss (gamma == 1) as one node.

    Collapses the composed sigmoid + BCE + focal-weighting + ``where`` +
    reduction chain (~15 nodes per head).  The backward replays the
    composed DFS firing order: the ``where``/product slots, the ``q - u``
    and ``u * (1 - alpha)`` arrivals into the sigmoid output, the sigmoid
    slot, and finally the BCE chain's three arrivals into ``logits``.
    """
    xd = logits.data
    # Sigmoid, replaying the composed numerically-stable form.
    clipped = np.clip(xd, -60, 60)
    eneg = np.exp(-clipped)
    epos = np.exp(clipped)
    u = np.where(xd >= 0, 1.0 / (1.0 + eneg), epos / (1.0 + epos))
    # Elementwise BCE from logits (same expressions as bce_with_logits).
    mask = xd > 0
    e = np.exp(-np.abs(xd))
    v = e + 1.0
    bce = xd * mask + np.log(v) - xd * q
    d = q - u
    gap = np.abs(d)
    m1 = gap * alpha
    m3 = u * (1.0 - alpha)
    pos = q > 0
    w = np.where(pos, m1 * bce, m3 * bce)
    s1 = w.sum(axis=-1)
    n = s1.size
    out = s1.sum() * (1.0 / n)

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        gs1 = np.broadcast_to(grad * (1.0 / n), s1.shape)
        gw = np.broadcast_to(np.expand_dims(gs1, -1), w.shape)
        gm2 = _unbroadcast(gw * pos, w.shape)
        gm4 = _unbroadcast(gw * ~pos, w.shape)
        gbce = gm2 * m1
        gd = (gm2 * bce) * alpha * np.sign(d)
        gu = -gd
        gbce = gbce + gm4 * m3
        gu = gu + (gm4 * bce) * (1.0 - alpha)
        logits._accumulate_owned(gu * u * (1.0 - u))
        logits._accumulate(gbce * mask)
        gax = -(gbce / v * e)
        logits._accumulate(gax * np.sign(xd))
        logits._accumulate(-gbce * q)

    return Tensor._make(out, (logits,), backward, "fused.unification_loss",
                        {"q": q, "alpha": alpha})


def split_heads(x: Tensor, num_heads: int, head_dim: int) -> Tensor:
    """(batch, seq, dim) -> (batch, heads, seq, head_dim) as one node.

    Pure data movement (reshape + swapaxes), so bit-identity is automatic;
    fusing just drops one node and closure per projection.
    """
    b, s, dim = x.data.shape
    out = x.data.reshape(b, s, num_heads, head_dim).swapaxes(1, 2)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad.swapaxes(1, 2).reshape(b, s, dim))

    return Tensor._make(out, (x,), backward, "fused.split_heads",
                        {"num_heads": num_heads, "head_dim": head_dim})


def merge_heads(x: Tensor) -> Tensor:
    """(batch, heads, seq, head_dim) -> (batch, seq, dim) as one node."""
    b, h, s, hd = x.data.shape
    out = x.data.swapaxes(1, 2).reshape(b, s, h * hd)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad.reshape(b, s, h, hd).swapaxes(1, 2))

    return Tensor._make(out, (x,), backward, "fused.merge_heads")


def nll_mean(log_probs: Tensor, onehot: np.ndarray) -> Tensor:
    """``-(log_probs * onehot).sum(-1).mean()`` as one node (CE tail)."""
    p = log_probs.data * onehot
    s1 = p.sum(axis=-1)
    n = s1.size
    out = -(s1.sum() * (1.0 / n))

    def backward(grad: np.ndarray) -> None:
        if not log_probs.requires_grad:
            return
        gs1 = np.broadcast_to((-grad) * (1.0 / n), s1.shape)
        gp = np.broadcast_to(np.expand_dims(gs1, -1), p.shape)
        log_probs._accumulate_owned(gp * onehot)

    return Tensor._make(out, (log_probs,), backward, "fused.nll_mean",
                        {"onehot": onehot})
