"""Autograd-aware functional operations built on :class:`repro.nn.Tensor`.

These are compositions of `Tensor` primitives, so they need no bespoke
backward passes; numerical stability tricks (max-subtraction in softmax,
clamping in log) are applied where standard.

The hot functions (softmax, log_softmax, gelu, normalize) dispatch to the
single-node kernels in :mod:`repro.nn.fused` by default — bit-identical to
the compositions kept here as the reference path (and still used under
``fused.fused_kernels(False)``).
"""

from __future__ import annotations

import math

import numpy as np

from . import fused
from .tensor import Tensor, as_tensor

__all__ = [
    "softmax",
    "log_softmax",
    "gelu",
    "silu",
    "leaky_relu",
    "normalize",
    "one_hot",
    "cosine_similarity",
    "pairwise_dot",
    "logsumexp",
]

_LOG_EPS = 1e-12


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    if fused.fused_enabled():
        return fused.softmax(x, axis=axis)
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    if fused.fused_enabled():
        return fused.log_softmax(x, axis=axis)
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - logsumexp(shifted, axis=axis, keepdims=True)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """log(sum(exp(x))) along ``axis`` with max-shifting for stability."""
    m = x.max(axis=axis, keepdims=True).detach()
    out = (x - m).exp().sum(axis=axis, keepdims=True).log() + m
    if not keepdims:
        out = out.squeeze(axis)
    return out


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as used in BERT/GPT)."""
    if fused.fused_enabled():
        return fused.gelu(x)
    c = math.sqrt(2.0 / math.pi)
    inner = (x + x * x * x * 0.044715) * c
    return x * (inner.tanh() + 1.0) * 0.5


def silu(x: Tensor) -> Tensor:
    """Sigmoid linear unit (a.k.a. swish), used by Llama-family FFNs."""
    return x * x.sigmoid()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky rectified linear unit."""
    return x.relu() - (-x).relu() * negative_slope


def normalize(x: Tensor, axis: int = -1, eps: float = 1e-8) -> Tensor:
    """L2-normalise along ``axis`` (used for contrastive embeddings)."""
    if fused.fused_enabled():
        return fused.normalize(x, axis=axis, eps=eps)
    norm = (x * x).sum(axis=axis, keepdims=True).sqrt()
    return x / (norm + eps)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a dense one-hot ``float64`` matrix for integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-8) -> Tensor:
    """Cosine similarity between ``a`` and ``b`` along ``axis``."""
    a_n = normalize(a, axis=axis, eps=eps)
    b_n = normalize(b, axis=axis, eps=eps)
    return (a_n * b_n).sum(axis=axis)


def pairwise_dot(x: Tensor) -> Tensor:
    """All-pairs dot products of row vectors: returns ``x @ x.T``."""
    return x @ x.transpose()


def safe_log(x: Tensor) -> Tensor:
    """log with clamping away from zero (for BCE-style losses)."""
    return x.clip(_LOG_EPS, 1.0).log()
