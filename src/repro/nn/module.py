"""Module/Parameter abstractions, mirroring the familiar torch.nn layout.

A :class:`Module` owns :class:`Parameter` leaves and child modules, exposes
``parameters()`` / ``named_parameters()`` for optimisers, ``state_dict`` /
``load_state_dict`` for persistence, and train/eval mode switching (used by
dropout).  Parameter freezing (``requires_grad_(False)``) implements the
paper's stage-2 protocol of training the decoder with a frozen encoder.

Non-trainable state that must travel with the weights — e.g. the stage-1
performance-normalisation statistics — is held in *buffers*
(:meth:`Module.register_buffer`): plain numpy arrays included in
``state_dict`` but invisible to optimisers.  Loading a snapshot written
before a buffer existed keeps the buffer's current value (missing buffer
keys are tolerated; missing parameters stay a hard error).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A trainable tensor; ``requires_grad`` defaults to True."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules."""

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self._buffers: dict[str, np.ndarray] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Attribute magic: registering parameters/submodules on assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        elif name in self.__dict__.get("_buffers", {}):
            value = np.asarray(value,
                               dtype=self.__dict__["_buffers"][name].dtype)
            self.__dict__["_buffers"][name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value) -> np.ndarray:
        """Attach non-trainable state that persists via ``state_dict``.

        The buffer is readable as a plain attribute; assigning to the
        attribute updates the buffer (coerced to the registered dtype).
        """
        arr = np.asarray(value)
        self.__dict__.setdefault("_buffers", {})[name] = arr
        object.__setattr__(self, name, arr)
        return arr

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """Return all parameters as a flat list."""
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs, depth-first."""
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def buffers(self) -> list[np.ndarray]:
        """Return all buffers as a flat list."""
        return [b for _, b in self.named_buffers()]

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total scalar parameter count (the paper's 'model size' metric)."""
        return sum(p.size for p in self.parameters()
                   if not trainable_only or p.requires_grad)

    def modules(self) -> Iterator["Module"]:
        """Yield self and all descendant modules."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    # ------------------------------------------------------------------
    # Mode / gradient control
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def requires_grad_(self, flag: bool = True) -> "Module":
        """Freeze (False) or unfreeze (True) every parameter in the subtree."""
        for param in self.parameters():
            param.requires_grad = flag
        return self

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter and buffer array keyed by dotted name."""
        state = {name: param.data.copy()
                 for name, param in self.named_parameters()}
        state.update({name: np.array(buf, copy=True)
                      for name, buf in self.named_buffers()})
        return state

    def _buffer_owner(self, dotted: str) -> tuple["Module", str]:
        """Resolve a dotted buffer name to its owning module and leaf name."""
        parts = dotted.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._modules[part]
        return module, parts[-1]

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict`.

        Parameters are matched strictly (keys and shapes); buffers missing
        from ``state`` keep their current value, so snapshots written before
        a buffer existed still load.
        """
        own = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own) - set(own_buffers)
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {param.data.shape}")
            if param.data.flags.writeable:
                # In-place load (values identical to the astype copy this
                # replaces) keeps optimiser flat-arena views bound to the
                # parameter across checkpoint restores.
                np.copyto(param.data, value)
            else:
                param.data = value.astype(param.data.dtype, copy=True)
        for name, current in own_buffers.items():
            if name not in state:
                continue
            value = np.asarray(state[name])
            if value.shape != current.shape:
                raise ValueError(f"shape mismatch for buffer {name}: "
                                 f"{value.shape} vs {current.shape}")
            module, leaf = self._buffer_owner(name)
            setattr(module, leaf, value)

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class ModuleList(Module):
    """A list of modules whose parameters are registered with the parent."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        self._modules[str(len(self._items))] = module
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container; call its items directly")
