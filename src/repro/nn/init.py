"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so that every
experiment in the reproduction is deterministic under a fixed seed.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "kaiming_normal", "zeros", "normal"]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return (fan_in, fan_out) for a weight of the given shape."""
    if len(shape) < 1:
        raise ValueError("initialiser needs at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a), a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform for ReLU fan-in: U(-sqrt(6/fan_in), +)."""
    fan_in, _ = _fan(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal for ReLU fan-in: N(0, 2/fan_in)."""
    fan_in, _ = _fan(shape)
    return rng.normal(0.0, math.sqrt(2.0 / fan_in), size=shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros (biases, layernorm offsets)."""
    return np.zeros(shape, dtype=np.float64)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Plain N(0, std^2), the GPT-style embedding initialiser."""
    return rng.normal(0.0, std, size=shape)
