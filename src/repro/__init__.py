"""Reproduction of **AIRCHITECT v2** (Seo, Ramachandran et al., DATE 2025).

Learning the hardware accelerator design space through unified
representations: an encoder-decoder transformer with contrastive stage-1
training and Unified-Ordinal-Vector output heads, plus every substrate the
paper depends on (MAESTRO-style cost model, Scale-Sim systolic model,
ConfuciuX/GAMMA/BO search, GANDSE/VAESA/AIRCHITECT-v1 baselines, a
105-model workload zoo) — all in pure numpy.

Quickstart::

    import numpy as np
    from repro.dse import DSEProblem, generate_random_dataset
    from repro.core import ModelConfig, AirchitectV2, Stage1Trainer, Stage2Trainer

    rng = np.random.default_rng(0)
    problem = DSEProblem()
    data = generate_random_dataset(problem, 4000, rng)
    model = AirchitectV2(ModelConfig(), problem, rng)
    Stage1Trainer(model).train(data)
    Stage2Trainer(model).train(data)
    pe_idx, l2_idx = model.predict_indices(data.inputs[:8])

See README.md and DESIGN.md for the architecture and experiment index.
"""

__version__ = "1.0.0"

from . import analysis, baselines, core, dse, faults, maestro, nn, registry
from . import scalesim, search, train, uov, workloads

__all__ = ["analysis", "baselines", "core", "dse", "faults", "maestro", "nn",
           "registry", "scalesim", "search", "train", "uov", "workloads",
           "__version__"]
