"""Long-tailed label distribution analysis (Fig. 3b evidence).

The paper observes that a small subset of output design points is favoured
by the majority of samples while many are sparsely chosen — the class
imbalance that motivates the contrastive stage-1 objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LongTailStats", "label_histogram", "longtail_stats", "gini"]


@dataclass
class LongTailStats:
    """Imbalance summary of a label distribution."""

    num_classes_used: int
    head_share_top5: float        # fraction of samples in the 5 biggest classes
    coverage_80pct: int           # classes needed to cover 80% of samples
    gini: float                   # 0 = uniform, -> 1 = fully concentrated
    imbalance_ratio: float        # largest / smallest non-empty class


def label_histogram(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Counts per class (Fig. 3b's y-axis, before log-scaling)."""
    return np.bincount(np.asarray(labels, dtype=np.int64), minlength=num_classes)


def gini(counts: np.ndarray) -> float:
    """Gini coefficient of a count vector (class-imbalance measure)."""
    counts = np.sort(np.asarray(counts, dtype=np.float64))
    n = len(counts)
    total = counts.sum()
    if total == 0 or n == 0:
        return 0.0
    cumulative = np.cumsum(counts)
    # Standard formula: 1 - 2 * sum((cum - c/2)) / (n * total)
    return float(1.0 - 2.0 * (cumulative - counts / 2.0).sum() / (n * total))


def longtail_stats(labels: np.ndarray, num_classes: int) -> LongTailStats:
    """Summarise how long-tailed a label distribution is."""
    counts = label_histogram(labels, num_classes)
    nonzero = counts[counts > 0]
    ordered = np.sort(nonzero)[::-1]
    total = ordered.sum()
    top5 = float(ordered[:5].sum() / total) if total else 0.0
    coverage = int(np.searchsorted(np.cumsum(ordered), 0.8 * total) + 1) if total else 0
    ratio = float(ordered[0] / ordered[-1]) if len(ordered) else 0.0
    return LongTailStats(num_classes_used=int(len(nonzero)),
                         head_share_top5=top5,
                         coverage_80pct=coverage,
                         gini=gini(counts),
                         imbalance_ratio=ratio)
