"""``repro.analysis`` — dataset / embedding characterisation (Figs. 3-5)."""

from .embedding import EmbeddingStats, alignment, embedding_stats, uniformity
from .landscape import (LandscapeStats, grid_landscape_stats,
                        input_sensitivity)
from .longtail import LongTailStats, gini, label_histogram, longtail_stats
from .pca import PCA

__all__ = [
    "PCA",
    "LandscapeStats", "grid_landscape_stats", "input_sensitivity",
    "LongTailStats", "gini", "label_histogram", "longtail_stats",
    "EmbeddingStats", "alignment", "uniformity", "embedding_stats",
]
