"""Embedding-space quality metrics (Fig. 5 evidence).

The paper shows contrastive learning produces a *uniform and smooth*
embedding where same-class samples cluster.  We quantify this with the
standard alignment/uniformity pair (Wang & Isola 2020) plus a silhouette-
style cluster separation score, so the Fig. 5 comparison is a number, not
just a scatter plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EmbeddingStats", "embedding_stats", "alignment", "uniformity"]


def _normalise(z: np.ndarray) -> np.ndarray:
    z = np.asarray(z, dtype=np.float64)
    return z / (np.linalg.norm(z, axis=1, keepdims=True) + 1e-12)


def alignment(z: np.ndarray, labels: np.ndarray, max_pairs: int = 20000,
              rng: np.random.Generator | None = None) -> float:
    """Mean squared distance between same-class pairs (lower = better)."""
    rng = rng or np.random.default_rng(0)
    z = _normalise(z)
    labels = np.asarray(labels)
    total, count = 0.0, 0
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        if len(members) < 2:
            continue
        budget = max(1, max_pairs // max(len(np.unique(labels)), 1))
        a = rng.choice(members, size=budget)
        b = rng.choice(members, size=budget)
        keep = a != b
        if not keep.any():
            continue
        d = ((z[a[keep]] - z[b[keep]]) ** 2).sum(axis=1)
        total += d.sum()
        count += len(d)
    return float(total / count) if count else 0.0


def uniformity(z: np.ndarray, max_points: int = 1024,
               rng: np.random.Generator | None = None) -> float:
    """log E[exp(-2 ||zi - zj||^2)] over all pairs (lower = more uniform)."""
    rng = rng or np.random.default_rng(0)
    z = _normalise(z)
    if len(z) > max_points:
        z = z[rng.choice(len(z), size=max_points, replace=False)]
    sq = ((z[:, None, :] - z[None, :, :]) ** 2).sum(-1)
    iu = np.triu_indices(len(z), k=1)
    return float(np.log(np.exp(-2.0 * sq[iu]).mean() + 1e-12))


@dataclass
class EmbeddingStats:
    """Embedding-space quality summary."""

    alignment: float          # same-class closeness (lower is better)
    uniformity: float         # hypersphere coverage (lower is better)
    separation: float         # inter-class minus intra-class mean distance


def embedding_stats(z: np.ndarray, labels: np.ndarray,
                    rng: np.random.Generator | None = None) -> EmbeddingStats:
    """Compute alignment, uniformity and a silhouette-style separation."""
    rng = rng or np.random.default_rng(0)
    zn = _normalise(z)
    labels = np.asarray(labels)

    # Class centroids for a cheap separation estimate.
    classes = np.unique(labels)
    intra, inter = [], []
    centroids = {}
    for label in classes:
        members = zn[labels == label]
        centroid = members.mean(axis=0)
        centroids[label] = centroid
        if len(members) > 1:
            intra.append(np.linalg.norm(members - centroid, axis=1).mean())
    cents = np.stack(list(centroids.values()))
    if len(cents) > 1:
        d = np.linalg.norm(cents[:, None, :] - cents[None, :, :], axis=-1)
        iu = np.triu_indices(len(cents), k=1)
        inter.append(d[iu].mean())

    sep = float((np.mean(inter) if inter else 0.0) - (np.mean(intra) if intra else 0.0))
    return EmbeddingStats(alignment=alignment(z, labels, rng=rng),
                          uniformity=uniformity(z, rng=rng),
                          separation=sep)
