"""Performance-landscape characterisation (Fig. 3a / Fig. 4 evidence).

Quantifies the two claims motivating AIRCHITECT v2's design: the latency
landscape over the design grid is (a) *non-convex* — many strict local
minima that trap greedy/local search — and (b) *non-uniform* — nearby
inputs can map to distant optimal configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LandscapeStats", "grid_landscape_stats", "input_sensitivity"]


@dataclass
class LandscapeStats:
    """Summary statistics of one (n_pe, n_l2) cost grid."""

    num_local_minima: int
    ruggedness: float        # mean |Δcost| between grid neighbours / mean cost
    dynamic_range: float     # max / min cost over the grid
    convexity_gap: float     # best local minimum / global minimum - 1 (worst trap)


def _local_minima_mask(grid: np.ndarray) -> np.ndarray:
    """Strict 4-neighbour local minima of a 2-D cost grid."""
    padded = np.pad(grid, 1, constant_values=np.inf)
    centre = padded[1:-1, 1:-1]
    mask = ((centre < padded[:-2, 1:-1]) & (centre < padded[2:, 1:-1])
            & (centre < padded[1:-1, :-2]) & (centre < padded[1:-1, 2:]))
    return mask


def grid_landscape_stats(grid: np.ndarray) -> LandscapeStats:
    """Characterise a single workload's cost grid."""
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise ValueError("expected a 2-D cost grid")
    mask = _local_minima_mask(grid)
    minima = grid[mask]
    global_min = grid.min()

    d_pe = np.abs(np.diff(grid, axis=0)).mean() if grid.shape[0] > 1 else 0.0
    d_l2 = np.abs(np.diff(grid, axis=1)).mean() if grid.shape[1] > 1 else 0.0
    ruggedness = float((d_pe + d_l2) / (2.0 * grid.mean()))

    worst_trap = float(minima.max() / global_min - 1.0) if len(minima) else 0.0
    return LandscapeStats(num_local_minima=int(mask.sum()),
                          ruggedness=ruggedness,
                          dynamic_range=float(grid.max() / max(global_min, 1e-12)),
                          convexity_gap=worst_trap)


def input_sensitivity(inputs: np.ndarray, pe_idx: np.ndarray,
                      l2_idx: np.ndarray, sample: int = 512,
                      rng: np.random.Generator | None = None) -> float:
    """Non-uniformity proxy: mean optimal-config distance between the
    nearest-input pairs of a random sample (0 = perfectly smooth map)."""
    rng = rng or np.random.default_rng(0)
    n = len(inputs)
    take = min(sample, n)
    pick = rng.choice(n, size=take, replace=False)
    feats = np.log1p(inputs[pick, :3].astype(np.float64))
    labels = np.stack([pe_idx[pick], l2_idx[pick]], axis=1).astype(np.float64)

    dists = ((feats[:, None, :] - feats[None, :, :]) ** 2).sum(-1)
    np.fill_diagonal(dists, np.inf)
    nearest = dists.argmin(axis=1)
    gaps = np.abs(labels - labels[nearest]).sum(axis=1)
    return float(gaps.mean())
