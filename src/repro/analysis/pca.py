"""Principal component analysis (numpy SVD) for the Fig. 3/4/5 projections."""

from __future__ import annotations

import numpy as np

__all__ = ["PCA"]


class PCA:
    """Standard PCA via singular value decomposition.

    Fits on mean-centred data; ``transform`` projects onto the top
    ``n_components`` principal axes.  Used to project input features
    (Fig. 3a / Fig. 4) and learned embeddings (Fig. 5) to 2-D.
    """

    def __init__(self, n_components: int = 2):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("PCA expects a 2-D matrix")
        if self.n_components > min(x.shape):
            raise ValueError("n_components exceeds matrix rank bound")
        self.mean_ = x.mean(axis=0)
        centred = x - self.mean_
        _, s, vt = np.linalg.svd(centred, full_matrices=False)
        self.components_ = vt[:self.n_components]
        var = s ** 2
        total = var.sum()
        self.explained_variance_ratio_ = (var[:self.n_components] / total
                                          if total > 0 else var[:self.n_components])
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA must be fit before transform")
        x = np.asarray(x, dtype=np.float64)
        return (x - self.mean_) @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
