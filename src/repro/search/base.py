"""Shared scaffolding for search-based DSE methods.

Every search baseline (random, GA/GAMMA, RL/ConfuciuX, BO) optimises a
:class:`DesignObjective` — the cost (latency by default) of a design point
for one fixed workload input — and returns a :class:`SearchResult` with a
best-so-far trace, which is what the Fig. 8(a) convergence comparison
plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dse import DSEProblem, ExhaustiveOracle

__all__ = ["DesignObjective", "SearchResult"]


@dataclass
class SearchResult:
    """Outcome of a search run."""

    pe_idx: int
    l2_idx: int
    best_cost: float
    n_evals: int
    history: list[float] = field(default_factory=list)  # best-so-far per eval

    def history_array(self) -> np.ndarray:
        return np.asarray(self.history, dtype=np.float64)


class DesignObjective:
    """Cost of (pe_idx, l2_idx) for one workload input, with eval counting.

    Parameters
    ----------
    problem:
        The DSE problem (provides the design space and metric).
    input_tuple:
        One ``[M, N, K, dataflow]`` input.
    oracle:
        Shared oracle/cost-model wrapper (reused across searches).
    """

    def __init__(self, problem: DSEProblem, input_tuple,
                 oracle: ExhaustiveOracle | None = None):
        self.problem = problem
        self.input = np.asarray(input_tuple, dtype=np.int64).reshape(1, 4)
        self.oracle = oracle or ExhaustiveOracle(problem)
        self.n_evals = 0
        self.best_cost = float("inf")
        self.best_point = (0, 0)
        self.history: list[float] = []

    def __call__(self, pe_idx: int, l2_idx: int) -> float:
        space = self.problem.space
        pe_idx = int(np.clip(pe_idx, 0, space.n_pe - 1))
        l2_idx = int(np.clip(l2_idx, 0, space.n_l2 - 1))
        cost = float(self.oracle.cost_at(self.input, [pe_idx], [l2_idx])[0])
        self.n_evals += 1
        if cost < self.best_cost:
            self.best_cost = cost
            self.best_point = (pe_idx, l2_idx)
        self.history.append(self.best_cost)
        return cost

    def result(self) -> SearchResult:
        pe, l2 = self.best_point
        return SearchResult(pe_idx=pe, l2_idx=l2, best_cost=self.best_cost,
                            n_evals=self.n_evals, history=list(self.history))

    def true_optimum(self) -> float:
        """Exhaustive optimum (for regret reporting); not counted as evals."""
        return float(self.oracle.solve(self.input).best_cost[0])
