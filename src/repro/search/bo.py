"""Bayesian optimisation with a Gaussian-process surrogate.

Used three ways in the reproduction:

* raw design-space search (a search baseline);
* **VAESA + BO** [11]: BO over the VAE latent space (Fig. 7, Fig. 8a);
* **contrastive + BO**: BO over AIRCHITECT v2's stage-1 embedding space —
  the Fig. 8(a) study showing the contrastive space is smoother/more
  uniform and converges faster.

Standard machinery: RBF-kernel GP posterior (Cholesky solves via scipy)
and Expected Improvement acquisition maximised over a random candidate
pool — adequate for the low-dimensional (2-8 D) spaces involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import linalg
from scipy.stats import norm

__all__ = ["BOConfig", "GaussianProcess", "expected_improvement",
           "bayesian_optimization", "BOResult"]


@dataclass(frozen=True)
class BOConfig:
    """BO budget and surrogate hyper-parameters."""

    init_points: int = 8
    iterations: int = 40
    candidate_pool: int = 256
    length_scale: float = 0.5
    signal_var: float = 1.0
    noise: float = 1e-6
    xi: float = 0.01          # EI exploration margin


@dataclass
class BOResult:
    """Best point found and the best-so-far trace."""

    x: np.ndarray
    cost: float
    history: list[float]
    evaluated_x: np.ndarray
    evaluated_y: np.ndarray


class GaussianProcess:
    """Zero-mean GP regression with an RBF kernel (targets z-scored)."""

    def __init__(self, length_scale: float = 0.5, signal_var: float = 1.0,
                 noise: float = 1e-6):
        self.length_scale = length_scale
        self.signal_var = signal_var
        self.noise = noise
        self._x: np.ndarray | None = None
        self._chol = None
        self._alpha: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = ((a[:, None, :] - b[None, :, :]) ** 2).sum(-1)
        return self.signal_var * np.exp(-0.5 * sq / self.length_scale ** 2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        self._y_mean = float(y.mean())
        self._y_std = float(y.std() + 1e-12)
        z = (y - self._y_mean) / self._y_std
        k = self._kernel(x, x) + self.noise * np.eye(len(x))
        self._chol = linalg.cho_factor(k, lower=True)
        self._alpha = linalg.cho_solve(self._chol, z)
        self._x = x
        return self

    def predict(self, xq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation (de-standardised)."""
        if self._x is None:
            raise RuntimeError("GP must be fit before predicting")
        xq = np.atleast_2d(np.asarray(xq, dtype=np.float64))
        ks = self._kernel(xq, self._x)
        mu = ks @ self._alpha
        v = linalg.cho_solve(self._chol, ks.T)
        var = np.maximum(self.signal_var - np.einsum("ij,ji->i", ks, v), 1e-12)
        return (mu * self._y_std + self._y_mean,
                np.sqrt(var) * self._y_std)


def expected_improvement(mu: np.ndarray, std: np.ndarray, best: float,
                         xi: float = 0.01) -> np.ndarray:
    """EI for *minimisation*: E[max(best - f - xi, 0)]."""
    gap = best - mu - xi
    z = gap / std
    return gap * norm.cdf(z) + std * norm.pdf(z)


def bayesian_optimization(func: Callable[[np.ndarray], float],
                          bounds: np.ndarray, rng: np.random.Generator,
                          config: BOConfig | None = None) -> BOResult:
    """Minimise ``func`` over the box ``bounds`` (shape (d, 2)).

    Returns the best point, cost and a best-so-far history with one entry
    per function evaluation (init points included) — the Fig. 8(a) x-axis.
    """
    cfg = config or BOConfig()
    bounds = np.asarray(bounds, dtype=np.float64)
    dim = len(bounds)
    span = bounds[:, 1] - bounds[:, 0]

    def sample(count: int) -> np.ndarray:
        return bounds[:, 0] + rng.random((count, dim)) * span

    xs = sample(cfg.init_points)
    ys = np.array([func(x) for x in xs])
    history: list[float] = list(np.minimum.accumulate(ys))

    gp = GaussianProcess(cfg.length_scale, cfg.signal_var, cfg.noise)
    for _ in range(cfg.iterations):
        # Log-scale the surrogate targets: latency costs are heavy-tailed.
        gp.fit(xs, np.log(np.maximum(ys, 1e-12)))
        candidates = sample(cfg.candidate_pool)
        mu, std = gp.predict(candidates)
        best_log = float(np.log(max(ys.min(), 1e-12)))
        ei = expected_improvement(mu, std, best_log, cfg.xi)
        x_next = candidates[int(np.argmax(ei))]
        y_next = func(x_next)
        xs = np.vstack([xs, x_next])
        ys = np.append(ys, y_next)
        history.append(float(ys.min()))

    best_idx = int(np.argmin(ys))
    return BOResult(x=xs[best_idx], cost=float(ys[best_idx]), history=history,
                    evaluated_x=xs, evaluated_y=ys)
