"""GAMMA-style genetic algorithm [13] over hardware design points.

GAMMA evolves a population of encoded design genomes with elitism,
tournament selection, crossover and mutation.  Here a genome is the pair
``(pe_idx, l2_idx)``; mutation takes local steps (neighbouring design
choices) with occasional random resets — the standard exploit/explore mix
for ordered discrete spaces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import DesignObjective, SearchResult

__all__ = ["GammaConfig", "gamma_search"]


@dataclass(frozen=True)
class GammaConfig:
    """GA hyper-parameters (GAMMA defaults scaled to the 768-point space)."""

    population: int = 20
    generations: int = 12
    elite: int = 4
    tournament: int = 3
    mutation_rate: float = 0.3
    reset_rate: float = 0.1


def _mutate(genome: tuple[int, int], space, rng,
            mutation_rate: float, reset_rate: float) -> tuple[int, int]:
    pe, l2 = genome
    if rng.random() < mutation_rate:
        if rng.random() < reset_rate:
            pe = int(rng.integers(space.n_pe))
        else:
            pe = int(np.clip(pe + rng.integers(-3, 4), 0, space.n_pe - 1))
    if rng.random() < mutation_rate:
        if rng.random() < reset_rate:
            l2 = int(rng.integers(space.n_l2))
        else:
            l2 = int(np.clip(l2 + rng.integers(-2, 3), 0, space.n_l2 - 1))
    return pe, l2


def gamma_search(objective: DesignObjective, rng: np.random.Generator,
                 config: GammaConfig | None = None,
                 seed_population: list[tuple[int, int]] | None = None) -> SearchResult:
    """Run the GA; ``seed_population`` warm-starts (ConfuciuX fine-tuning)."""
    cfg = config or GammaConfig()
    space = objective.problem.space

    population: list[tuple[int, int]] = list(seed_population or [])
    while len(population) < cfg.population:
        population.append((int(rng.integers(space.n_pe)),
                           int(rng.integers(space.n_l2))))
    population = population[:cfg.population]

    fitness = np.array([objective(pe, l2) for pe, l2 in population])

    for _ in range(cfg.generations):
        order = np.argsort(fitness)
        elites = [population[i] for i in order[:cfg.elite]]

        children: list[tuple[int, int]] = list(elites)
        while len(children) < cfg.population:
            # Tournament selection of two parents.
            picks = rng.integers(0, cfg.population, size=(2, cfg.tournament))
            parents = []
            for row in picks:
                best = min(row, key=lambda i: fitness[i])
                parents.append(population[best])
            # Uniform crossover per gene.
            child = (parents[rng.integers(2)][0], parents[rng.integers(2)][1])
            child = _mutate(child, space, rng, cfg.mutation_rate, cfg.reset_rate)
            children.append(child)

        population = children
        fitness = np.array([objective(pe, l2) for pe, l2 in population])

    return objective.result()
