"""``repro.search`` — search-based DSE baselines (§V of the paper).

Random/exhaustive anchors, the GAMMA genetic algorithm [13], ConfuciuX's
RL + GA two-phase search [12] (the paper's dataset labeller), and GP-based
Bayesian optimisation (used standalone and inside VAESA+BO / contrastive+BO).
"""

from .base import DesignObjective, SearchResult
from .bo import (BOConfig, BOResult, GaussianProcess, bayesian_optimization,
                 expected_improvement)
from .confuciux import ConfuciuXConfig, confuciux_search
from .gamma import GammaConfig, gamma_search
from .random_search import exhaustive_search, random_search

__all__ = [
    "DesignObjective", "SearchResult",
    "BOConfig", "BOResult", "GaussianProcess", "bayesian_optimization",
    "expected_improvement",
    "ConfuciuXConfig", "confuciux_search",
    "GammaConfig", "gamma_search",
    "random_search", "exhaustive_search",
]
