"""ConfuciuX-style RL search [12]: REINFORCE coarse search + GA fine-tune.

ConfuciuX assigns hardware resources with a policy-gradient agent (coarse
global search) whose best genomes seed a genetic algorithm for local
refinement.  The policy here is a small MLP over the workload features
with two categorical heads (PE choice, buffer choice); the reward is the
negative log latency (log-scaled so the return is well-conditioned across
workloads whose latencies span orders of magnitude).  This is the method
the paper used to *label its dataset*; we validate it against the exact
exhaustive oracle in ``tests/search``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from .base import DesignObjective, SearchResult
from .gamma import GammaConfig, gamma_search

__all__ = ["ConfuciuXConfig", "confuciux_search"]


@dataclass(frozen=True)
class ConfuciuXConfig:
    """RL + GA budget split (ConfuciuX's two-phase schedule, scaled down)."""

    episodes: int = 60
    batch_episodes: int = 8
    lr: float = 5e-3
    entropy_weight: float = 0.01
    hidden: int = 64
    ga_config: GammaConfig = GammaConfig(population=12, generations=6, elite=3)
    seed: int = 0


class _Policy(nn.Module):
    """Feature-conditioned categorical policy over the two design choices."""

    def __init__(self, in_dim: int, hidden: int, n_pe: int, n_l2: int,
                 rng: np.random.Generator):
        super().__init__()
        self.trunk = nn.Sequential(nn.Linear(in_dim, hidden, rng), nn.Tanh())
        self.pe_head = nn.Linear(hidden, n_pe, rng)
        self.l2_head = nn.Linear(hidden, n_l2, rng)

    def forward(self, features: np.ndarray):
        h = self.trunk(nn.Tensor(features))
        return self.pe_head(h), self.l2_head(h)


def confuciux_search(objective: DesignObjective, rng: np.random.Generator,
                     config: ConfuciuXConfig | None = None) -> SearchResult:
    """Two-phase ConfuciuX search on one workload objective."""
    cfg = config or ConfuciuXConfig()
    problem = objective.problem
    space = problem.space
    features = problem.featurize(objective.input)

    policy = _Policy(features.shape[1], cfg.hidden, space.n_pe, space.n_l2,
                     np.random.default_rng(cfg.seed))
    optimizer = nn.Adam(policy.parameters(), lr=cfg.lr)

    reward_baseline = 0.0
    baseline_initialised = False

    episodes_done = 0
    while episodes_done < cfg.episodes:
        batch = min(cfg.batch_episodes, cfg.episodes - episodes_done)
        episodes_done += batch

        pe_logits, l2_logits = policy(np.repeat(features, batch, axis=0))
        pe_probs = nn.functional.softmax(pe_logits, axis=-1)
        l2_probs = nn.functional.softmax(l2_logits, axis=-1)

        pe_actions = np.array([rng.choice(space.n_pe, p=row / row.sum())
                               for row in pe_probs.numpy()])
        l2_actions = np.array([rng.choice(space.n_l2, p=row / row.sum())
                               for row in l2_probs.numpy()])

        rewards = np.array([-np.log(objective(int(p), int(l)))
                            for p, l in zip(pe_actions, l2_actions)])
        if not baseline_initialised:
            reward_baseline = float(rewards.mean())
            baseline_initialised = True
        advantage = rewards - reward_baseline
        reward_baseline = 0.9 * reward_baseline + 0.1 * float(rewards.mean())

        log_pe = nn.functional.log_softmax(pe_logits, axis=-1)
        log_l2 = nn.functional.log_softmax(l2_logits, axis=-1)
        rows = np.arange(batch)
        picked = log_pe[rows, pe_actions] + log_l2[rows, l2_actions]
        pg_loss = -(picked * nn.Tensor(advantage)).mean()
        entropy = -(pe_probs * log_pe).sum(axis=-1).mean() \
            - (l2_probs * log_l2).sum(axis=-1).mean()
        loss = pg_loss - entropy * cfg.entropy_weight

        optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(policy.parameters(), 5.0)
        optimizer.step()

    # Phase 2: GA fine-tuning seeded with the RL phase's best design.
    seed_point = objective.best_point
    gamma_search(objective, rng, cfg.ga_config,
                 seed_population=[seed_point])
    return objective.result()
