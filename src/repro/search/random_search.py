"""Random and exhaustive search baselines (sanity anchors for Fig. 8a)."""

from __future__ import annotations

import numpy as np

from .base import DesignObjective, SearchResult

__all__ = ["random_search", "exhaustive_search"]


def random_search(objective: DesignObjective, budget: int,
                  rng: np.random.Generator) -> SearchResult:
    """Uniformly sample ``budget`` design points."""
    space = objective.problem.space
    for _ in range(budget):
        objective(int(rng.integers(space.n_pe)), int(rng.integers(space.n_l2)))
    return objective.result()


def exhaustive_search(objective: DesignObjective) -> SearchResult:
    """Evaluate every design point (768 evals for the Table-I space)."""
    space = objective.problem.space
    for pe in range(space.n_pe):
        for l2 in range(space.n_l2):
            objective(pe, l2)
    return objective.result()
