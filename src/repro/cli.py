"""Command-line interface: regenerate any paper artefact from the shell.

Examples::

    python -m repro table3                 # Table III at the default scale
    python -m repro fig7 --scale small     # deployment comparison
    python -m repro all --scale tiny       # every artefact, quickly
    python -m repro ablations              # extension studies
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import (SCALES, Workspace, run_fig3, run_fig4, run_fig5,
                          run_fig7, run_fig8a, run_fig8b, run_fig9,
                          run_table2, run_table3)
from .experiments.ablations import (run_deployment_ablation,
                                    run_metric_ablation,
                                    run_tolerance_ablation)

_EXPERIMENTS = {
    "table2": run_table2,
    "table3": run_table3,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig7": run_fig7,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "fig9": run_fig9,
    "ablation-deployment": run_deployment_ablation,
    "ablation-metric": run_metric_ablation,
    "ablation-tolerance": run_tolerance_ablation,
}

_NEEDS_WORKSPACE = {name for name in _EXPERIMENTS
                    if not name.startswith("ablation-")} | {
                        "ablation-deployment"}


def _print_result(name: str, out: dict) -> None:
    if "table" in out:
        print(out["table"])
    elif name == "fig8a":
        print(f"Fig. 8(a) target: {out['target_model']}")
        for curve_name, value in out["final"].items():
            print(f"  {curve_name}: final {value:.3f}x optimum")
    elif name == "fig4":
        print(f"Fig. 4: complexity {out['input_space_complexity']:.2e}, "
              f"{out['num_distinct_buckets']} buckets in use, "
              f"NN disagreement {out['nn_label_disagreement']:.2f}")
    print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate AIRCHITECT v2 paper tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(_EXPERIMENTS) + ["all"],
                        help="which artefact to regenerate")
    parser.add_argument("--scale", default=None, choices=sorted(SCALES),
                        help="experiment scale (default: $REPRO_SCALE or "
                             "'small')")
    parser.add_argument("--cache", default=None,
                        help="training-cache directory (default: "
                             "$REPRO_CACHE or .repro_cache)")
    args = parser.parse_args(argv)

    workspace = Workspace(args.cache)
    names = sorted(_EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]

    for name in names:
        runner = _EXPERIMENTS[name]
        start = time.time()
        if name in _NEEDS_WORKSPACE:
            out = runner(args.scale, workspace)
        else:
            out = runner(args.scale)
        print(f"== {name} ({time.time() - start:.1f}s)")
        _print_result(name, out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
