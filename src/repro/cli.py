"""Command-line interface: regenerate any paper artefact from the shell,
or serve one-shot DSE predictions.

Examples::

    python -m repro table3                 # Table III at the default scale
    python -m repro fig7 --scale small     # deployment comparison
    python -m repro all --scale tiny       # every artefact, quickly
    python -m repro ablations              # extension studies

    # Batched one-shot DSE serving (trains/loads the model once, cached):
    python -m repro predict --batch --random 1000 --json
    python -m repro predict --batch --input layers.csv --micro-batch 512

    # HTTP serving with dynamic batching and a persistent oracle cache:
    python -m repro serve --port 8080 --max-batch-size 64 --max-wait-ms 2 \\
        --oracle-cache .repro_cache/oracle_cache.npz

    # Asyncio front-end with bounded admission (429 + Retry-After),
    # per-request timeouts (504) and graceful drain on Ctrl-C:
    python -m repro serve --async --max-queue 256 --request-timeout 30

    # Multi-model serving from a model registry (routes by the request's
    # "model" field; streaming bulk sweeps via POST /sweep):
    python -m repro serve --registry .repro_cache --sweep-workers 4
    python -m repro predict --registry .repro_cache \\
        --model-id v2_small_s0 --random 100 --batch

    # Unified training engine: parallel oracle labelling, resumable
    # checkpoints (Ctrl-C mid-run, re-run the same command to resume);
    # --registry registers the trained model as a servable artifact:
    python -m repro train --model v2 --scale small --workers 4
    python -m repro train --smoke --registry .repro_cache
    python -m repro train --smoke --json      # CI fast path

    # Observability: Prometheus /metrics, request traces, live polling,
    # per-phase train profiling:
    python -m repro serve --trace-file traces.ndjson
    python -m repro stats --watch 2           # or --metrics for raw text
    python -m repro train --smoke --profile --json
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time

import numpy as np

from .experiments import (SCALES, Workspace, run_fig3, run_fig4, run_fig5,
                          run_fig7, run_fig8a, run_fig8b, run_fig9,
                          run_table2, run_table3)
from .experiments.ablations import (run_deployment_ablation,
                                    run_metric_ablation,
                                    run_tolerance_ablation)

_EXPERIMENTS = {
    "table2": run_table2,
    "table3": run_table3,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig7": run_fig7,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "fig9": run_fig9,
    "ablation-deployment": run_deployment_ablation,
    "ablation-metric": run_metric_ablation,
    "ablation-tolerance": run_tolerance_ablation,
}

_NEEDS_WORKSPACE = {name for name in _EXPERIMENTS
                    if not name.startswith("ablation-")} | {
                        "ablation-deployment"}


def _print_result(name: str, out: dict) -> None:
    if "table" in out:
        print(out["table"])
    elif name == "fig8a":
        print(f"Fig. 8(a) target: {out['target_model']}")
        for curve_name, value in out["final"].items():
            print(f"  {curve_name}: final {value:.3f}x optimum")
    elif name == "fig4":
        print(f"Fig. 4: complexity {out['input_space_complexity']:.2e}, "
              f"{out['num_distinct_buckets']} buckets in use, "
              f"NN disagreement {out['nn_label_disagreement']:.2f}")
    print()


def _read_workload_file(path: str) -> np.ndarray:
    """Parse workload tuples ``M N K [dataflow]`` (comma- or
    whitespace-separated, ``#`` comments) from a file or ``-`` (stdin)."""
    rows = []
    handle = sys.stdin if path == "-" else open(path)
    try:
        for lineno, line in enumerate(handle, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.replace(",", " ").split()
            try:
                if len(parts) not in (3, 4):
                    raise ValueError("wrong column count")
                m, n, k = (int(p) for p in parts[:3])
                df = int(parts[3]) if len(parts) == 4 else 0
            except ValueError:
                raise ValueError(f"{path}:{lineno}: expected 'M N K "
                                 f"[dataflow]' integers, got {line!r}") from None
            rows.append((m, n, k, df))
    finally:
        if handle is not sys.stdin:
            handle.close()
    if not rows:
        raise ValueError(f"no workloads found in {path}")
    return np.array(rows, dtype=np.int64)


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    """Model-selection options shared by ``predict`` and ``serve``."""
    parser.add_argument("--scale", default=None, choices=sorted(SCALES),
                        help="model scale (default: $REPRO_SCALE or 'small')")
    parser.add_argument("--cache", default=None,
                        help="training-cache directory (default: "
                             "$REPRO_CACHE or .repro_cache)")
    parser.add_argument("--registry", metavar="DIR", default=None,
                        help="model-registry directory: load the model "
                             "named by --model-id instead of the "
                             "train-or-load workspace path")
    parser.add_argument("--model-id", metavar="ID", default=None,
                        help="registry artifact id (with --registry; "
                             "'repro serve' accepts a comma-separated list)")
    parser.add_argument("--untrained", action="store_true",
                        help="skip training and use a freshly initialised "
                             "model (smoke tests / throughput checks)")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed for --random and --untrained")


def _check_model_args(parser: argparse.ArgumentParser, args,
                      require_model_id: bool = True) -> None:
    """Reject inconsistent --registry/--model-id/--untrained combinations."""
    if args.registry and args.untrained:
        parser.error("--registry and --untrained are mutually exclusive")
    if args.model_id and not args.registry:
        parser.error("--model-id needs --registry")
    if require_model_id and args.registry and not args.model_id:
        parser.error("--registry needs --model-id (which artifact to load)")


def _build_model(args, problem):
    """Resolve the model: registry artifact, fresh init, or train-or-load."""
    if getattr(args, "registry", None):
        from .registry import ModelRegistry, RegistryError
        # RegistryError (missing id, no manifest, unknown kind) is caught
        # by the caller and reported as a clean CLI error.
        registry = ModelRegistry(args.registry)
        model = registry.load(args.model_id, problem=problem)
        if not hasattr(model, "predict_indices"):
            raise RegistryError(
                f"artifact {args.model_id!r} (kind "
                f"{registry.artifact(args.model_id).kind!r}) has no "
                f"one-shot inference path (e.g. VAESA infers via "
                f"latent-space search); pick a v2/v1/gandse artifact")
        return model

    from .experiments.common import get_datasets, get_v2
    from .experiments.harness import get_scale

    scale = get_scale(args.scale)
    if args.untrained:
        from .core import AirchitectV2
        return AirchitectV2(scale.model_config(), problem,
                            np.random.default_rng(args.seed))
    workspace = Workspace(args.cache)
    train, _ = get_datasets(scale, workspace, problem)
    return get_v2(scale, train, workspace, problem)


def predict_main(argv: list[str] | None = None) -> int:
    """``repro predict``: one-shot DSE serving from the shell."""
    from .core import BatchedDSEPredictor, DSEPredictor
    from .experiments.common import get_problem
    from .experiments.harness import render_table

    parser = argparse.ArgumentParser(
        prog="repro predict",
        description="Serve one-shot DSE predictions (optionally batched).")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", metavar="FILE",
                        help="workload file: 'M N K [dataflow]' per line "
                             "('-' reads stdin)")
    source.add_argument("--random", type=int, metavar="N",
                        help="sweep N random Table-I workloads instead")
    parser.add_argument("--batch", action="store_true",
                        help="use the batched inference engine (vectorised "
                             "micro-batches) instead of the per-sample loop")
    parser.add_argument("--micro-batch", type=int, default=1024,
                        help="rows per forward pass in batched mode "
                             "(default 1024)")
    _add_model_args(parser)
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON document instead of a table")
    args = parser.parse_args(argv)
    if args.micro_batch < 1:
        parser.error("--micro-batch must be >= 1")
    if args.random is not None and args.random < 1:
        parser.error("--random must be >= 1")
    _check_model_args(parser, args)

    problem = get_problem()
    if args.random is not None:
        inputs = problem.sample_inputs(args.random,
                                       np.random.default_rng(args.seed))
    else:
        # Validate the workload file *before* the (possibly expensive)
        # model build, and fail with a diagnostic instead of a traceback.
        try:
            inputs = _read_workload_file(args.input)
            bad = (inputs[:, 3] < 0) | \
                (inputs[:, 3] >= problem.bounds.n_dataflows)
            if bad.any():
                raise ValueError(
                    f"{args.input}: dataflow must be in "
                    f"0..{problem.bounds.n_dataflows - 1}, "
                    f"got {sorted(set(inputs[bad, 3].tolist()))}")
        except (OSError, ValueError) as exc:
            print(f"repro predict: error: {exc}", file=sys.stderr)
            return 2

    from .registry import RegistryError
    try:
        model = _build_model(args, problem)
    except RegistryError as exc:
        print(f"repro predict: error: {exc}", file=sys.stderr)
        return 2
    if args.random is None:
        m, n, k = problem.clamp_inputs(inputs[:, 0], inputs[:, 1], inputs[:, 2])
        clamped = np.stack([m, n, k, inputs[:, 3]], axis=1)
        changed = int((clamped[:, :3] != inputs[:, :3]).any(axis=1).sum())
        if changed:
            b = problem.bounds
            print(f"warning: {changed} workload(s) clamped to the Table-I "
                  f"feature ranges (M<={b.m_max}, N<={b.n_max}, "
                  f"K<={b.k_max}); output shows the clamped dims",
                  file=sys.stderr)
        inputs = clamped

    start = time.perf_counter()
    if args.batch:
        engine = BatchedDSEPredictor(model, micro_batch_size=args.micro_batch)
        pe_idx, l2_idx = engine.predict_indices(inputs)
    else:
        predictor = DSEPredictor(model)
        parts = [predictor.predict_indices(row) for row in inputs]
        pe_idx = np.concatenate([p for p, _ in parts])
        l2_idx = np.concatenate([l for _, l in parts])
    elapsed = time.perf_counter() - start
    num_pes, l2_kb = problem.space.values(pe_idx, l2_idx)

    summary = {"samples": len(inputs),
               "mode": "batched" if args.batch else "per-sample",
               "micro_batch_size": args.micro_batch if args.batch else 1,
               "elapsed_s": elapsed,
               "samples_per_sec": len(inputs) / max(elapsed, 1e-12)}
    if args.json:
        doc = dict(summary)
        doc["predictions"] = [
            {"m": int(r[0]), "n": int(r[1]), "k": int(r[2]),
             "dataflow": int(r[3]), "num_pes": int(p), "l2_kb": int(l)}
            for r, p, l in zip(inputs, num_pes, l2_kb)]
        json.dump(doc, sys.stdout, indent=2)
        print()
    else:
        rows = [[int(r[0]), int(r[1]), int(r[2]), int(r[3]), int(p), int(l)]
                for r, p, l in zip(inputs[:50], num_pes[:50], l2_kb[:50])]
        print(render_table(["M", "N", "K", "dataflow", "num_pes", "l2_kb"],
                           rows, title="One-shot DSE predictions"
                           + (" (first 50)" if len(inputs) > 50 else "")))
        print(f"{summary['samples']} samples in {elapsed:.3f}s "
              f"({summary['samples_per_sec']:.0f} samples/sec, "
              f"{summary['mode']})")
    return 0


def train_main(argv: list[str] | None = None) -> int:
    """``repro train``: the unified training engine from the shell.

    Generates (or loads) the labelled dataset — optionally sharding the
    oracle labelling across worker processes — then trains the selected
    model through :mod:`repro.train` with resumable checkpoints: interrupt
    with Ctrl-C and re-run the same command to continue mid-run.
    """
    from .experiments.common import (get_datasets, get_gandse, get_problem,
                                     get_v1, get_v2, get_vaesa)
    from .experiments.harness import get_scale

    parser = argparse.ArgumentParser(
        prog="repro train",
        description="Train AIRCHITECT v2 or a baseline with the unified "
                    "training engine (parallel dataset labelling, "
                    "checkpoint/resume).")
    parser.add_argument("--model", default="v2",
                        choices=["v2", "v1", "gandse", "vaesa"],
                        help="which model to train (default v2)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for oracle dataset labelling "
                             "(default 1 = serial; labels are bit-identical "
                             "either way)")
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI path: tiny scale unless --scale is "
                             "given explicitly")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON summary instead of text")
    parser.add_argument("--profile", action="store_true",
                        help="time every batch's data/forward/backward/"
                             "optimizer phases (per-phase wall-time "
                             "histograms in the summary)")
    parser.add_argument("--scale", default=None, choices=sorted(SCALES),
                        help="training scale (default: $REPRO_SCALE or "
                             "'small'; --smoke forces 'tiny')")
    parser.add_argument("--cache", default=None,
                        help="training-cache directory (default: "
                             "$REPRO_CACHE or .repro_cache); datasets, "
                             "checkpoints and the final model live here")
    parser.add_argument("--registry", metavar="DIR", default=None,
                        help="also register the trained model as an "
                             "artifact in this registry directory "
                             "(servable via 'repro serve --registry')")
    parser.add_argument("--model-id", metavar="ID", default=None,
                        help="artifact id for --registry (default "
                             "<model>_<scale>_s<seed>)")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.model_id and not args.registry:
        parser.error("--model-id needs --registry")

    scale = get_scale(args.scale if args.scale or not args.smoke else "tiny")
    workspace = Workspace(args.cache)
    problem = get_problem()

    start = time.perf_counter()
    train_set, test_set = get_datasets(scale, workspace, problem,
                                       num_workers=args.workers)
    dataset_elapsed = time.perf_counter() - start

    getter = {"v2": get_v2, "v1": get_v1, "gandse": get_gandse,
              "vaesa": get_vaesa}[args.model]
    model_path = workspace.model_key(scale, {
        "v2": "v2_uov_k16_c1p1", "v1": "v1_joint",
        "gandse": "gandse", "vaesa": "vaesa"}[args.model])
    cached = workspace.has(model_path)

    from .train import ExecutionMonitor, ProfilerCallback, ThroughputMonitor
    throughput = ThroughputMonitor()
    execution = ExecutionMonitor()
    callbacks = [throughput, execution]
    profiler_cb = None
    if args.profile:
        profiler_cb = ProfilerCallback()
        callbacks.append(profiler_cb)
    start = time.perf_counter()
    try:
        model = getter(scale, train_set, workspace, problem,
                       callbacks=tuple(callbacks))
    except KeyboardInterrupt:
        print("\ninterrupted: checkpoint saved; re-run the same command "
              "to resume", file=sys.stderr)
        return 130
    train_elapsed = time.perf_counter() - start

    from .core import AirchitectV2, evaluate_model, evaluate_predictions
    if isinstance(model, AirchitectV2):
        metrics = evaluate_model(model, test_set, compute_regret=False)
    elif hasattr(model, "predict_indices"):
        pe_idx, l2_idx = model.predict_indices(test_set.inputs)
        metrics = evaluate_predictions(problem, test_set, pe_idx, l2_idx,
                                       compute_regret=False)
    else:
        # VAESA has no one-shot inference: it searches its latent space
        # per workload (see fig7/fig8a for its evaluation).
        metrics = None

    # ThroughputMonitor stats make benchmark runs scriptable without
    # parsing logs; all-zero when the model came from the cache (no epochs
    # actually ran).
    mean_epoch_ms = (1000.0 * throughput.total_seconds / len(throughput.epochs)
                     if throughput.epochs else 0.0)
    summary = {"model": args.model, "scale": scale.name,
               "train_samples": len(train_set),
               "test_samples": len(test_set),
               "label_workers": args.workers,
               "dataset_elapsed_s": dataset_elapsed,
               "train_elapsed_s": train_elapsed,
               "cached_model": cached,
               "throughput": {
                   "epochs": len(throughput.epochs),
                   "train_seconds": throughput.total_seconds,
                   "samples_per_sec": throughput.mean_samples_per_sec,
                   "mean_epoch_ms": mean_epoch_ms,
               },
               "execution": execution.summary(),
               "accuracy": metrics.accuracy if metrics else None,
               "pe_accuracy": metrics.pe_accuracy if metrics else None,
               "l2_accuracy": metrics.l2_accuracy if metrics else None}
    if profiler_cb is not None:
        summary["profile"] = profiler_cb.snapshot()

    if args.registry:
        from .registry import ModelRegistry
        model_id = args.model_id or f"{args.model}_{scale.name}_s{scale.seed}"
        artifact = ModelRegistry(args.registry).save(
            model, model_id, scale=scale.name,
            fingerprint={"model": args.model, "scale": scale.name,
                         "seed": int(scale.seed),
                         "train_samples": len(train_set),
                         "label_workers": args.workers},
            metrics={key: summary[key] for key in
                     ("accuracy", "pe_accuracy", "l2_accuracy")
                     if summary[key] is not None} or None)
        summary["registry"] = {"root": args.registry,
                               "model_id": artifact.model_id}

    if args.json:
        json.dump(summary, sys.stdout, indent=2)
        print()
    else:
        state = "loaded cached model" if cached else "trained"
        print(f"{args.model} @ {scale.name}: {state} in "
              f"{train_elapsed:.1f}s (dataset {len(train_set)}+"
              f"{len(test_set)} in {dataset_elapsed:.1f}s, "
              f"{args.workers} label worker(s))")
        if throughput.epochs:
            print(f"throughput: {throughput.mean_samples_per_sec:.0f} "
                  f"samples/sec over {len(throughput.epochs)} epoch(s) "
                  f"({throughput.total_seconds:.1f}s in the train loop)")
        exec_summary = summary["execution"]
        if exec_summary["fits"]:
            print(f"execution: {exec_summary['backend']} backend "
                  f"({exec_summary['captures']} capture(s), "
                  f"{exec_summary['replays']} replay(s), "
                  f"{exec_summary['fallbacks']} eager fallback(s))")
        if profiler_cb is not None:
            profile = profiler_cb.snapshot()
            shares = ", ".join(
                f"{phase} {stats['share'] * 100:.1f}%"
                for phase, stats in profile["phases"].items())
            print(f"profile ({profile['batches']} batches): {shares}")
        if metrics is None:
            print("one-shot accuracy n/a (VAESA infers via latent-space "
                  "search; evaluate with 'repro fig7' / 'repro fig8a')")
        else:
            print(f"test accuracy {metrics.accuracy:.3f} "
                  f"(pe {metrics.pe_accuracy:.3f}, "
                  f"l2 {metrics.l2_accuracy:.3f})")
        if args.registry:
            print(f"registered artifact "
                  f"{summary['registry']['model_id']!r} in {args.registry}")
    return 0


def serve_main(argv: list[str] | None = None) -> int:
    """``repro serve``: the dynamic-batching HTTP serving front-end."""
    from .dse import ExhaustiveOracle
    from .experiments.common import get_problem
    from .serving import DSEServer, PersistentOracleCache

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve one-shot DSE predictions over HTTP with dynamic "
                    "request batching and multi-model routing "
                    "(POST /predict, POST /sweep [streaming NDJSON], "
                    "GET /models, GET /healthz, GET /stats, GET /metrics).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8080,
                        help="bind port; 0 picks an ephemeral port "
                             "(default 8080)")
    parser.add_argument("--max-batch-size", type=int, default=64,
                        help="flush a coalesced batch at this many requests "
                             "(default 64)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="flush a partial batch this long after its "
                             "first request (default 2.0)")
    parser.add_argument("--micro-batch", type=int, default=1024,
                        help="engine rows per forward pass (default 1024)")
    parser.add_argument("--oracle-cache", metavar="FILE", default=None,
                        help="persistent oracle label-cache snapshot: loaded "
                             "at startup (fingerprint-checked), saved on "
                             "shutdown")
    parser.add_argument("--default-model", metavar="NAME", default=None,
                        help="route served when a request has no 'model' "
                             "field (with --registry; default: first "
                             "artifact)")
    parser.add_argument("--max-models", type=int, default=None,
                        help="cap on resident registry models; the least-"
                             "recently-served is evicted beyond this")
    parser.add_argument("--sweep-workers", type=int, default=None,
                        help="run /sweep chunks through an autoscaled "
                             "sharded executor with up to this many worker "
                             "processes (default: in-process)")
    parser.add_argument("--async", dest="use_async", action="store_true",
                        help="serve through the asyncio front-end (bounded "
                             "admission, graceful drain) instead of the "
                             "thread-per-connection server")
    parser.add_argument("--max-queue", type=int, default=None,
                        help="bounded per-route admission queue: above this "
                             "many in-flight requests a route answers HTTP "
                             "429 with Retry-After (default: unbounded)")
    parser.add_argument("--request-timeout", type=float, default=60.0,
                        metavar="SECONDS",
                        help="per-request timeout; slower requests answer "
                             "HTTP 504 (default 60)")
    parser.add_argument("--breaker-threshold", type=int, default=5,
                        metavar="N",
                        help="open a route's circuit breaker (HTTP 503 + "
                             "Retry-After) after N consecutive engine "
                             "failures; 0 disables the breaker (default 5)")
    parser.add_argument("--breaker-reset", type=float, default=30.0,
                        metavar="SECONDS",
                        help="how long an open breaker sheds load before "
                             "admitting a half-open probe (default 30)")
    parser.add_argument("--shard-timeout", type=float, default=120.0,
                        metavar="SECONDS",
                        help="per-shard deadline for --sweep-workers pools; "
                             "a lost or hung worker costs one timeout, then "
                             "its shards retry on a rebuilt pool "
                             "(default 120)")
    parser.add_argument("--log-requests", action="store_true",
                        help="log every HTTP request to stderr")
    parser.add_argument("--trace-file", metavar="FILE", default=None,
                        help="append finished request spans as NDJSON to "
                             "this file (traces also live in an in-memory "
                             "ring either way)")
    _add_model_args(parser)
    args = parser.parse_args(argv)
    if args.max_batch_size < 1:
        parser.error("--max-batch-size must be >= 1")
    if args.max_wait_ms < 0:
        parser.error("--max-wait-ms must be >= 0")
    if args.max_models is not None and args.max_models < 1:
        parser.error("--max-models must be >= 1")
    if args.max_queue is not None and args.max_queue < 1:
        parser.error("--max-queue must be >= 1")
    if args.request_timeout <= 0:
        parser.error("--request-timeout must be > 0")
    if args.breaker_threshold < 0:
        parser.error("--breaker-threshold must be >= 0")
    if args.breaker_reset <= 0:
        parser.error("--breaker-reset must be > 0")
    if args.shard_timeout <= 0:
        parser.error("--shard-timeout must be > 0")
    _check_model_args(parser, args, require_model_id=False)

    problem = get_problem()
    oracle = ExhaustiveOracle(problem)
    cache = PersistentOracleCache(args.oracle_cache) \
        if args.oracle_cache else None
    if cache is not None:
        loaded = cache.load(oracle)
        if loaded:
            print(f"oracle cache: warmed {loaded} entries from {cache.path}",
                  file=sys.stderr)

    common = dict(host=args.host, port=args.port,
                  max_batch_size=args.max_batch_size,
                  max_wait_ms=args.max_wait_ms,
                  micro_batch_size=args.micro_batch, oracle=oracle,
                  max_models=args.max_models,
                  sweep_workers=args.sweep_workers,
                  max_queue=args.max_queue,
                  request_timeout_s=args.request_timeout,
                  breaker_threshold=args.breaker_threshold or None,
                  breaker_reset_s=args.breaker_reset,
                  shard_timeout_s=args.shard_timeout,
                  log_requests=args.log_requests,
                  trace_file=args.trace_file)
    server_cls = DSEServer
    if args.use_async:
        from .serving import AsyncDSEServer
        server_cls = AsyncDSEServer
    from .registry import RegistryError
    try:
        if args.registry:
            # Multi-model mode: every (or the --model-id listed) artifact
            # in the registry becomes a servable route.
            model_ids = args.model_id.split(",") if args.model_id else None
            server = server_cls(registry=args.registry, model_ids=model_ids,
                                default_model=args.default_model, **common)
            served = model_ids or [a.model_id
                                   for a in server.registry.list()]
            print(f"serving {len(served)} registry model(s) from "
                  f"{args.registry}: {', '.join(sorted(served))} "
                  f"(default {server.default_model!r})", file=sys.stderr)
        else:
            server = server_cls(_build_model(args, problem), **common)
    except (RegistryError, ValueError) as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 2
    host, port = server.address
    front_end = "asyncio" if args.use_async else "threaded"
    # Orchestrators stop containers with SIGTERM; route it through the
    # same graceful-drain path as Ctrl-C so in-flight requests finish
    # and the oracle cache still snapshots.  Installed before the ready
    # banner so a supervisor reacting to the banner can't race us.
    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):       # non-main thread / odd platform
        pass
    try:
        # The ready banner lives inside the drain guard: a SIGTERM sent
        # the instant it appears must still take the graceful path.
        print(f"serving one-shot DSE predictions on http://{host}:{port} "
              f"({front_end} front-end, max_batch_size={args.max_batch_size}, "
              f"max_wait_ms={args.max_wait_ms:g}); Ctrl-C to stop",
              file=sys.stderr)
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
        if cache is not None:
            saved = cache.save(server.oracle)
            print(f"oracle cache: saved {saved} entries to {cache.path}",
                  file=sys.stderr)
    return 0


def stats_main(argv: list[str] | None = None) -> int:
    """``repro stats``: poll a running server's /stats or /metrics."""
    from urllib.error import URLError
    from urllib.request import urlopen

    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Poll a running 'repro serve' instance: pretty-print "
                    "GET /stats (default), dump the raw Prometheus text "
                    "from GET /metrics (--metrics), or emit one summary "
                    "line per interval (--watch).")
    parser.add_argument("--url", default="http://127.0.0.1:8080",
                        help="server base URL (default "
                             "http://127.0.0.1:8080)")
    parser.add_argument("--metrics", action="store_true",
                        help="fetch GET /metrics (Prometheus text "
                             "exposition) instead of GET /stats")
    parser.add_argument("--json", action="store_true",
                        help="print the raw /stats JSON document")
    parser.add_argument("--watch", type=float, metavar="SECONDS",
                        default=None,
                        help="poll every SECONDS until Ctrl-C, one "
                             "summary line per poll (with --metrics: "
                             "re-dump the whole exposition)")
    parser.add_argument("--timeout", type=float, default=5.0,
                        help="per-request timeout (default 5)")
    args = parser.parse_args(argv)
    if args.metrics and args.json:
        parser.error("--metrics and --json are mutually exclusive")
    if args.watch is not None and args.watch <= 0:
        parser.error("--watch must be > 0")
    if args.timeout <= 0:
        parser.error("--timeout must be > 0")

    base = args.url.rstrip("/")

    def fetch(path: str) -> str:
        with urlopen(base + path, timeout=args.timeout) as resp:
            return resp.read().decode("utf-8")

    def summary_line(doc: dict, prev: dict | None) -> str:
        latency = doc.get("latency") or {}
        rate = ""
        if prev is not None and args.watch:
            delta = doc["requests_total"] - prev["requests_total"]
            rate = f" {delta / args.watch:7.1f} req/s"
        return (f"req {doc['requests_total']:>8}{rate}  "
                f"samples {doc['samples_total']:>9}  "
                f"batch {doc['mean_batch_size']:6.2f}  "
                f"p50 {latency.get('p50_ms', 0.0):7.2f}ms  "
                f"p95 {latency.get('p95_ms', 0.0):7.2f}ms  "
                f"errors {doc['errors_total']}")

    try:
        if args.watch is None:
            if args.metrics:
                sys.stdout.write(fetch("/metrics"))
            elif args.json:
                print(fetch("/stats"))
            else:
                doc = json.loads(fetch("/stats"))
                print(f"{base}  up {doc['uptime_s']:.0f}s  "
                      f"default model {doc.get('default_model')!r}")
                print(summary_line(doc, None))
                for name, route in sorted((doc.get("models") or {}).items()):
                    print(f"  {name}: req {route['requests_total']} "
                          f"inflight {route.get('inflight', 0)} "
                          f"errors {route['errors_total']}")
                cache = doc.get("oracle_cache")
                if cache:
                    print(f"oracle cache: {cache['size']}/"
                          f"{cache['capacity']} entries, "
                          f"hit rate {cache['hit_rate']:.2f}")
            return 0
        prev = None
        while True:
            if args.metrics:
                sys.stdout.write(fetch("/metrics"))
            else:
                doc = json.loads(fetch("/stats"))
                print(summary_line(doc, prev), flush=True)
                prev = doc
            time.sleep(args.watch)
    except KeyboardInterrupt:
        return 0
    except (OSError, URLError, ValueError, KeyError) as exc:
        print(f"repro stats: error: cannot read {base}: {exc}",
              file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "predict":
        return predict_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "train":
        return train_main(argv[1:])
    if argv and argv[0] == "stats":
        return stats_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate AIRCHITECT v2 paper tables and figures "
                    "('repro predict --help' for the DSE serving mode, "
                    "'repro serve --help' for the HTTP server, "
                    "'repro train --help' for the training engine, "
                    "'repro stats --help' for the live-server poller).")
    parser.add_argument("experiment",
                        choices=sorted(_EXPERIMENTS) + ["all"],
                        help="which artefact to regenerate")
    parser.add_argument("--scale", default=None, choices=sorted(SCALES),
                        help="experiment scale (default: $REPRO_SCALE or "
                             "'small')")
    parser.add_argument("--cache", default=None,
                        help="training-cache directory (default: "
                             "$REPRO_CACHE or .repro_cache)")
    args = parser.parse_args(argv)

    workspace = Workspace(args.cache)
    names = sorted(_EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]

    for name in names:
        runner = _EXPERIMENTS[name]
        start = time.time()
        if name in _NEEDS_WORKSPACE:
            out = runner(args.scale, workspace)
        else:
            out = runner(args.scale)
        print(f"== {name} ({time.time() - start:.1f}s)")
        _print_result(name, out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
