"""The unified model-artifact layer: one way to save, discover and load.

Every trained model in the repo persists through a :class:`ModelRegistry`
rooted at a directory.  An artifact is a single atomic ``.npz`` (see
:mod:`repro.registry.storage`) holding the module's ``state_dict`` plus a
JSON manifest — the model *kind* (``airchitect_v2``, ``airchitect_v1``,
``gandse``, ``vaesa``), its hyper-parameter config, the experiment scale,
a training fingerprint, and evaluation metrics.  The manifest makes an
artifact self-describing: :meth:`ModelRegistry.load` rebuilds the module
from the manifest alone (via the kind's registered builder) and loads the
weights, so serving and the CLI need only a registry path and a model id.

Loaded models are held in a per-registry LRU (:meth:`ModelRegistry.get`)
so a multi-model server re-serving the same ids never reloads from disk,
while rarely-used models age out instead of accumulating.

Pre-registry archives (plain ``save_module`` output with no manifest) are
*legacy* artifacts: they load bit-identically through
:meth:`ModelRegistry.load_into` with a caller-built module, they just
cannot self-describe for :meth:`load`/:meth:`get`.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..obs import get_logger
from .storage import (MANIFEST_KEY, CorruptArtifactError, normalise_npz_path,
                      read_manifest, read_state, write_artifact)

__all__ = ["ModelArtifact", "ModelRegistry", "RegistryError",
           "register_builder", "model_kind"]

FORMAT_VERSION = 1


class RegistryError(LookupError):
    """A model id could not be resolved, built, or loaded."""


# ----------------------------------------------------------------------
# Kind builders: manifest -> freshly constructed (untrained) module
# ----------------------------------------------------------------------
_BUILDERS: dict[str, Callable] = {}
_KIND_BY_CLASS = {"AirchitectV2": "airchitect_v2",
                  "AirchitectV1": "airchitect_v1",
                  "GANDSE": "gandse",
                  "VAESA": "vaesa"}


def register_builder(kind: str):
    """Register ``fn(manifest, problem) -> Module`` for a model kind."""
    def decorate(fn: Callable) -> Callable:
        _BUILDERS[kind] = fn
        return fn
    return decorate


def model_kind(model) -> str:
    """The manifest ``kind`` string for a module instance."""
    return _KIND_BY_CLASS.get(type(model).__name__, type(model).__name__)


def _config_dict(model) -> dict | None:
    config = getattr(model, "config", None)
    if config is not None and dataclasses.is_dataclass(config):
        return dataclasses.asdict(config)
    return None


@register_builder("airchitect_v2")
def _build_v2(manifest: dict, problem):
    from ..core import AirchitectV2, ModelConfig
    return AirchitectV2(ModelConfig(**manifest["config"]), problem,
                        np.random.default_rng(0))


@register_builder("airchitect_v1")
def _build_v1(manifest: dict, problem):
    from ..baselines import AirchitectV1, V1Config
    config = dict(manifest["config"])
    config["hidden_dims"] = tuple(config["hidden_dims"])
    return AirchitectV1(V1Config(**config), problem, np.random.default_rng(0))


@register_builder("gandse")
def _build_gandse(manifest: dict, problem):
    from ..baselines import GANDSE, GANDSEConfig
    return GANDSE(GANDSEConfig(**manifest["config"]), problem,
                  np.random.default_rng(0))


@register_builder("vaesa")
def _build_vaesa(manifest: dict, problem):
    from ..baselines import VAESA, VAESAConfig
    return VAESA(VAESAConfig(**manifest["config"]), problem,
                 np.random.default_rng(0))


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModelArtifact:
    """One saved model: its id, on-disk path, and (parsed) manifest.

    ``manifest`` is ``None`` for legacy pre-registry archives.
    """

    model_id: str
    path: Path
    manifest: dict | None

    @property
    def legacy(self) -> bool:
        return self.manifest is None

    @property
    def kind(self) -> str | None:
        return (self.manifest or {}).get("kind")

    @property
    def scale(self) -> str | None:
        return (self.manifest or {}).get("scale")

    @property
    def fingerprint(self) -> dict | None:
        return (self.manifest or {}).get("fingerprint")

    @property
    def metrics(self) -> dict | None:
        return (self.manifest or {}).get("metrics")

    def load_state(self) -> dict[str, np.ndarray]:
        return read_state(self.path)

    def summary(self) -> dict:
        """JSON-ready description (the ``GET /models`` line format)."""
        manifest = self.manifest or {}
        return {"model_id": self.model_id,
                "kind": self.kind,
                "scale": self.scale,
                "legacy": self.legacy,
                "fingerprint": manifest.get("fingerprint"),
                "metrics": manifest.get("metrics"),
                "created_at": manifest.get("created_at")}


class ModelRegistry:
    """Directory of model artifacts with an in-process LRU of loaded models.

    Parameters
    ----------
    root:
        Registry directory (created on demand).  Model ids map to
        ``<root>/<model_id>.npz`` and may contain ``/`` separators for
        grouping (e.g. ``small_s0/model_v2``).
    max_loaded:
        LRU capacity of :meth:`get`; least-recently-served models are
        evicted (their arrays freed) beyond this many.
    """

    def __init__(self, root: str | Path, max_loaded: int = 4):
        if max_loaded < 1:
            raise ValueError("max_loaded must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_loaded = max_loaded
        self._loaded: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Paths and discovery
    # ------------------------------------------------------------------
    def path_for(self, model_id: str) -> Path:
        if not model_id or model_id.startswith(("/", "\\")) \
                or ".." in Path(model_id).parts:
            raise RegistryError(f"invalid model id {model_id!r}")
        return Path(normalise_npz_path(self.root / model_id))

    def has(self, model_id: str) -> bool:
        try:
            return self.path_for(model_id).is_file()
        except RegistryError:
            return False

    def __contains__(self, model_id: str) -> bool:
        return self.has(model_id)

    def artifact(self, model_id: str) -> ModelArtifact:
        """Resolve one id (legacy archives allowed); raises when absent
        or corrupt (the damaged file is quarantined first, so the same id
        resolves to "absent" on the next call instead of failing again).
        """
        path = self.path_for(model_id)
        if not path.is_file():
            raise RegistryError(f"no artifact {model_id!r} in {self.root}")
        try:
            manifest = read_manifest(path)
        except CorruptArtifactError as exc:
            self.invalidate(model_id)
            raise RegistryError(f"artifact {model_id!r} is corrupt and was "
                                f"quarantined: {exc}") from exc
        return ModelArtifact(model_id=model_id, path=path, manifest=manifest)

    def list(self) -> list[ModelArtifact]:
        """Every *manifested* artifact under the root, sorted by id.

        Plain ``.npz`` files without an embedded manifest (datasets,
        checkpoints, pre-registry models) are not listed — they are not
        self-describing — but remain loadable by id via
        :meth:`load_into`.
        """
        artifacts = []
        for path in sorted(self.root.rglob("*.npz")):
            try:
                manifest = read_manifest(path)
            except CorruptArtifactError as exc:
                # read_manifest already renamed the file to .corrupt, so
                # discovery will not trip on it again.
                get_logger("registry").warning("skipping corrupt artifact: "
                                               "%s", exc)
                continue
            except (OSError, ValueError, zipfile.BadZipFile,
                    json.JSONDecodeError):  # unreadable/foreign archive
                continue
            if manifest is None:
                continue
            model_id = str(path.relative_to(self.root))[:-len(".npz")]
            artifacts.append(ModelArtifact(model_id=model_id, path=path,
                                           manifest=manifest))
        return artifacts

    def ids(self) -> list[str]:
        return [a.model_id for a in self.list()]

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def save(self, model, model_id: str, *, scale: str | None = None,
             fingerprint: dict | None = None, metrics: dict | None = None,
             extra: dict | None = None) -> ModelArtifact:
        """Persist a module as a manifested artifact (atomic write).

        The manifest records the model kind and config (so :meth:`load`
        can rebuild it), plus whatever provenance the caller supplies:
        the experiment ``scale`` name, a training ``fingerprint``
        (seed, epochs, dataset identity, ...) and evaluation ``metrics``.
        """
        manifest = {"format_version": FORMAT_VERSION,
                    "kind": model_kind(model),
                    "model_id": model_id,
                    "config": _config_dict(model),
                    "scale": scale,
                    "fingerprint": fingerprint,
                    "metrics": metrics,
                    "created_at": time.time()}
        if extra:
            manifest.update(extra)
        path = self.path_for(model_id)
        write_artifact(path, model.state_dict(), manifest)
        self.invalidate(model_id)
        return ModelArtifact(model_id=model_id, path=path, manifest=manifest)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_into(self, model_id: str, module):
        """Load an artifact's weights into a caller-built module.

        Works for legacy (manifest-less) archives too; keys and shapes
        are checked strictly by ``Module.load_state_dict``, so this is
        bit-identical to the old ``load_module`` path.
        """
        module.load_state_dict(self.artifact(model_id).load_state())
        return module

    def load(self, model_id: str, problem=None):
        """Rebuild a model from its manifest and load its weights.

        Requires a manifested artifact whose ``kind`` has a registered
        builder; ``problem`` defaults to the canonical
        :class:`~repro.dse.DSEProblem`.  The model is returned in eval
        mode.  Each call builds a fresh instance — use :meth:`get` for
        the shared LRU-cached one.
        """
        artifact = self.artifact(model_id)
        if artifact.legacy:
            raise RegistryError(
                f"artifact {model_id!r} has no manifest (pre-registry "
                f"archive); rebuild the module yourself and use load_into")
        builder = _BUILDERS.get(artifact.kind)
        if builder is None:
            raise RegistryError(f"artifact {model_id!r} has unknown kind "
                                f"{artifact.kind!r}; no builder registered")
        if problem is None:
            from ..dse import DSEProblem
            problem = DSEProblem()
        model = builder(artifact.manifest, problem)
        try:
            model.load_state_dict(artifact.load_state())
        except CorruptArtifactError as exc:
            self.invalidate(model_id)
            raise RegistryError(f"artifact {model_id!r} is corrupt and was "
                                f"quarantined: {exc}") from exc
        model.eval()
        return model

    def get(self, model_id: str, problem=None):
        """LRU-cached :meth:`load` (thread-safe; serving's entry point)."""
        with self._lock:
            if model_id in self._loaded:
                self._loaded.move_to_end(model_id)
                return self._loaded[model_id]
        model = self.load(model_id, problem=problem)
        with self._lock:
            # Another thread may have raced the load; keep the first so
            # every caller shares one instance per id.
            if model_id not in self._loaded:
                self._loaded[model_id] = model
                while len(self._loaded) > self.max_loaded:
                    self._loaded.popitem(last=False)
            else:
                self._loaded.move_to_end(model_id)
            return self._loaded[model_id]

    def loaded_ids(self) -> list[str]:
        """Ids currently resident in the LRU (most recent last)."""
        with self._lock:
            return list(self._loaded)

    def invalidate(self, model_id: str) -> None:
        """Drop a (possibly) cached instance, e.g. after re-saving."""
        with self._lock:
            self._loaded.pop(model_id, None)

    def delete(self, model_id: str) -> None:
        """Remove an artifact from disk and the LRU."""
        path = self.path_for(model_id)
        if path.is_file():
            path.unlink()
        self.invalidate(model_id)
