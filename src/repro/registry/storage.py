"""Atomic ``.npz`` artifact I/O shared by every persistence layer.

All writers in the repo — model artifacts, ``save_module``, training
checkpoints, the persistent oracle cache — funnel through
:func:`atomic_savez`: the archive is written to a temp file next to the
destination and ``os.replace``-d into place, so an interrupt mid-save
(Ctrl-C, OOM kill, disk full) leaves the previous file intact instead of
a torn archive.

A *model artifact* is one such archive holding a module's ``state_dict``
arrays plus a JSON manifest under the reserved :data:`MANIFEST_KEY`
(config, scale, training fingerprint, metrics — see
:mod:`repro.registry.registry`).  Plain state-only archives written by
older code have no manifest key; :func:`read_manifest` returns ``None``
for them and :func:`read_state` serves them unchanged, so pre-registry
``.npz`` files keep loading bit-identically.

This module deliberately imports nothing from ``repro`` so the low-level
``repro.nn`` stack can depend on it without cycles.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

__all__ = ["MANIFEST_KEY", "atomic_savez", "write_artifact", "read_manifest",
           "read_state", "normalise_npz_path"]

# Reserved archive key; never a valid dotted parameter name (parameters
# come from attribute names, which cannot start with "_"-"_" doubles).
MANIFEST_KEY = "__manifest__"


def normalise_npz_path(path: str | os.PathLike) -> str:
    """Append ``.npz`` when absent (matching ``np.savez``'s behaviour)."""
    path = str(path)
    if not path.endswith(".npz"):
        path += ".npz"
    return path


def atomic_savez(path: str | os.PathLike, arrays: dict) -> str:
    """Write ``arrays`` as an ``.npz`` archive atomically; returns the path.

    The archive lands under a temp name in the destination directory
    (same filesystem, so the final ``os.replace`` is atomic) and is
    renamed into place only once fully written.  Parent directories are
    created on demand.  On any failure the destination is untouched and
    the temp file is removed.
    """
    path = normalise_npz_path(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    # The temp name keeps the .npz suffix so np.savez does not append a
    # second one, and embeds the pid so concurrent writers never collide.
    tmp = f"{path}.tmp{os.getpid()}.npz"
    try:
        np.savez(tmp, **arrays)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - error-path cleanup
            os.unlink(tmp)
    return path


def write_artifact(path: str | os.PathLike, state: dict,
                   manifest: dict | None) -> str:
    """Atomically write a state dict (+ optional embedded manifest)."""
    arrays = dict(state)
    if manifest is not None:
        arrays[MANIFEST_KEY] = np.array(json.dumps(manifest))
    return atomic_savez(path, arrays)


def read_manifest(path: str | os.PathLike) -> dict | None:
    """The embedded JSON manifest, or ``None`` for plain legacy archives.

    Only the manifest entry is decompressed — ``np.load`` reads archive
    members lazily, so discovery over a large registry stays cheap.
    """
    with np.load(normalise_npz_path(path)) as archive:
        if MANIFEST_KEY not in archive.files:
            return None
        return json.loads(str(archive[MANIFEST_KEY][()]))


def read_state(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """All state arrays from an artifact, manifest key stripped."""
    with np.load(normalise_npz_path(path)) as archive:
        return {key: archive[key] for key in archive.files
                if key != MANIFEST_KEY}
