"""Atomic, corruption-safe ``.npz`` artifact I/O shared by every
persistence layer.

All writers in the repo — model artifacts, ``save_module``, training
checkpoints, the persistent oracle cache — funnel through
:func:`atomic_savez`: the archive is written to a temp file next to the
destination and ``os.replace``-d into place, so an interrupt mid-save
(Ctrl-C, OOM kill, disk full) leaves the previous file intact instead of
a torn archive.

Atomicity protects against interrupts, not against bit rot, partial
copies, or a kernel that never flushed the page cache before power loss.
So every archive also embeds a **content checksum** under the reserved
:data:`CHECKSUM_KEY`: a SHA-256 digest over the sorted
``(name, dtype, shape, bytes)`` of every other member.  Verified readers
(:func:`read_verified`, and :func:`read_state` / :func:`read_manifest`
on top of it) detect both torn archives (zip/zlib errors) and silent
corruption (digest mismatch), **quarantine** the damaged file by
renaming it to ``<path>.corrupt``, and raise
:class:`CorruptArtifactError` — so loaders fail with one typed,
actionable error instead of a raw ``zipfile.BadZipFile`` traceback, and
the damaged file can never be half-loaded twice.

A *model artifact* is one such archive holding a module's ``state_dict``
arrays plus a JSON manifest under the reserved :data:`MANIFEST_KEY`
(config, scale, training fingerprint, metrics — see
:mod:`repro.registry.registry`).  Plain state-only archives written by
older code have neither reserved key; :func:`read_manifest` returns
``None`` for them, checksum verification is skipped (nothing to verify
against), and :func:`read_state` serves them unchanged, so pre-registry
``.npz`` files keep loading bit-identically.

Besides :mod:`repro.faults` (the ``storage.torn_write`` injection point
and nothing else), this module deliberately imports nothing from
``repro`` so the low-level ``repro.nn`` stack can depend on it without
cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib

import numpy as np

from ..faults import fire

__all__ = ["MANIFEST_KEY", "CHECKSUM_KEY", "RESERVED_KEYS",
           "CorruptArtifactError", "atomic_savez", "write_artifact",
           "read_manifest", "read_state", "read_verified",
           "quarantine_artifact", "normalise_npz_path"]

# Reserved archive keys; never valid dotted parameter names (parameters
# come from attribute names, which cannot start with "_"-"_" doubles).
MANIFEST_KEY = "__manifest__"
CHECKSUM_KEY = "__checksum__"
RESERVED_KEYS = frozenset({MANIFEST_KEY, CHECKSUM_KEY})

# What a torn/garbled archive surfaces as from np.load: truncated or
# overwritten zip structure (BadZipFile), a member that fails inflation
# (zlib.error, EOFError), a mangled .npy header (ValueError), a missing
# member directory entry (KeyError), or short reads (OSError).
_CORRUPTION_ERRORS = (zipfile.BadZipFile, zlib.error, EOFError, KeyError,
                      ValueError, OSError)


class CorruptArtifactError(ValueError):
    """An archive failed to load or failed checksum verification.

    ``quarantined_to`` is the ``.corrupt`` path the damaged file was
    renamed to (None when the rename itself failed or was disabled).
    Subclasses ``ValueError`` so pre-existing broad handlers keep
    working.
    """

    def __init__(self, path: str, reason: str,
                 quarantined_to: str | None = None):
        self.path = str(path)
        self.reason = reason
        self.quarantined_to = quarantined_to
        message = f"{self.path}: {reason}"
        if quarantined_to:
            message += f" (quarantined to {quarantined_to})"
        super().__init__(message)


def normalise_npz_path(path: str | os.PathLike) -> str:
    """Append ``.npz`` when absent (matching ``np.savez``'s behaviour)."""
    path = str(path)
    if not path.endswith(".npz"):
        path += ".npz"
    return path


def content_digest(arrays: dict) -> str:
    """SHA-256 over the sorted (name, dtype, shape, bytes) of ``arrays``."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        arr = np.asarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(repr(arr.shape).encode())
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


def quarantine_artifact(path: str | os.PathLike,
                        suffix: str = ".corrupt") -> str | None:
    """Rename a damaged archive out of the loaders' way; returns the new
    path, or None when the rename failed (e.g. the file vanished)."""
    path = str(path)
    target = path + suffix
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target


def atomic_savez(path: str | os.PathLike, arrays: dict) -> str:
    """Write ``arrays`` as an ``.npz`` archive atomically; returns the path.

    The archive lands under a temp name in the destination directory
    (same filesystem, so the final ``os.replace`` is atomic) and is
    renamed into place only once fully written.  Parent directories are
    created on demand.  On any failure the destination is untouched and
    the temp file is removed.  A content checksum over every member is
    embedded under :data:`CHECKSUM_KEY` for the verified readers.
    """
    path = normalise_npz_path(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    payload = dict(arrays)
    if CHECKSUM_KEY not in payload:
        payload[CHECKSUM_KEY] = np.array(content_digest(payload))
    # The temp name keeps the .npz suffix so np.savez does not append a
    # second one, and embeds the pid so concurrent writers never collide.
    tmp = f"{path}.tmp{os.getpid()}.npz"
    try:
        np.savez(tmp, **payload)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - error-path cleanup
            os.unlink(tmp)
    hit = fire("storage.torn_write")
    if hit is not None:
        # Simulate the kill/power-cut that atomicity cannot cover: the
        # replace happened but the bytes on disk are torn.
        with open(path, "r+b") as fh:
            fh.truncate(max(1, int(os.path.getsize(path)
                                   * float(hit.get("keep_fraction", 0.5)))))
    return path


def write_artifact(path: str | os.PathLike, state: dict,
                   manifest: dict | None) -> str:
    """Atomically write a state dict (+ optional embedded manifest)."""
    arrays = dict(state)
    if manifest is not None:
        arrays[MANIFEST_KEY] = np.array(json.dumps(manifest))
    return atomic_savez(path, arrays)


def read_verified(path: str | os.PathLike, *,
                  quarantine: bool = True) -> dict[str, np.ndarray]:
    """Load *every* member eagerly and verify the embedded checksum.

    Eager loading matters: ``np.load`` inflates members lazily, so a
    lazy reader would let corruption escape as a ``zlib.error`` deep in
    caller code *after* state application had begun.  Reading everything
    up front means corruption is detected before a single byte reaches
    the caller.

    Archives written before the checksum existed (no :data:`CHECKSUM_KEY`
    member) load unchanged — there is nothing to verify against.

    Raises :class:`CorruptArtifactError` (renaming the file to
    ``<path>.corrupt`` first, unless ``quarantine=False``) on any
    load failure or digest mismatch; ``FileNotFoundError`` passes
    through untouched.
    """
    path = normalise_npz_path(path)
    try:
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except FileNotFoundError:
        raise
    except _CORRUPTION_ERRORS as exc:
        target = quarantine_artifact(path) if quarantine else None
        raise CorruptArtifactError(
            path, f"unreadable archive ({type(exc).__name__}: {exc})",
            target) from exc
    stored = arrays.get(CHECKSUM_KEY)
    if stored is not None:
        expected = str(stored[()]) if stored.shape == () else str(stored)
        actual = content_digest({key: value for key, value in arrays.items()
                                 if key != CHECKSUM_KEY})
        if actual != expected:
            target = quarantine_artifact(path) if quarantine else None
            raise CorruptArtifactError(
                path, f"content checksum mismatch (stored "
                f"{expected[:12]}.., computed {actual[:12]}..)", target)
    return arrays


def read_manifest(path: str | os.PathLike) -> dict | None:
    """The embedded JSON manifest, or ``None`` for plain legacy archives.

    Only the manifest entry is decompressed — ``np.load`` reads archive
    members lazily, so discovery over a large registry stays cheap; the
    full checksum pass is deferred to :func:`read_state` at load time.
    Corrupt archives are quarantined and raise
    :class:`CorruptArtifactError`.
    """
    path = normalise_npz_path(path)
    try:
        with np.load(path) as archive:
            if MANIFEST_KEY not in archive.files:
                return None
            return json.loads(str(archive[MANIFEST_KEY][()]))
    except FileNotFoundError:
        raise
    except (json.JSONDecodeError, *_CORRUPTION_ERRORS) as exc:
        target = quarantine_artifact(path)
        raise CorruptArtifactError(
            path, f"unreadable manifest ({type(exc).__name__}: {exc})",
            target) from exc


def read_state(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """All state arrays from a checksum-verified artifact, reserved keys
    stripped.  Raises :class:`CorruptArtifactError` (after quarantining
    the file) instead of leaking zip/zlib internals."""
    return {key: value for key, value in read_verified(path).items()
            if key not in RESERVED_KEYS}
