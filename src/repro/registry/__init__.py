"""``repro.registry`` — the unified model-artifact layer.

One atomic ``.npz`` + embedded-JSON-manifest format, one
:class:`ModelRegistry` for saving/discovering/loading models everywhere:
``save_module``/``load_module``, training checkpoints, the experiment
workspace cache, the CLI (``--registry``/``--model-id``) and the
multi-model serving stack all persist through this package.

:func:`atomic_savez` is the shared temp-file + ``os.replace`` writer used
by every ``.npz`` producer in the repo.
"""

from .registry import (ModelArtifact, ModelRegistry, RegistryError,
                       model_kind, register_builder)
from .storage import (CHECKSUM_KEY, MANIFEST_KEY, CorruptArtifactError,
                      atomic_savez, quarantine_artifact, read_manifest,
                      read_state, read_verified, write_artifact)

__all__ = [
    "ModelArtifact", "ModelRegistry", "RegistryError",
    "model_kind", "register_builder",
    "MANIFEST_KEY", "CHECKSUM_KEY", "CorruptArtifactError",
    "atomic_savez", "quarantine_artifact", "read_manifest", "read_state",
    "read_verified", "write_artifact",
]
