"""AIRCHITECT v1 baseline [5]: an MLP recommendation network.

The original AIRCHITECT formulates DSE as *classification*: a shallow MLP
maps workload features to a probability distribution over encoded design
choices (one label per design point — 768 classes for the Table-I space).
The paper attributes v1's weak accuracy (77.60%) to exactly this shallow
classification-only formulation: overfitting, no treatment of the
non-uniform landscape or the long-tailed label distribution.

For the Fig. 9 study the same MLP trunk can instead drive two UOV heads
(``head_style="uov"``), isolating the UOV contribution from the model
architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..dse import DSEDataset, DSEProblem
from ..train import OptimSpec, TrainLoop, TrainTask
from ..uov import UOVCodec

__all__ = ["V1Config", "AirchitectV1", "train_v1"]


@dataclass(frozen=True)
class V1Config:
    """AIRCHITECT v1 hyper-parameters (3-layer MLP, as in [5])."""

    hidden_dims: tuple[int, ...] = (256, 256, 128)
    head_style: str = "joint"      # "joint" (the original) or "uov"
    num_buckets: int = 16
    epochs: int = 30
    batch_size: int = 256
    lr: float = 1e-3
    grad_clip: float = 5.0
    seed: int = 0

    def __post_init__(self):
        if self.head_style not in ("joint", "uov"):
            raise ValueError("v1 head_style must be 'joint' or 'uov'")


class AirchitectV1(nn.Module):
    """MLP trunk + classification (or UOV) output head(s)."""

    def __init__(self, config: V1Config, problem: DSEProblem,
                 rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.problem = problem
        in_dim = 3 + problem.bounds.n_dataflows

        layers: list[nn.Module] = []
        prev = in_dim
        for width in config.hidden_dims:
            layers.append(nn.Linear(prev, width, rng))
            layers.append(nn.ReLU())
            prev = width
        self.trunk = nn.Sequential(*layers)

        space = problem.space
        if config.head_style == "joint":
            self.pe_head = nn.Linear(prev, space.n_pe * space.n_l2, rng)
            self.l2_head = None
        else:
            self.pe_head = nn.Linear(prev, config.num_buckets, rng)
            self.l2_head = nn.Linear(prev, config.num_buckets, rng)
        self.pe_codec = UOVCodec(space.n_pe, config.num_buckets)
        self.l2_codec = UOVCodec(space.n_l2, config.num_buckets)

    def forward(self, inputs: np.ndarray):
        feats = self.problem.featurize(inputs)
        h = self.trunk(nn.Tensor(feats))
        pe = self.pe_head(h)
        l2 = self.l2_head(h) if self.l2_head is not None else None
        return pe, l2

    def head_parameter_count(self) -> int:
        """Output-head parameters (Fig. 9's model-size axis)."""
        count = self.pe_head.num_parameters()
        if self.l2_head is not None:
            count += self.l2_head.num_parameters()
        return count

    def predict_indices(self, inputs: np.ndarray,
                        batch_size: int = 2048) -> tuple[np.ndarray, np.ndarray]:
        """One-shot inference -> (pe_idx, l2_idx)."""
        self.eval()
        inputs = np.atleast_2d(np.asarray(inputs))
        pe_out = np.empty(len(inputs), dtype=np.int64)
        l2_out = np.empty(len(inputs), dtype=np.int64)
        with nn.no_grad():
            for start in range(0, len(inputs), batch_size):
                chunk = inputs[start:start + batch_size]
                pe_logits, l2_logits = self.forward(chunk)
                sl = slice(start, start + len(chunk))
                if self.config.head_style == "joint":
                    flat = pe_logits.numpy().argmax(axis=-1)
                    pe_out[sl], l2_out[sl] = self.problem.space.unflatten(flat)
                else:
                    pe_out[sl] = self.pe_codec.decode_to_choice(
                        pe_logits.sigmoid().numpy())
                    l2_out[sl] = self.l2_codec.decode_to_choice(
                        l2_logits.sigmoid().numpy())
        return pe_out, l2_out


class _V1Task(TrainTask):
    """Supervised joint-classification (or UOV) training of the v1 MLP."""

    name = "v1"
    history_keys = ("loss",)

    def __init__(self, model: AirchitectV1, dataset: DSEDataset):
        self.model = model
        self.dataset = dataset
        self.epochs = model.config.epochs
        self.seed = model.config.seed
        self.unification = nn.UnificationLoss()

    def loader(self, rng: np.random.Generator) -> nn.DataLoader:
        cfg = self.model.config
        if cfg.head_style == "joint":
            targets = self.dataset.joint_labels(self.model.problem.space.n_l2)
            data = nn.ArrayDataset(self.dataset.inputs, targets)
        else:
            data = nn.ArrayDataset(self.dataset.inputs,
                                   self.model.pe_codec.encode(self.dataset.pe_idx),
                                   self.model.l2_codec.encode(self.dataset.l2_idx))
        return nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng)

    def optim_specs(self) -> dict[str, OptimSpec]:
        cfg = self.model.config
        return {"main": OptimSpec(self.model.parameters(), cfg.lr,
                                  schedule=nn.cosine_schedule(cfg.epochs),
                                  grad_clip=cfg.grad_clip)}

    def batch_step(self, batch, step, rng) -> dict[str, float]:
        if self.model.config.head_style == "joint":
            xb, yb = batch
            pe_logits, _ = self.model.forward(xb)
            loss = nn.cross_entropy(pe_logits, yb)
        else:
            xb, pe_q, l2_q = batch
            pe_logits, l2_logits = self.model.forward(xb)
            loss = self.unification(pe_logits, pe_q) \
                + self.unification(l2_logits, l2_q)
        step.apply(loss)
        return {"loss": loss.item()}


def train_v1(model: AirchitectV1, dataset: DSEDataset, verbose: bool = False,
             callbacks=(), checkpoint_path=None, checkpoint_every: int = 1,
             resume: bool = True) -> dict:
    """Supervised training of the v1 baseline; returns loss history."""
    loop = TrainLoop(_V1Task(model, dataset), callbacks=callbacks)
    return loop.fit(verbose=verbose, checkpoint_path=checkpoint_path,
                    checkpoint_every=checkpoint_every, resume=resume)
