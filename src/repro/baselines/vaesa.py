"""VAESA baseline [11]: VAE design-latent space + Bayesian-optimisation search.

VAESA learns a continuous, reconstructible latent space over accelerator
*configurations*, shaped by a performance predictor, and then runs standard
optimisation (BO here) in that latent space.  The paper finds VAESA+BO the
strongest baseline on deployment latency (Fig. 7) but shows its VAE latent
space converges slower than the contrastive embedding under the same BO
budget (Fig. 8a).

Implementation (faithful to [11]): an *unconditional* VAE over design
points — encoder(design) -> (mu, logvar); decoder(z) -> design in [0, 1]^2
— plus a performance predictor p(z, workload features) -> latency that
injects semantic structure into the latent space.  The decoder is
deliberately *not* conditioned on the workload: conditioning would let it
bypass the latent entirely (posterior collapse), and VAESA's premise is a
workload-agnostic design manifold searched per workload.  ``search`` runs
GP/EI BO over the latent box, scoring decoded designs with the true cost
model (the expensive oracle, exactly like the paper's MAESTRO-in-the-loop
setup).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..dse import DSEDataset, DSEProblem, ExhaustiveOracle
from ..search.bo import BOConfig, BOResult, bayesian_optimization
from ..train import OptimSpec, TrainLoop, TrainTask

__all__ = ["VAESAConfig", "VAESA", "train_vaesa"]


@dataclass(frozen=True)
class VAESAConfig:
    """VAE hyper-parameters."""

    latent_dim: int = 4
    hidden: int = 128
    beta: float = 0.02
    perf_weight: float = 0.5
    epochs: int = 30
    batch_size: int = 256
    lr: float = 1e-3
    grad_clip: float = 5.0
    seed: int = 0
    latent_box: float = 3.0   # BO search box half-width (prior range)


class VAESA(nn.Module):
    """VAE over design points with a latent+workload performance head."""

    def __init__(self, config: VAESAConfig, problem: DSEProblem,
                 rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.problem = problem
        feat_dim = 3 + problem.bounds.n_dataflows

        self.encoder_net = nn.Sequential(
            nn.Linear(2, config.hidden, rng), nn.ReLU(),
            nn.Linear(config.hidden, config.hidden, rng), nn.ReLU(),
        )
        self.mu_head = nn.Linear(config.hidden, config.latent_dim, rng)
        self.logvar_head = nn.Linear(config.hidden, config.latent_dim, rng)
        self.decoder_net = nn.Sequential(
            nn.Linear(config.latent_dim, config.hidden, rng), nn.ReLU(),
            nn.Linear(config.hidden, config.hidden, rng), nn.ReLU(),
            nn.Linear(config.hidden, 2, rng), nn.Sigmoid(),
        )
        self.perf_head = nn.Sequential(
            nn.Linear(config.latent_dim + feat_dim, config.hidden, rng),
            nn.GELU(),
            nn.Linear(config.hidden, 1, rng),
        )

    # ------------------------------------------------------------------
    def encode(self, designs: nn.Tensor):
        h = self.encoder_net(designs)
        return self.mu_head(h), self.logvar_head(h)

    def decode(self, z: nn.Tensor) -> nn.Tensor:
        return self.decoder_net(z)

    def predict_perf(self, z: nn.Tensor, feats: nn.Tensor) -> nn.Tensor:
        return self.perf_head(nn.concat([z, feats], axis=1)).squeeze(-1)

    # ------------------------------------------------------------------
    def decode_to_indices(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Latent point(s) -> snapped design-choice indices."""
        z = np.atleast_2d(np.asarray(z, dtype=np.float64))
        with nn.no_grad():
            designs = self.decode(nn.Tensor(z)).numpy()
        space = self.problem.space
        pe = np.clip(np.rint(designs[:, 0] * (space.n_pe - 1)), 0, space.n_pe - 1)
        l2 = np.clip(np.rint(designs[:, 1] * (space.n_l2 - 1)), 0, space.n_l2 - 1)
        return pe.astype(np.int64), l2.astype(np.int64)

    def search(self, input_tuple: np.ndarray, rng: np.random.Generator,
               bo_config: BOConfig | None = None,
               oracle: ExhaustiveOracle | None = None) -> tuple[int, int, BOResult]:
        """VAESA+BO: optimise the latent space for one workload input.

        The BO objective decodes a latent point to a (snapped) design and
        returns its true cost-model metric.
        """
        self.eval()
        oracle = oracle or ExhaustiveOracle(self.problem)
        input_tuple = np.asarray(input_tuple, dtype=np.int64).reshape(1, 4)
        box = self.config.latent_box
        bounds = np.array([[-box, box]] * self.config.latent_dim)

        def objective(z: np.ndarray) -> float:
            pe, l2 = self.decode_to_indices(z[None, :])
            return float(oracle.cost_at(input_tuple, pe, l2)[0])

        result = bayesian_optimization(objective, bounds, rng, bo_config)
        pe, l2 = self.decode_to_indices(result.x[None, :])
        return int(pe[0]), int(l2[0]), result


class _VAESATask(TrainTask):
    """VAE training: reconstruction + beta-KL + performance regression.

    No lr schedule (the original loop ran Adam at a constant rate); the
    reparameterisation noise is drawn from the loop's rng, interleaved
    with the loader shuffling exactly as before.
    """

    name = "vaesa"
    history_keys = ("loss", "recon", "kl", "perf")

    def __init__(self, model: VAESA, dataset: DSEDataset):
        self.model = model
        self.dataset = dataset
        self.epochs = model.config.epochs
        self.seed = model.config.seed

    def loader(self, rng: np.random.Generator) -> nn.DataLoader:
        cfg = self.model.config
        space = self.model.problem.space
        designs = np.stack(
            [self.dataset.pe_idx / max(space.n_pe - 1, 1),
             self.dataset.l2_idx / max(space.n_l2 - 1, 1)], axis=1)
        perf, _, _ = self.dataset.perf_targets()
        data = nn.ArrayDataset(self.dataset.inputs, designs, perf)
        return nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng)

    def optim_specs(self) -> dict[str, OptimSpec]:
        cfg = self.model.config
        return {"main": OptimSpec(self.model.parameters(), cfg.lr,
                                  grad_clip=cfg.grad_clip)}

    def batch_step(self, batch, step, rng) -> dict[str, float]:
        model = self.model
        cfg = model.config
        xb, db, pb = batch
        feats = nn.Tensor(model.problem.featurize(xb))
        target = nn.Tensor(db)

        mu, logvar = model.encode(target)
        eps = nn.Tensor(rng.normal(size=mu.shape))
        z = mu + (logvar * 0.5).exp() * eps

        recon = model.decode(z)
        recon_loss = nn.mse_loss(recon, db)
        kl = (-0.5 * (logvar + 1.0 - mu * mu - logvar.exp())).sum(axis=-1).mean()
        perf_pred = model.predict_perf(z, feats)
        perf_loss = nn.mse_loss(perf_pred, pb)

        loss = recon_loss + kl * cfg.beta + perf_loss * cfg.perf_weight
        step.apply(loss)
        return {"loss": loss.item(), "recon": recon_loss.item(),
                "kl": kl.item(), "perf": perf_loss.item()}

    def epoch_message(self, history) -> str:
        return f"loss={history['loss'][-1]:.4f}"


def train_vaesa(model: VAESA, dataset: DSEDataset, verbose: bool = False,
                callbacks=(), checkpoint_path=None, checkpoint_every: int = 1,
                resume: bool = True) -> dict:
    """Train the VAE (reconstruction + beta-KL + performance regression).

    The dataset's *optimal* designs (plus their workload features for the
    performance head) define the latent manifold, mirroring VAESA's
    training on evaluated design points.
    """
    loop = TrainLoop(_VAESATask(model, dataset), callbacks=callbacks)
    return loop.fit(verbose=verbose, checkpoint_path=checkpoint_path,
                    checkpoint_every=checkpoint_every, resume=resume)
