"""``repro.baselines`` — the learning-based comparators of §IV.

AIRCHITECT v1 (MLP classifier [5]), GANDSE (conditional GAN [16]) and
VAESA (VAE latent space + BO [11]).
"""

from .airchitect_v1 import AirchitectV1, V1Config, train_v1
from .gandse import GANDSE, GANDSEConfig, train_gandse
from .vaesa import VAESA, VAESAConfig, train_vaesa

__all__ = [
    "AirchitectV1", "V1Config", "train_v1",
    "GANDSE", "GANDSEConfig", "train_gandse",
    "VAESA", "VAESAConfig", "train_vaesa",
]
