"""GANDSE baseline [16]: GAN-based design space exploration.

GANDSE trains a conditional generator that, given workload features (and a
noise vector), emits a design point meeting the optimisation objective; a
discriminator judges (features, design) pairs against the dataset of
optimal designs.  The paper finds GANDSE more accurate than AIRCHITECT v1
but "limited by the large unconstrained learning problem due to its
generative approach".

Implementation notes
--------------------
* Designs are represented as normalised (pe, l2) choice indices in [0, 1]².
* Non-saturating GAN losses; a small L1 reconstruction term on the
  generator (pix2pix-style) stabilises adversarial training at this scale,
  standard practice for conditional design generation.
* Inference draws ``n_candidates`` noise samples per workload and keeps
  the design the discriminator scores most realistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..dse import DSEDataset, DSEProblem
from ..train import OptimSpec, TrainLoop, TrainTask

__all__ = ["GANDSEConfig", "GANDSE", "train_gandse"]


@dataclass(frozen=True)
class GANDSEConfig:
    """GANDSE hyper-parameters."""

    noise_dim: int = 8
    hidden: int = 128
    epochs: int = 30
    batch_size: int = 256
    lr_generator: float = 1e-3
    lr_discriminator: float = 5e-4
    recon_weight: float = 4.0
    n_candidates: int = 16
    grad_clip: float = 5.0
    seed: int = 0


class _Generator(nn.Module):
    def __init__(self, feat_dim: int, noise_dim: int, hidden: int,
                 rng: np.random.Generator):
        super().__init__()
        self.net = nn.Sequential(
            nn.Linear(feat_dim + noise_dim, hidden, rng), nn.ReLU(),
            nn.Linear(hidden, hidden, rng), nn.ReLU(),
            nn.Linear(hidden, 2, rng), nn.Sigmoid(),
        )

    def forward(self, feats: nn.Tensor, noise: nn.Tensor) -> nn.Tensor:
        return self.net(nn.concat([feats, noise], axis=1))


class _Discriminator(nn.Module):
    def __init__(self, feat_dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.net = nn.Sequential(
            nn.Linear(feat_dim + 2, hidden, rng), nn.ReLU(),
            nn.Linear(hidden, hidden, rng), nn.ReLU(),
            nn.Linear(hidden, 1, rng),
        )

    def forward(self, feats: nn.Tensor, designs: nn.Tensor) -> nn.Tensor:
        return self.net(nn.concat([feats, designs], axis=1)).squeeze(-1)


class GANDSE(nn.Module):
    """Conditional GAN for one-shot DSE."""

    def __init__(self, config: GANDSEConfig, problem: DSEProblem,
                 rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.problem = problem
        feat_dim = 3 + problem.bounds.n_dataflows
        self.generator = _Generator(feat_dim, config.noise_dim, config.hidden, rng)
        self.discriminator = _Discriminator(feat_dim, config.hidden, rng)
        self._rng = np.random.default_rng(config.seed + 1)

    # ------------------------------------------------------------------
    def normalise_labels(self, dataset: DSEDataset) -> np.ndarray:
        space = self.problem.space
        return np.stack([dataset.pe_idx / max(space.n_pe - 1, 1),
                         dataset.l2_idx / max(space.n_l2 - 1, 1)], axis=1)

    def _denormalise(self, designs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        space = self.problem.space
        pe = np.clip(np.rint(designs[:, 0] * (space.n_pe - 1)), 0, space.n_pe - 1)
        l2 = np.clip(np.rint(designs[:, 1] * (space.n_l2 - 1)), 0, space.n_l2 - 1)
        return pe.astype(np.int64), l2.astype(np.int64)

    def predict_indices(self, inputs: np.ndarray,
                        batch_size: int = 1024) -> tuple[np.ndarray, np.ndarray]:
        """Generate-then-validate inference.

        For each workload, sample ``n_candidates`` designs from the
        generator, expand each to its four surrounding grid points (the
        design space is discrete; the generator is continuous), and keep
        the candidate the discriminator scores most realistic.
        """
        self.eval()
        inputs = np.atleast_2d(np.asarray(inputs))
        cfg = self.config
        space = self.problem.space
        pe_out = np.empty(len(inputs), dtype=np.int64)
        l2_out = np.empty(len(inputs), dtype=np.int64)
        with nn.no_grad():
            for start in range(0, len(inputs), batch_size):
                chunk = inputs[start:start + batch_size]
                feats = self.problem.featurize(chunk)
                n = len(chunk)
                rep = np.repeat(feats, cfg.n_candidates, axis=0)
                noise = self._rng.normal(size=(len(rep), cfg.noise_dim))
                raw = self.generator(nn.Tensor(rep), nn.Tensor(noise)).numpy()

                # Snap each generated design to nearby grid points (nearest
                # plus +/-1 jitter along PE, the high-resolution axis); the
                # matching-aware discriminator arbitrates between candidates.
                pe_base = np.rint(raw[:, 0] * (space.n_pe - 1))
                l2_base = np.rint(raw[:, 1] * (space.n_l2 - 1))
                jitter = self._rng.integers(-1, 2, size=pe_base.shape)
                cand_pe = np.clip(
                    np.stack([pe_base, pe_base + jitter], axis=1),
                    0, space.n_pe - 1).reshape(n, -1)
                cand_l2 = np.clip(
                    np.stack([l2_base, l2_base], axis=1),
                    0, space.n_l2 - 1).reshape(n, -1)
                designs = np.stack([
                    cand_pe / max(space.n_pe - 1, 1),
                    cand_l2 / max(space.n_l2 - 1, 1)], axis=2)

                n_total = designs.shape[1]
                rep_all = np.repeat(feats, n_total, axis=0)
                scores = self.discriminator(
                    nn.Tensor(rep_all),
                    nn.Tensor(designs.reshape(-1, 2))).numpy()
                pick = scores.reshape(n, n_total).argmax(axis=1)
                rows = np.arange(n)
                pe_out[start:start + n] = cand_pe[rows, pick].astype(np.int64)
                l2_out[start:start + n] = cand_l2[rows, pick].astype(np.int64)
        return pe_out, l2_out


class _GANDSETask(TrainTask):
    """Alternating discriminator/generator steps — the multi-optimiser case
    of the unified runtime (two :class:`OptimSpec` slots, two updates per
    batch)."""

    name = "gandse"
    history_keys = ("g_loss", "d_loss")

    def __init__(self, model: GANDSE, dataset: DSEDataset):
        self.model = model
        self.dataset = dataset
        self.epochs = model.config.epochs
        self.seed = model.config.seed

    def loader(self, rng: np.random.Generator) -> nn.DataLoader:
        cfg = self.model.config
        designs = self.model.normalise_labels(self.dataset)
        data = nn.ArrayDataset(self.dataset.inputs, designs)
        return nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng)

    def optim_specs(self) -> dict[str, OptimSpec]:
        cfg = self.model.config
        return {
            "generator": OptimSpec(self.model.generator.parameters(),
                                   cfg.lr_generator, grad_clip=cfg.grad_clip),
            "discriminator": OptimSpec(self.model.discriminator.parameters(),
                                       cfg.lr_discriminator,
                                       grad_clip=cfg.grad_clip),
        }

    def batch_step(self, batch, step, rng) -> dict[str, float]:
        model = self.model
        cfg = model.config
        xb, real = batch
        feats = nn.Tensor(model.problem.featurize(xb))
        batch_n = len(xb)

        # --- Discriminator step -------------------------------------
        # Positives: (features, optimal design).  Negatives: generator
        # fakes AND matching-aware mismatches — optimal designs paired
        # with the wrong workload (shuffled) — so D learns *conditioned*
        # optimality rather than marginal design realism.
        noise = nn.Tensor(rng.normal(size=(batch_n, cfg.noise_dim)))
        fake = model.generator(feats, noise).detach()
        mismatched = real[rng.permutation(batch_n)]
        d_real = model.discriminator(feats, nn.Tensor(real))
        d_fake = model.discriminator(feats, fake)
        d_mismatch = model.discriminator(feats, nn.Tensor(mismatched))
        d_loss = (nn.binary_cross_entropy_with_logits(d_real, np.ones(batch_n)).mean()
                  + nn.binary_cross_entropy_with_logits(d_fake, np.zeros(batch_n)).mean()
                  + nn.binary_cross_entropy_with_logits(d_mismatch, np.zeros(batch_n)).mean())
        step.apply(d_loss, "discriminator")

        # --- Generator step: fool D + reconstruct optimal designs ---
        noise = nn.Tensor(rng.normal(size=(batch_n, cfg.noise_dim)))
        gen = model.generator(feats, noise)
        d_gen = model.discriminator(feats, gen)
        adv = nn.binary_cross_entropy_with_logits(d_gen, np.ones(batch_n)).mean()
        recon = (gen - nn.Tensor(real)).abs().mean()
        g_loss = adv + recon * cfg.recon_weight
        step.apply(g_loss, "generator")

        return {"g_loss": g_loss.item(), "d_loss": d_loss.item()}

    def epoch_message(self, history) -> str:
        return (f"G={history['g_loss'][-1]:.4f} "
                f"D={history['d_loss'][-1]:.4f}")


def train_gandse(model: GANDSE, dataset: DSEDataset, verbose: bool = False,
                 callbacks=(), checkpoint_path=None, checkpoint_every: int = 1,
                 resume: bool = True) -> dict:
    """Adversarial training; returns per-epoch generator/discriminator losses."""
    loop = TrainLoop(_GANDSETask(model, dataset), callbacks=callbacks)
    return loop.fit(verbose=verbose, checkpoint_path=checkpoint_path,
                    checkpoint_every=checkpoint_every, resume=resume)
