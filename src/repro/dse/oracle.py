"""Exhaustive design-space oracle: the dataset labeller.

The paper labels its dataset by running ConfuciuX (RL + GA search) per
sample.  Because the Table-I output space has only 64 x 12 = 768 points and
our cost model is vectorised, the *exact* optimum is cheaper to compute
than an RL approximation — so dataset labels here come from brute force
(see DESIGN.md §2 for the substitution note).  ConfuciuX itself is
implemented in :mod:`repro.search.confuciux` and validated against this
oracle.

Tie-breaking: the label is the *cheapest* configuration (lexicographically
smallest PE then buffer choice) whose cost is within ``tolerance`` of the
true minimum.  A small tolerance (default 2%) mirrors how a resource
assignment search reports results — no architect buys extra PEs for a
sub-2% latency win — and keeps labels stable where the sawtooth latency
landscape has near-ties, which is essential for the dataset to be
learnable at all (set ``tolerance=0`` for the strict argmin).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..maestro import CostModel, Dataflow
from .problem import DSEProblem

__all__ = ["OracleResult", "ExhaustiveOracle"]


@dataclass
class OracleResult:
    """Optimal design points for a batch of inputs."""

    pe_idx: np.ndarray          # (batch,) optimal PE-choice index
    l2_idx: np.ndarray          # (batch,) optimal buffer-choice index
    best_cost: np.ndarray       # (batch,) metric value at the optimum
    cost_grid: np.ndarray | None  # (batch, n_pe, n_l2) if requested


class ExhaustiveOracle:
    """Brute-force optimal (PE, buffer) assignment for the Table-I problem."""

    def __init__(self, problem: DSEProblem, cost_model: CostModel | None = None,
                 tolerance: float = 0.02):
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        self.problem = problem
        self.cost_model = cost_model or CostModel()
        self.tolerance = tolerance

    def solve(self, inputs: np.ndarray, keep_grid: bool = False) -> OracleResult:
        """Label a batch of input tuples ``[M, N, K, dataflow]``.

        Evaluates the full design grid per dataflow group (vectorised), then
        takes the cheapest per-sample configuration within ``tolerance`` of
        the minimum.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.int64))
        batch = len(inputs)
        space = self.problem.space

        pe_idx = np.empty(batch, dtype=np.int64)
        l2_idx = np.empty(batch, dtype=np.int64)
        best = np.empty(batch, dtype=np.float64)
        grid_out = np.empty((batch, space.n_pe, space.n_l2)) if keep_grid else None

        for df in Dataflow:
            mask = inputs[:, 3] == int(df)
            if not mask.any():
                continue
            sub = inputs[mask]
            breakdown = self.cost_model.evaluate_grid(
                sub[:, 0], sub[:, 1], sub[:, 2], df,
                space.pe_choices, space.l2_choices)
            costs = self.problem.metric_array(breakdown)
            flat = costs.reshape(len(sub), -1)
            minima = flat.min(axis=1, keepdims=True)
            # First (i.e. cheapest, by grid ordering) config within tolerance.
            acceptable = flat <= minima * (1.0 + self.tolerance)
            arg = np.argmax(acceptable, axis=1)
            pe_idx[mask] = arg // space.n_l2
            l2_idx[mask] = arg % space.n_l2
            best[mask] = flat[np.arange(len(sub)), arg]
            if keep_grid:
                grid_out[mask] = costs

        return OracleResult(pe_idx=pe_idx, l2_idx=l2_idx,
                            best_cost=best, cost_grid=grid_out)

    def cost_at(self, inputs: np.ndarray, pe_idx, l2_idx) -> np.ndarray:
        """Metric value of arbitrary design points for the given inputs."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.int64))
        space = self.problem.space
        pes, l2 = space.values(np.asarray(pe_idx), np.asarray(l2_idx))
        breakdown = self.cost_model.evaluate_mixed(
            inputs[:, 0], inputs[:, 1], inputs[:, 2], inputs[:, 3], pes, l2)
        return self.problem.metric_array(breakdown)
