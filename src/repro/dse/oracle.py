"""Exhaustive design-space oracle: the dataset labeller.

The paper labels its dataset by running ConfuciuX (RL + GA search) per
sample.  Because the Table-I output space has only 64 x 12 = 768 points and
our cost model is vectorised, the *exact* optimum is cheaper to compute
than an RL approximation — so dataset labels here come from brute force
(see DESIGN.md §2 for the substitution note).  ConfuciuX itself is
implemented in :mod:`repro.search.confuciux` and validated against this
oracle.

Tie-breaking: the label is the *cheapest* configuration (lexicographically
smallest PE then buffer choice) whose cost is within ``tolerance`` of the
true minimum.  A small tolerance (default 2%) mirrors how a resource
assignment search reports results — no architect buys extra PEs for a
sub-2% latency win — and keeps labels stable where the sawtooth latency
landscape has near-ties, which is essential for the dataset to be
learnable at all (set ``tolerance=0`` for the strict argmin).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..maestro import CostModel, Dataflow
from .problem import DSEProblem

__all__ = ["OracleResult", "OracleCacheInfo", "ExhaustiveOracle"]


@dataclass
class OracleResult:
    """Optimal design points for a batch of inputs."""

    pe_idx: np.ndarray          # (batch,) optimal PE-choice index
    l2_idx: np.ndarray          # (batch,) optimal buffer-choice index
    best_cost: np.ndarray       # (batch,) metric value at the optimum
    cost_grid: np.ndarray | None  # (batch, n_pe, n_l2) if requested


@dataclass(frozen=True)
class OracleCacheInfo:
    """LRU label-cache statistics (mirrors ``functools.lru_cache``)."""

    hits: int
    misses: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ExhaustiveOracle:
    """Brute-force optimal (PE, buffer) assignment for the Table-I problem.

    Labels are memoised per input tuple in a bounded LRU cache (disable
    with ``cache_size=0``): repeated design-space sweeps — the serving
    pattern of the batched inference engine — never recompute a label.
    The cache is invalidated whenever ``problem``, ``tolerance`` or
    ``cost_model`` is reassigned, since each changes the labelling
    function.

    All cache operations take an internal lock, so one oracle may be
    shared across threads (the HTTP serving front-end runs one handler
    thread per connection).
    """

    def __init__(self, problem: DSEProblem, cost_model: CostModel | None = None,
                 tolerance: float = 0.02, cache_size: int = 65536):
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self._problem = problem
        self._cost_model = cost_model or CostModel()
        self._tolerance = tolerance
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple, tuple] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    @property
    def problem(self) -> DSEProblem:
        return self._problem

    @problem.setter
    def problem(self, value: DSEProblem) -> None:
        if value is not self._problem:
            self.cache_clear()
        self._problem = value

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    @cost_model.setter
    def cost_model(self, value: CostModel) -> None:
        if value is not self._cost_model:
            self.cache_clear()
        self._cost_model = value

    @property
    def tolerance(self) -> float:
        return self._tolerance

    @tolerance.setter
    def tolerance(self, value: float) -> None:
        if value < 0:
            raise ValueError("tolerance must be >= 0")
        if value != self._tolerance:
            self.cache_clear()
        self._tolerance = value

    def cache_info(self) -> OracleCacheInfo:
        with self._lock:
            return OracleCacheInfo(hits=self._hits, misses=self._misses,
                                   size=len(self._cache),
                                   capacity=self.cache_size)

    def cache_clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0

    def labelling_fingerprint(self) -> str:
        """Digest of everything the label function depends on.

        Two oracles with equal fingerprints produce identical labels, so
        cached entries may move between them (the contract behind
        :class:`repro.serving.PersistentOracleCache`).  Covers the feature
        bounds, design-space choices, metric, tolerance, and every
        technology constant of the cost model.
        """
        doc = {
            "bounds": dataclasses.asdict(self._problem.bounds),
            "pe_choices": self._problem.space.pe_choices.tolist(),
            "l2_choices": self._problem.space.l2_choices.tolist(),
            "metric": self._problem.metric,
            "tolerance": self._tolerance,
            "technology": dataclasses.asdict(self._cost_model.technology),
        }
        blob = json.dumps(doc, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def export_cache(self) -> dict[str, np.ndarray]:
        """Snapshot the LRU cache as flat arrays (oldest entry first).

        Returns ``{"keys": (N, 4) int64, "pe_idx": (N,), "l2_idx": (N,),
        "best_cost": (N,)}`` — directly serialisable with ``np.savez`` and
        accepted back by :meth:`import_cache`.
        """
        with self._lock:
            n = len(self._cache)
            keys = np.empty((n, 4), dtype=np.int64)
            pe_idx = np.empty(n, dtype=np.int64)
            l2_idx = np.empty(n, dtype=np.int64)
            best = np.empty(n, dtype=np.float64)
            for i, (key, entry) in enumerate(self._cache.items()):
                keys[i] = key
                pe_idx[i], l2_idx[i], best[i] = entry
        return {"keys": keys, "pe_idx": pe_idx, "l2_idx": l2_idx,
                "best_cost": best}

    def import_cache(self, keys: np.ndarray, pe_idx: np.ndarray,
                     l2_idx: np.ndarray, best_cost: np.ndarray) -> int:
        """Merge exported entries into the LRU cache (in given order).

        Existing entries are refreshed in place; the usual capacity bound
        applies afterwards (oldest imports evicted first).  Hit/miss
        counters are untouched — imports are warm-up, not traffic.  The
        caller is responsible for fingerprint compatibility
        (:meth:`labelling_fingerprint`); entries labelled under a
        different problem would silently corrupt the cache.  Returns the
        number of entries now resident.
        """
        if self.cache_size == 0:
            return 0
        keys = np.asarray(keys, dtype=np.int64).reshape(-1, 4)
        with self._lock:
            for row, pe, l2, cost in zip(keys.tolist(), np.asarray(pe_idx),
                                         np.asarray(l2_idx),
                                         np.asarray(best_cost)):
                key = tuple(row)
                if key in self._cache:
                    self._cache.move_to_end(key)
                self._cache[key] = (int(pe), int(l2), float(cost))
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
            return len(self._cache)

    # ------------------------------------------------------------------
    def solve(self, inputs: np.ndarray, keep_grid: bool = False) -> OracleResult:
        """Label a batch of input tuples ``[M, N, K, dataflow]``.

        Evaluates the full design grid per dataflow group (vectorised), then
        takes the cheapest per-sample configuration within ``tolerance`` of
        the minimum.  Cached labels are served from the LRU cache; only the
        cache-miss rows hit the cost model.  Grids are never cached, so
        ``keep_grid=True`` always recomputes every row — but the labels it
        produces are still recorded into the cache (with hit/miss
        accounting), so a grid sweep warms later label-only traffic.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.int64))
        if self.cache_size == 0:
            return self._solve_uncached(inputs, keep_grid)
        if keep_grid:
            # Grids are never cached, so a grid request bypasses the LRU
            # read path entirely — but the labels it computes are recorded
            # (and hits/misses counted), so a grid-producing sweep warms the
            # cache for subsequent label-only serving traffic.
            result = self._solve_uncached(inputs, keep_grid)
            with self._lock:
                seen: set[tuple] = set()
                for i, row in enumerate(inputs.tolist()):
                    key = tuple(row)
                    if key in self._cache or key in seen:
                        self._hits += 1
                    else:
                        self._misses += 1
                    seen.add(key)
                    if key in self._cache:
                        self._cache.move_to_end(key)
                    self._cache[key] = (int(result.pe_idx[i]),
                                        int(result.l2_idx[i]),
                                        float(result.best_cost[i]))
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
            return result

        # The lock spans classification AND the miss computation: another
        # thread's eviction between the two would turn a classified hit
        # into a KeyError.  Concurrent solves therefore serialise, which
        # also avoids duplicate labelling of shared miss rows.
        with self._lock:
            keys = [tuple(row) for row in inputs.tolist()]
            cache = self._cache
            miss_order: dict[tuple, int] = {}
            for key in keys:
                if key in cache or key in miss_order:
                    # lru_cache semantics: a duplicate of a row already being
                    # solved in this batch is served from that result (a hit).
                    self._hits += 1
                else:
                    self._misses += 1
                    miss_order[key] = len(miss_order)

            solved_map: dict[tuple, tuple] = {}
            if miss_order:
                miss_rows = np.array(list(miss_order), dtype=np.int64)
                solved = self._solve_uncached(miss_rows, keep_grid=False)
                for i, key in enumerate(miss_order):
                    solved_map[key] = (int(solved.pe_idx[i]),
                                       int(solved.l2_idx[i]),
                                       float(solved.best_cost[i]))

            batch = len(keys)
            pe_idx = np.empty(batch, dtype=np.int64)
            l2_idx = np.empty(batch, dtype=np.int64)
            best = np.empty(batch, dtype=np.float64)
            for i, key in enumerate(keys):
                entry = solved_map.get(key)
                if entry is None:
                    entry = cache[key]
                    cache.move_to_end(key)
                pe_idx[i], l2_idx[i], best[i] = entry

            cache.update(solved_map)
            while len(cache) > self.cache_size:
                cache.popitem(last=False)
        return OracleResult(pe_idx=pe_idx, l2_idx=l2_idx, best_cost=best,
                            cost_grid=None)

    def _solve_uncached(self, inputs: np.ndarray,
                        keep_grid: bool) -> OracleResult:
        """The vectorised grid evaluation behind :meth:`solve`."""
        batch = len(inputs)
        space = self.problem.space

        pe_idx = np.empty(batch, dtype=np.int64)
        l2_idx = np.empty(batch, dtype=np.int64)
        best = np.empty(batch, dtype=np.float64)
        grid_out = np.empty((batch, space.n_pe, space.n_l2)) if keep_grid else None

        for df in Dataflow:
            mask = inputs[:, 3] == int(df)
            if not mask.any():
                continue
            sub = inputs[mask]
            breakdown = self.cost_model.evaluate_grid(
                sub[:, 0], sub[:, 1], sub[:, 2], df,
                space.pe_choices, space.l2_choices)
            costs = self.problem.metric_array(breakdown)
            flat = costs.reshape(len(sub), -1)
            minima = flat.min(axis=1, keepdims=True)
            # First (i.e. cheapest, by grid ordering) config within tolerance.
            acceptable = flat <= minima * (1.0 + self.tolerance)
            arg = np.argmax(acceptable, axis=1)
            pe_idx[mask] = arg // space.n_l2
            l2_idx[mask] = arg % space.n_l2
            best[mask] = flat[np.arange(len(sub)), arg]
            if keep_grid:
                grid_out[mask] = costs

        return OracleResult(pe_idx=pe_idx, l2_idx=l2_idx,
                            best_cost=best, cost_grid=grid_out)

    def cost_at(self, inputs: np.ndarray, pe_idx, l2_idx) -> np.ndarray:
        """Metric value of arbitrary design points for the given inputs."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.int64))
        space = self.problem.space
        pes, l2 = space.values(np.asarray(pe_idx), np.asarray(l2_idx))
        breakdown = self.cost_model.evaluate_mixed(
            inputs[:, 0], inputs[:, 1], inputs[:, 2], inputs[:, 3], pes, l2)
        return self.problem.metric_array(breakdown)
