"""The hardware design space of Table I: 64 PE choices x 12 buffer choices.

The paper's output formulation is ``PE (64), buffer size (12)`` — i.e. the
number of processing elements is one of 64 discrete values and the L2
buffer size one of 12.  Following ConfuciuX's resource-assignment framing,
PE counts are multiples of 8 (8..512) and buffer sizes are powers of two
from 16 KB to 32 MB.  The per-PE L1 size is fixed (ConfuciuX assumption).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DesignSpace", "default_space"]


@dataclass(frozen=True)
class DesignSpace:
    """Discrete (PE count, L2 KB) design space with label encoding helpers.

    The *flat label* of a design point is ``pe_idx * n_l2 + l2_idx`` —
    the classification target used by AIRCHITECT v1's single softmax head.
    """

    pe_choices: np.ndarray
    l2_choices: np.ndarray

    def __post_init__(self):
        pe = np.asarray(self.pe_choices, dtype=np.int64)
        l2 = np.asarray(self.l2_choices, dtype=np.int64)
        if (np.diff(pe) <= 0).any() or (np.diff(l2) <= 0).any():
            raise ValueError("design choices must be strictly increasing")
        object.__setattr__(self, "pe_choices", pe)
        object.__setattr__(self, "l2_choices", l2)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def n_pe(self) -> int:
        return len(self.pe_choices)

    @property
    def n_l2(self) -> int:
        return len(self.l2_choices)

    @property
    def size(self) -> int:
        """Number of design points (768 for the Table-I space)."""
        return self.n_pe * self.n_l2

    # ------------------------------------------------------------------
    # Index <-> value <-> flat label conversions (all vectorised)
    # ------------------------------------------------------------------
    def values(self, pe_idx, l2_idx) -> tuple[np.ndarray, np.ndarray]:
        """(pe_idx, l2_idx) -> (num_pes, l2_kb)."""
        return self.pe_choices[np.asarray(pe_idx)], self.l2_choices[np.asarray(l2_idx)]

    def flat_label(self, pe_idx, l2_idx) -> np.ndarray:
        """(pe_idx, l2_idx) -> single integer class label."""
        return np.asarray(pe_idx) * self.n_l2 + np.asarray(l2_idx)

    def unflatten(self, label) -> tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`flat_label`."""
        label = np.asarray(label)
        return label // self.n_l2, label % self.n_l2

    def snap_pe(self, value) -> np.ndarray:
        """Nearest PE-choice index for continuous predictions."""
        return _nearest_index(self.pe_choices, value)

    def snap_l2(self, value) -> np.ndarray:
        """Nearest buffer-choice index for continuous predictions."""
        return _nearest_index(self.l2_choices, value)

    def grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Meshgrid of all (num_pes, l2_kb) pairs, each shaped (n_pe, n_l2)."""
        return np.meshgrid(self.pe_choices, self.l2_choices, indexing="ij")

    def random_point(self, rng: np.random.Generator) -> tuple[int, int]:
        """Uniformly random (pe_idx, l2_idx)."""
        return int(rng.integers(self.n_pe)), int(rng.integers(self.n_l2))


def _nearest_index(choices: np.ndarray, value) -> np.ndarray:
    """Index of the closest choice for each entry of ``value``."""
    value = np.asarray(value, dtype=np.float64)
    diffs = np.abs(choices[None, :] - value.reshape(-1, 1))
    idx = np.argmin(diffs, axis=-1)
    return idx.reshape(value.shape)


def default_space() -> DesignSpace:
    """The Table-I space: PEs in {8, 16, ..., 512}, L2 in {16 KB .. 32 MB}."""
    return DesignSpace(pe_choices=np.arange(8, 8 * 65, 8),
                       l2_choices=2 ** np.arange(4, 16))
