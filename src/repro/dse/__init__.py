"""``repro.dse`` — the DSE problem formulation of §III-A / Table I.

Design space (64 PE x 12 buffer choices), input feature encoding, the
exhaustive labelling oracle, and dataset generation utilities.
"""

from .dataset import DSEDataset, generate_random_dataset, generate_workload_dataset
from .labelling import ShardedLabeller, label_inputs
from .oracle import ExhaustiveOracle, OracleCacheInfo, OracleResult
from .problem import DSEProblem, FeatureBounds
from .space import DesignSpace, default_space

__all__ = [
    "DSEDataset", "generate_random_dataset", "generate_workload_dataset",
    "ShardedLabeller", "label_inputs",
    "ExhaustiveOracle", "OracleCacheInfo", "OracleResult",
    "DSEProblem", "FeatureBounds",
    "DesignSpace", "default_space",
]
