"""DSE problem formulation: Table-I input features and their model encoding.

Inputs are per-layer workload descriptors: GEMM dimensions ``M <= 256``,
``N <= 1677``, ``K <= 1185`` (integer-valued) and a categorical dataflow
among {weight, output, row} stationary.  The product of feature cardinality
with the output space gives the paper's O(1e9) design-space complexity.

Model-facing encodings:

* ``featurize``    — flat float features: log-normalised M, N, K plus a
  one-hot dataflow (used by the MLP/GAN/VAE baselines).
* ``tokenize``     — a 4-token sequence (M, N, K, dataflow), each token a
  scalar channel, for the transformer encoder: AIRCHITECT v2 treats each
  input parameter as one token of the self-attention sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..maestro import Dataflow
from .space import DesignSpace, default_space

__all__ = ["FeatureBounds", "DSEProblem"]


@dataclass(frozen=True)
class FeatureBounds:
    """Input feature ranges of Table I."""

    m_max: int = 256
    n_max: int = 1677
    k_max: int = 1185
    n_dataflows: int = 3

    @property
    def complexity(self) -> int:
        """Input-space cardinality (the paper's O(1e9) figure comes from
        multiplying this by nothing else — 256 * 1677 * 1185 * 3 ≈ 1.5e9)."""
        return self.m_max * self.n_max * self.k_max * self.n_dataflows


@dataclass(frozen=True)
class DSEProblem:
    """The full problem: feature bounds + design space + optimisation metric.

    ``metric`` selects what the oracle minimises: ``"latency"`` (the paper's
    reward), ``"energy"``, or ``"edp"`` (extension experiments).
    """

    bounds: FeatureBounds = field(default_factory=FeatureBounds)
    space: DesignSpace = field(default_factory=default_space)
    metric: str = "latency"

    def __post_init__(self):
        if self.metric not in ("latency", "energy", "edp"):
            raise ValueError(f"unknown metric {self.metric!r}")

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_inputs(self, count: int, rng: np.random.Generator,
                      log_uniform: bool = True) -> np.ndarray:
        """Random input tuples, shape (count, 4): [M, N, K, dataflow].

        ``log_uniform`` samples dimensions log-uniformly, matching the
        roughly scale-free spread of real DNN layer shapes; uniform sampling
        is kept for ablations.
        """
        b = self.bounds
        if log_uniform:
            def draw(upper):
                return np.exp(rng.uniform(0.0, np.log(upper), size=count)).astype(np.int64)
            m = np.clip(draw(b.m_max), 1, b.m_max)
            n = np.clip(draw(b.n_max), 1, b.n_max)
            k = np.clip(draw(b.k_max), 1, b.k_max)
        else:
            m = rng.integers(1, b.m_max + 1, size=count)
            n = rng.integers(1, b.n_max + 1, size=count)
            k = rng.integers(1, b.k_max + 1, size=count)
        dataflow = rng.integers(0, b.n_dataflows, size=count)
        return np.stack([m, n, k, dataflow], axis=1)

    def clamp_inputs(self, m, n, k) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Clamp real layer dims into the Table-I feature ranges."""
        b = self.bounds
        return (np.clip(np.asarray(m), 1, b.m_max),
                np.clip(np.asarray(n), 1, b.n_max),
                np.clip(np.asarray(k), 1, b.k_max))

    # ------------------------------------------------------------------
    # Model encodings
    # ------------------------------------------------------------------
    def featurize(self, inputs: np.ndarray) -> np.ndarray:
        """Flat features, shape (batch, 6): 3 log-scaled dims + 3-way one-hot."""
        inputs = np.atleast_2d(np.asarray(inputs))
        b = self.bounds
        dims = inputs[:, :3].astype(np.float64)
        maxima = np.array([b.m_max, b.n_max, b.k_max], dtype=np.float64)
        scaled = np.log1p(dims) / np.log1p(maxima)
        onehot = np.zeros((len(inputs), b.n_dataflows))
        onehot[np.arange(len(inputs)), inputs[:, 3].astype(np.int64)] = 1.0
        return np.concatenate([scaled, onehot], axis=1)

    def tokenize(self, inputs: np.ndarray) -> np.ndarray:
        """Token sequence, shape (batch, 4, 2): per-token [value, type-id/3].

        Token order is (M, N, K, dataflow); the value channel for dimension
        tokens is the log-normalised size and for the dataflow token the
        dataflow index scaled to [0, 1].
        """
        inputs = np.atleast_2d(np.asarray(inputs))
        feats = self.featurize(inputs)
        batch = len(inputs)
        values = np.empty((batch, 4))
        values[:, :3] = feats[:, :3]
        values[:, 3] = inputs[:, 3] / max(self.bounds.n_dataflows - 1, 1)
        type_ids = np.broadcast_to(np.arange(4) / 3.0, (batch, 4))
        return np.stack([values, type_ids], axis=2)

    def metric_array(self, breakdown) -> np.ndarray:
        """Pull the optimisation metric out of a CostBreakdown."""
        if self.metric == "latency":
            return breakdown.latency_cycles
        if self.metric == "energy":
            return breakdown.energy_pj
        return breakdown.edp
