"""DSE dataset generation, persistence and splits.

A :class:`DSEDataset` pairs input tuples ``[M, N, K, dataflow]`` with their
oracle-optimal design point (PE index, buffer index) and the optimal metric
value.  Two generators mirror the paper's data pipeline:

* :func:`generate_random_dataset` — randomised input parameters (the
  paper's phrase), log-uniform over the Table-I ranges;
* :func:`generate_workload_dataset` — layers from the 105-model workload
  zoo, crossed with the three dataflows and optionally jitter-augmented to
  reach a target sample count.

The stage-1 performance-prediction target is the z-scored log metric
(:meth:`DSEDataset.perf_targets`): latency spans ~5 orders of magnitude, so
the predictor regresses log-latency, and z-scoring keeps the L1 loss scale
comparable with the contrastive term.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from .labelling import label_inputs
from .oracle import ExhaustiveOracle
from .problem import DSEProblem

__all__ = ["DSEDataset", "generate_random_dataset", "generate_workload_dataset"]


@dataclass
class DSEDataset:
    """Labelled DSE data: inputs, optimal labels and optimal metric values."""

    inputs: np.ndarray      # (B, 4) int64: M, N, K, dataflow
    pe_idx: np.ndarray      # (B,) optimal PE-choice index
    l2_idx: np.ndarray      # (B,) optimal buffer-choice index
    best_cost: np.ndarray   # (B,) optimal metric value (latency by default)

    def __post_init__(self):
        n = len(self.inputs)
        for name in ("pe_idx", "l2_idx", "best_cost"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length mismatch")

    def __len__(self) -> int:
        return len(self.inputs)

    # ------------------------------------------------------------------
    # Training targets
    # ------------------------------------------------------------------
    def perf_targets(self, mean: float | None = None,
                     std: float | None = None) -> tuple[np.ndarray, float, float]:
        """Z-scored log metric, plus the (mean, std) used.

        Pass the training-set statistics when transforming a test set.
        """
        logs = np.log(np.maximum(self.best_cost, 1.0))
        mean = float(logs.mean()) if mean is None else mean
        std = float(logs.std() + 1e-9) if std is None else std
        return (logs - mean) / std, mean, std

    def joint_labels(self, n_l2: int) -> np.ndarray:
        """Flat 768-way class labels (AIRCHITECT v1's target encoding)."""
        return self.pe_idx * n_l2 + self.l2_idx

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray) -> "DSEDataset":
        return DSEDataset(self.inputs[indices], self.pe_idx[indices],
                          self.l2_idx[indices], self.best_cost[indices])

    def split(self, test_fraction: float,
              rng: np.random.Generator) -> tuple["DSEDataset", "DSEDataset"]:
        """Random (train, test) split (the paper uses 80K/20K).

        ``test_fraction`` must lie strictly in (0, 1), and the dataset
        must be large enough that both splits are non-empty.
        """
        if not 0.0 < test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0, 1), "
                             f"got {test_fraction}")
        if len(self) < 2:
            raise ValueError(f"cannot split a {len(self)}-sample dataset "
                             f"into non-empty train and test sets")
        order = rng.permutation(len(self))
        n_test = max(1, int(round(len(self) * test_fraction)))
        n_test = min(n_test, len(self) - 1)   # keep the train split non-empty
        return self.subset(order[n_test:]), self.subset(order[:n_test])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        np.savez_compressed(path, inputs=self.inputs, pe_idx=self.pe_idx,
                            l2_idx=self.l2_idx, best_cost=self.best_cost)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "DSEDataset":
        path = str(path)
        if not path.endswith(".npz"):
            path += ".npz"
        with np.load(path) as archive:
            return cls(inputs=archive["inputs"], pe_idx=archive["pe_idx"],
                       l2_idx=archive["l2_idx"], best_cost=archive["best_cost"])


def generate_random_dataset(problem: DSEProblem, count: int,
                            rng: np.random.Generator,
                            oracle: ExhaustiveOracle | None = None,
                            num_workers: int = 1) -> DSEDataset:
    """Dataset over randomised Table-I inputs, labelled by the exact oracle.

    ``num_workers > 1`` shards the oracle labelling across processes
    (bit-identical labels, see :mod:`repro.dse.labelling`).
    """
    oracle = oracle or ExhaustiveOracle(problem)
    inputs = problem.sample_inputs(count, rng)
    result = label_inputs(oracle, inputs, num_workers)
    return DSEDataset(inputs=inputs, pe_idx=result.pe_idx,
                      l2_idx=result.l2_idx, best_cost=result.best_cost)


def generate_workload_dataset(problem: DSEProblem, layers: np.ndarray,
                              rng: np.random.Generator,
                              target_count: int | None = None,
                              oracle: ExhaustiveOracle | None = None,
                              jitter: float = 0.15,
                              num_workers: int = 1) -> DSEDataset:
    """Dataset from real DNN layers (the 105-workload zoo).

    Parameters
    ----------
    layers:
        Array of shape (L, 3) with per-layer (M, N, K), already lowered to
        GEMM (see :mod:`repro.workloads`).  Dims are clamped to Table-I
        ranges, then crossed with all three dataflows.
    target_count:
        If larger than 3 * L, additional samples are created by multiplying
        random layers with log-normal jitter (std ``jitter``) — emulating
        the density of the paper's 100K-sample dataset while staying on the
        manifold of realistic layer shapes.
    num_workers:
        ``> 1`` shards the oracle labelling across processes
        (bit-identical labels, see :mod:`repro.dse.labelling`).
    """
    oracle = oracle or ExhaustiveOracle(problem)
    layers = np.atleast_2d(np.asarray(layers, dtype=np.int64))
    m, n, k = problem.clamp_inputs(layers[:, 0], layers[:, 1], layers[:, 2])
    base = np.stack([m, n, k], axis=1)

    tuples = [np.concatenate([base, np.full((len(base), 1), df, dtype=np.int64)], axis=1)
              for df in range(problem.bounds.n_dataflows)]
    inputs = np.concatenate(tuples, axis=0)

    if target_count is not None and target_count < len(inputs):
        keep = rng.choice(len(inputs), size=target_count, replace=False)
        inputs = inputs[keep]
    elif target_count is not None and target_count > len(inputs):
        extra = target_count - len(inputs)
        picks = rng.integers(0, len(base), size=extra)
        noise = np.exp(rng.normal(0.0, jitter, size=(extra, 3)))
        dims = np.maximum((base[picks] * noise).astype(np.int64), 1)
        md, nd, kd = problem.clamp_inputs(dims[:, 0], dims[:, 1], dims[:, 2])
        dfs = rng.integers(0, problem.bounds.n_dataflows, size=extra)
        aug = np.stack([md, nd, kd, dfs], axis=1)
        inputs = np.concatenate([inputs, aug], axis=0)

    result = label_inputs(oracle, inputs, num_workers)
    return DSEDataset(inputs=inputs, pe_idx=result.pe_idx,
                      l2_idx=result.l2_idx, best_cost=result.best_cost)
