"""Parallel oracle labelling: shard dataset generation across processes.

Labelling is the dominant cost of building the paper's 100K-sample dataset
(§IV): every sample needs a full 64 x 12 design-grid evaluation.  The grid
solve is pure single-threaded numpy, so — exactly like the serving-side
:class:`repro.serving.ShardedSweepExecutor` this mirrors — it scales with
*processes*:

* each pool worker builds one :class:`ExhaustiveOracle` clone (same
  problem, cost model and tolerance) in its initializer;
* the input batch is split into contiguous shards, dispatched through a
  :class:`~repro.faults.PoolSupervisor`, and reassembled by shard index,
  so the output ordering matches the serial
  :meth:`ExhaustiveOracle.solve` exactly;
* labels are **bit-identical** to the serial path: sharding only
  partitions rows, and the grid evaluation is deterministic — including
  when a killed/hung worker forces shard retries on a rebuilt pool, or
  when repeated pool failure degrades the remaining shards to the serial
  path (the supervisor's self-healing, shared with the sweep executor);
* solved labels are imported back into the parent oracle's LRU cache, so
  later serial solves (and the persistent cache snapshot) stay warm;
* ``num_workers <= 1``, small batches, and platforms that refuse to spawn
  a pool all fall back to the serial path.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings

import numpy as np

from ..faults import PoolBrokenError, PoolSupervisor, RetryPolicy, fire
from .oracle import ExhaustiveOracle, OracleResult

__all__ = ["ShardedLabeller", "label_inputs"]

# Per-worker-process oracle, installed by _init_worker (one per pool
# process; plain module global because pool workers are single-threaded).
_WORKER_ORACLE: ExhaustiveOracle | None = None


def _init_worker(problem, cost_model, tolerance: float) -> None:
    global _WORKER_ORACLE
    # cache_size=0: each worker sees every row exactly once, so the LRU
    # would only add bookkeeping overhead.
    _WORKER_ORACLE = ExhaustiveOracle(problem, cost_model, tolerance,
                                      cache_size=0)


def _label_shard(args: tuple[int, np.ndarray]):
    shard_idx, rows = args
    hit = fire("pool.worker_crash")
    if hit is not None:
        os._exit(int(hit.get("exit_code", 47)))     # SIGKILL-equivalent
    hit = fire("pool.shard_hang")
    if hit is not None:
        time.sleep(float(hit.get("hang_s", 3600.0)))
    result = _WORKER_ORACLE.solve(rows)
    return shard_idx, result.pe_idx, result.l2_idx, result.best_cost


class ShardedLabeller:
    """Fan :meth:`ExhaustiveOracle.solve` across worker processes.

    Parameters
    ----------
    oracle:
        The parent oracle; workers clone its problem/cost-model/tolerance
        (i.e. its :meth:`~ExhaustiveOracle.labelling_fingerprint`), and
        sharded results warm its cache.
    num_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8.  ``<= 1``
        means serial (no pool is ever created).
    min_shard_size / max_shard_size:
        Batches smaller than ``2 * min_shard_size`` skip the pool; larger
        batches are cut into shards of at most ``max_shard_size`` rows,
        which bounds each worker's grid-evaluation memory and balances
        load across uneven workers.
    mp_context:
        ``multiprocessing`` start method (default ``"fork"`` where
        available).
    shard_timeout_s:
        Per-shard wall-clock budget before a shard is declared lost and
        re-dispatched on a rebuilt pool.  Labelling shards run a full
        grid evaluation over up to ``max_shard_size`` rows, hence the
        generous default.  ``None`` disables the timeout.
    retry:
        :class:`~repro.faults.RetryPolicy` governing pool rebuilds and
        backoff before the remainder degrades to serial labelling.
    """

    def __init__(self, oracle: ExhaustiveOracle, num_workers: int | None = None,
                 min_shard_size: int = 256, max_shard_size: int = 4096,
                 mp_context: str | None = None,
                 shard_timeout_s: float | None = 600.0,
                 retry: RetryPolicy | None = None):
        if num_workers is None:
            num_workers = min(os.cpu_count() or 1, 8)
        self.oracle = oracle
        self.num_workers = max(1, int(num_workers))
        self.min_shard_size = max(1, int(min_shard_size))
        self.max_shard_size = max(self.min_shard_size, int(max_shard_size))
        if mp_context is None:
            mp_context = "fork" if "fork" in \
                multiprocessing.get_all_start_methods() else "spawn"
        self.mp_context = mp_context
        self._supervisor = PoolSupervisor(
            self._make_pool, shard_timeout_s=shard_timeout_s, retry=retry,
            name="labelling-pool")

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def _pool(self):
        """The supervisor's live pool (None when running serially)."""
        return self._supervisor.pool

    def _make_pool(self):
        """Pool factory for the supervisor; ``None`` = stay serial."""
        if self.num_workers <= 1:
            return None
        try:
            ctx = multiprocessing.get_context(self.mp_context)
            return ctx.Pool(
                self.num_workers, initializer=_init_worker,
                initargs=(self.oracle.problem, self.oracle.cost_model,
                          self.oracle.tolerance))
        except (OSError, ValueError) as exc:
            warnings.warn(f"could not start a {self.num_workers}-worker "
                          f"labelling pool ({exc}); falling back to serial "
                          f"labelling", RuntimeWarning, stacklevel=3)
            self.num_workers = 1
            return None

    def _ensure_pool(self):
        """Create the worker pool once; ``None`` means run serially."""
        if self.num_workers <= 1:
            return None
        return self._supervisor.ensure()

    def close(self) -> None:
        """Terminate the pool; idempotent and exception-safe even when
        the pool's workers have already crashed or been killed."""
        self._supervisor.close()

    def __enter__(self) -> "ShardedLabeller":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def shard(self, inputs: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """Contiguous, order-preserving shards."""
        shard_size = max(self.min_shard_size,
                         -(-len(inputs) // self.num_workers))
        shard_size = min(shard_size, self.max_shard_size)
        return [(i, inputs[start:start + shard_size])
                for i, start in enumerate(range(0, len(inputs), shard_size))]

    def label(self, inputs: np.ndarray) -> OracleResult:
        """Sharded drop-in for :meth:`ExhaustiveOracle.solve`."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.int64))
        pool = self._ensure_pool() \
            if len(inputs) >= 2 * self.min_shard_size else None
        if pool is None:
            return self.oracle.solve(inputs)

        shards = self.shard(inputs)
        pe_idx = np.empty(len(inputs), dtype=np.int64)
        l2_idx = np.empty(len(inputs), dtype=np.int64)
        best = np.empty(len(inputs), dtype=np.float64)
        offsets = np.cumsum([0] + [len(rows) for _, rows in shards])
        # Shards reassemble by index, so completion order is irrelevant;
        # shards the pool lost for good are solved serially — the same
        # deterministic grid evaluation, bit-identical labels.
        try:
            results = self._supervisor.run(_label_shard, shards)
        except PoolBrokenError as exc:
            results = exc.completed
            for idx in exc.pending:
                solved = self.oracle.solve(shards[idx][1])
                results[idx] = (idx, solved.pe_idx, solved.l2_idx,
                                solved.best_cost)
        for idx, pe, l2, cost in results.values():
            sl = slice(offsets[idx], offsets[idx + 1])
            pe_idx[sl], l2_idx[sl], best[sl] = pe, l2, cost
        # Warm the parent cache: later serial solves (and persistent-cache
        # snapshots) reuse these labels instead of recomputing them.
        self.oracle.import_cache(inputs, pe_idx, l2_idx, best)
        return OracleResult(pe_idx=pe_idx, l2_idx=l2_idx, best_cost=best,
                            cost_grid=None)


def label_inputs(oracle: ExhaustiveOracle, inputs: np.ndarray,
                 num_workers: int | None = 1) -> OracleResult:
    """Label a batch, sharding across ``num_workers`` processes when > 1."""
    if num_workers is not None and num_workers > 1:
        with ShardedLabeller(oracle, num_workers=num_workers) as labeller:
            return labeller.label(inputs)
    return oracle.solve(inputs)
