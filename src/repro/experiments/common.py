"""Shared experiment plumbing: cached datasets and trained models.

All table/figure runners pull their data and models from here, so a suite
of benchmarks trains each model once.  Caching is on-disk (see
:class:`repro.experiments.harness.Workspace`) keyed by scale name + seed.

Training runs through the unified :mod:`repro.train` engine: every model
getter checkpoints into the workspace while fitting, so an interrupted
experiment resumes mid-run instead of retraining from scratch (checkpoints
are deleted once the final model is cached).  Dataset generation accepts
``num_workers`` to shard oracle labelling across processes.
"""

from __future__ import annotations

import numpy as np

from ..baselines import (GANDSE, GANDSEConfig, AirchitectV1, V1Config, VAESA,
                         VAESAConfig, train_gandse, train_v1, train_vaesa)
from ..core import (AirchitectV2, Stage1Config, Stage1Trainer, Stage2Config,
                    Stage2Trainer)
from ..dse import (DSEDataset, DSEProblem, ExhaustiveOracle,
                   generate_workload_dataset)
from ..train import ExecutionMonitor
from ..workloads import all_training_layers
from .harness import ExperimentScale, Workspace, get_scale

__all__ = ["get_problem", "get_datasets", "get_v2", "get_v1", "get_gandse",
           "get_vaesa", "stage_configs"]


def get_problem() -> DSEProblem:
    """The canonical Table-I problem instance."""
    return DSEProblem()


def get_datasets(scale, workspace: Workspace | None = None,
                 problem: DSEProblem | None = None,
                 num_workers: int = 1) -> tuple[DSEDataset, DSEDataset]:
    """(train, test) datasets from the 105-workload zoo, cached on disk.

    ``num_workers > 1`` shards the oracle labelling across processes
    (bit-identical labels, so the cache key does not depend on it).
    """
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = problem or get_problem()

    train_path = workspace.dataset_key(scale, "train")
    test_path = workspace.dataset_key(scale, "test")
    if workspace.has(train_path) and workspace.has(test_path):
        return DSEDataset.load(train_path), DSEDataset.load(test_path)

    rng = np.random.default_rng(scale.seed)
    total = scale.train_samples + scale.test_samples
    dataset = generate_workload_dataset(problem, all_training_layers(), rng,
                                        target_count=total,
                                        num_workers=num_workers)
    train, test = dataset.split(scale.test_samples / len(dataset), rng)
    train.save(train_path)
    test.save(test_path)
    return train, test


def stage_configs(scale, use_contrastive: bool = True,
                  use_perf: bool = True) -> tuple[Stage1Config, Stage2Config]:
    """Stage-1/2 training configs at the given scale."""
    scale = get_scale(scale)
    s1 = Stage1Config(epochs=scale.stage1_epochs,
                      use_contrastive=use_contrastive, use_perf=use_perf,
                      seed=scale.seed)
    s2 = Stage2Config(epochs=scale.stage2_epochs, seed=scale.seed + 1)
    return s1, s2


def _cached_model(workspace: Workspace, scale: ExperimentScale, tag: str,
                  build, train):
    """Generic build-or-load through the workspace's model registry:
    ``build()`` makes the module, ``train(model, checkpoint)`` fits it
    (only when no artifact exists).  ``train`` may return a dict of extra
    fingerprint fields (e.g. which execution backend ran the fit); the
    bit-identity contract of the graph/fused paths means the backend never
    changes the artifact, so this is provenance, not identity.

    The fitted model is registered as a manifested artifact (kind,
    config, scale + seed fingerprint), so ``repro serve --registry``
    can discover and route to it; pre-registry workspace caches (plain
    ``save_module`` archives at the same path) still load bit-identically.

    ``checkpoint`` is a workspace path stem the trainer may checkpoint
    into (``<stem>_<stage>.npz``); an interrupted fit resumes from it on
    the next call, and all ``<stem>*`` files are removed once the final
    model is cached.
    """
    registry = workspace.registry
    model_id = workspace.model_id(scale, tag)
    model = build()
    if registry.has(model_id):
        registry.load_into(model_id, model)
        model.eval()
        return model
    checkpoint = workspace.checkpoint_key(scale, tag)
    extra = train(model, checkpoint)
    registry.save(model, model_id, scale=scale.name,
                  fingerprint={"scale": scale.name, "seed": int(scale.seed),
                               "tag": tag, **(extra or {})})
    for stale in checkpoint.parent.glob(checkpoint.name + "*"):
        stale.unlink()
    return model


def get_v2(scale, train_set: DSEDataset, workspace: Workspace | None = None,
           problem: DSEProblem | None = None, head_style: str = "uov",
           num_buckets: int = 16, use_contrastive: bool = True,
           use_perf: bool = True, tag: str | None = None,
           callbacks=()) -> AirchitectV2:
    """Train (or load) an AIRCHITECT v2 variant.

    ``callbacks`` (e.g. a :class:`repro.train.ThroughputMonitor`) are
    attached to both stage fits; they only fire when the model is actually
    trained, not when it loads from the workspace cache.  An
    :class:`~repro.train.ExecutionMonitor` always rides along, so the
    registry manifest records which execution backend (eager / fused /
    graph) actually trained the artifact.
    """
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = problem or get_problem()
    tag = tag or (f"v2_{head_style}_k{num_buckets}"
                  f"_c{int(use_contrastive)}p{int(use_perf)}")

    def build() -> AirchitectV2:
        rng = np.random.default_rng(scale.seed + 17)
        config = scale.model_config(head_style=head_style,
                                    num_buckets=num_buckets)
        return AirchitectV2(config, problem, rng)

    def fit(model: AirchitectV2, checkpoint) -> dict:
        s1, s2 = stage_configs(scale, use_contrastive, use_perf)
        execution = ExecutionMonitor()
        cbs = tuple(callbacks) + (execution,)
        Stage1Trainer(model, s1).train(
            train_set, callbacks=cbs,
            checkpoint_path=f"{checkpoint}_stage1.npz")
        Stage2Trainer(model, s2).train(
            train_set, callbacks=cbs,
            checkpoint_path=f"{checkpoint}_stage2.npz")
        return {"backend": execution.summary()["backend"]}

    return _cached_model(workspace, scale, tag, build, fit)


def get_v1(scale, train_set: DSEDataset, workspace: Workspace | None = None,
           problem: DSEProblem | None = None,
           head_style: str = "joint", callbacks=()) -> AirchitectV1:
    """Train (or load) the AIRCHITECT v1 baseline."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = problem or get_problem()

    def build() -> AirchitectV1:
        rng = np.random.default_rng(scale.seed + 29)
        config = V1Config(epochs=scale.baseline_epochs, head_style=head_style,
                          seed=scale.seed)
        return AirchitectV1(config, problem, rng)

    return _cached_model(
        workspace, scale, f"v1_{head_style}", build,
        lambda model, ckpt: train_v1(model, train_set, callbacks=callbacks,
                                     checkpoint_path=f"{ckpt}.npz"))


def get_gandse(scale, train_set: DSEDataset,
               workspace: Workspace | None = None,
               problem: DSEProblem | None = None, callbacks=()) -> GANDSE:
    """Train (or load) the GANDSE baseline."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = problem or get_problem()

    def build() -> GANDSE:
        rng = np.random.default_rng(scale.seed + 41)
        config = GANDSEConfig(epochs=scale.baseline_epochs, seed=scale.seed)
        return GANDSE(config, problem, rng)

    return _cached_model(
        workspace, scale, "gandse", build,
        lambda model, ckpt: train_gandse(model, train_set, callbacks=callbacks,
                                         checkpoint_path=f"{ckpt}.npz"))


def get_vaesa(scale, train_set: DSEDataset,
              workspace: Workspace | None = None,
              problem: DSEProblem | None = None, callbacks=()) -> VAESA:
    """Train (or load) the VAESA baseline."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = problem or get_problem()

    def build() -> VAESA:
        rng = np.random.default_rng(scale.seed + 53)
        config = VAESAConfig(epochs=scale.baseline_epochs, seed=scale.seed)
        return VAESA(config, problem, rng)

    return _cached_model(
        workspace, scale, "vaesa", build,
        lambda model, ckpt: train_vaesa(model, train_set, callbacks=callbacks,
                                        checkpoint_path=f"{ckpt}.npz"))
