"""Extension ablations beyond the paper's figures.

Three studies the paper's design choices imply but do not plot:

* :func:`run_deployment_ablation` — Method 1 vs Method 2 (§III-E mentions
  both; Fig. 7 demonstrates only Method 1).  Method 1 should dominate by
  construction; the interesting quantity is *how much* Method 2 gives up.
* :func:`run_metric_ablation` — the DSE formulation is metric-agnostic
  (§III-A fixes latency as the reward); re-labelling with energy / EDP
  shifts the optimal-design distribution toward smaller configurations.
* :func:`run_tolerance_ablation` — the oracle's epsilon-cheapest rule (see
  DESIGN.md §5): label stability and resource savings as the tolerance
  grows.
"""

from __future__ import annotations

import numpy as np

from ..core import DeploymentEvaluator
from ..dse import DSEProblem, ExhaustiveOracle
from ..workloads import build_workload
from .common import get_datasets, get_problem, get_v2
from .harness import Workspace, get_scale, render_table

__all__ = ["run_deployment_ablation", "run_metric_ablation",
           "run_tolerance_ablation"]


def run_deployment_ablation(scale=None,
                            workspace: Workspace | None = None) -> dict:
    """Method 1 vs Method 2 vs oracle across the held-out models."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = get_problem()
    train, _ = get_datasets(scale, workspace, problem)
    model = get_v2(scale, train, workspace, problem)
    evaluator = DeploymentEvaluator(problem)

    rows = []
    results = {}
    for name in scale.deployment_models:
        workload = build_workload(name)
        tuples = evaluator.layer_inputs(workload)
        pe, l2 = model.predict_indices(tuples)
        m1 = evaluator.method1(workload, pe, l2)
        m2 = evaluator.method2(workload, pe, l2)
        oracle = evaluator.oracle_deployment(workload)
        results[name] = {"method1": m1, "method2": m2, "oracle": oracle}
        rows.append([name,
                     m1.total_latency / oracle.total_latency,
                     m2.total_latency / oracle.total_latency])

    table = render_table(["model", "method1 / oracle", "method2 / oracle"],
                         rows, title="Deployment ablation (lower is better)")
    return {"results": results, "table": table, "rows": rows}


def run_metric_ablation(scale=None, workspace: Workspace | None = None,
                        samples: int = 2000) -> dict:
    """How the optimal-design distribution shifts with the DSE metric."""
    scale = get_scale(scale)
    rng = np.random.default_rng(scale.seed)
    base = DSEProblem()
    inputs = base.sample_inputs(samples, rng)

    stats = {}
    rows = []
    for metric in ("latency", "energy", "edp"):
        problem = DSEProblem(metric=metric)
        oracle = ExhaustiveOracle(problem)
        result = oracle.solve(inputs)
        mean_pe = float(problem.space.pe_choices[result.pe_idx].mean())
        mean_l2 = float(problem.space.l2_choices[result.l2_idx].mean())
        distinct = len(np.unique(result.pe_idx * problem.space.n_l2
                                 + result.l2_idx))
        stats[metric] = {"mean_pes": mean_pe, "mean_l2_kb": mean_l2,
                         "distinct_optima": distinct}
        rows.append([metric, mean_pe, mean_l2, distinct])

    table = render_table(
        ["metric", "mean optimal PEs", "mean optimal L2 (KB)",
         "distinct optima"],
        rows, title="Optimisation-metric ablation")
    return {"stats": stats, "table": table, "inputs": inputs}


def run_tolerance_ablation(scale=None, samples: int = 2000,
                           tolerances=(0.0, 0.02, 0.05, 0.10)) -> dict:
    """Label stability / resource cost of the epsilon-cheapest oracle rule."""
    scale = get_scale(scale)
    rng = np.random.default_rng(scale.seed)
    problem = DSEProblem()
    inputs = problem.sample_inputs(samples, rng)

    reference = ExhaustiveOracle(problem, tolerance=0.0).solve(inputs)
    rows = []
    stats = {}
    for tol in tolerances:
        result = ExhaustiveOracle(problem, tolerance=tol).solve(inputs)
        pes = problem.space.pe_choices[result.pe_idx]
        cost_ratio = float((result.best_cost
                            / np.maximum(reference.best_cost, 1e-12)).mean())
        distinct = len(np.unique(result.pe_idx * problem.space.n_l2
                                 + result.l2_idx))
        stats[tol] = {"mean_pes": float(pes.mean()),
                      "mean_cost_ratio": cost_ratio,
                      "distinct_optima": distinct}
        rows.append([tol, float(pes.mean()), cost_ratio, distinct])

    table = render_table(
        ["tolerance", "mean optimal PEs", "cost vs strict optimum",
         "distinct optima"],
        rows, title="Oracle tolerance ablation")
    return {"stats": stats, "table": table}
