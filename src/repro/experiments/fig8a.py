"""Figure 8(a): BO convergence — contrastive embedding vs. VAE latent space.

Following §IV-D, BO searches (for one target workload, Llama2-7B in the
paper):

* the **contrastive embedding space** built by AIRCHITECT v2's stage-1
  encoder, decoded to hardware configurations by the trained stage-2
  decoder, and
* the **VAE latent space** of VAESA, decoded by the VAE decoder.

Each BO step's decoded configuration is scored with the true cost model
(model-level latency, deployment-style).  Since GP-BO degrades in high
dimensions, the contrastive embedding is searched through its top
principal subspace matched to the VAE's latent dimensionality (documented
substitution; the VAE space is its own native dimensionality).  Curves are
normalised by the exhaustive deployment optimum, so "1.0" is the best
achievable configuration.

Claim to reproduce: searching the contrastive space converges faster and
reaches a lower final latency than the VAE space.
"""

from __future__ import annotations

import numpy as np

from ..analysis import PCA
from ..core import DeploymentEvaluator
from ..nn import Tensor, no_grad
from ..search.bo import BOConfig, bayesian_optimization
from ..workloads import build_workload
from .common import get_datasets, get_problem, get_v2, get_vaesa
from .harness import Workspace, get_scale

__all__ = ["run_fig8a"]


def run_fig8a(scale=None, workspace: Workspace | None = None,
              target_model: str | None = None) -> dict:
    """Run the two BO searches and return normalised convergence curves."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = get_problem()
    train, _ = get_datasets(scale, workspace, problem)

    target_model = target_model or next(
        (m for m in scale.deployment_models if "llama" in m),
        scale.deployment_models[0])
    workload = build_workload(target_model)
    evaluator = DeploymentEvaluator(problem)
    optimum = evaluator.oracle_deployment(workload).total_latency
    space = problem.space

    def config_cost(pe_idx: int, l2_idx: int) -> float:
        pes = int(space.pe_choices[pe_idx])
        l2 = int(space.l2_choices[l2_idx])
        return evaluator.model_latency(workload, pes, l2)

    bo_cfg = BOConfig(iterations=scale.bo_iterations)
    results = {}

    # ------------------------------------------------------------------
    # Contrastive embedding + stage-2 decoder
    # ------------------------------------------------------------------
    v2 = get_v2(scale, train, workspace, problem)
    vaesa = get_vaesa(scale, train, workspace, problem)
    latent_dim = vaesa.config.latent_dim

    with no_grad():
        sample = train.inputs[np.random.default_rng(0).choice(
            len(train), size=min(4096, len(train)), replace=False)]
        z_train = v2.embed(sample).numpy()
    pca = PCA(n_components=min(latent_dim, z_train.shape[1]))
    coords = pca.fit_transform(z_train)
    lo, hi = np.percentile(coords, 1, axis=0), np.percentile(coords, 99, axis=0)

    def decode_contrastive(point: np.ndarray) -> tuple[int, int]:
        z = point @ pca.components_ + pca.mean_
        with no_grad():
            pe_logits, l2_logits = v2.decoder(Tensor(z[None, :]))
            pe = int(v2.pe_codec.decode_to_choice(
                pe_logits.sigmoid().numpy())[0])
            l2 = int(v2.l2_codec.decode_to_choice(
                l2_logits.sigmoid().numpy())[0])
        return pe, l2

    rng = np.random.default_rng(scale.seed + 113)
    contrastive = bayesian_optimization(
        lambda x: config_cost(*decode_contrastive(x)),
        np.stack([lo, hi], axis=1), rng, bo_cfg)
    results["contrastive_bo"] = contrastive

    # ------------------------------------------------------------------
    # VAESA latent space + VAE decoder
    # ------------------------------------------------------------------
    box = vaesa.config.latent_box
    bounds = np.array([[-box, box]] * latent_dim)

    def decode_vae(point: np.ndarray) -> tuple[int, int]:
        pe, l2 = vaesa.decode_to_indices(point[None, :])
        return int(pe[0]), int(l2[0])

    rng = np.random.default_rng(scale.seed + 113)
    vae_result = bayesian_optimization(
        lambda x: config_cost(*decode_vae(x)), bounds, rng, bo_cfg)
    results["vaesa_bo"] = vae_result

    curves = {name: np.asarray(res.history) / optimum
              for name, res in results.items()}
    return {"results": results, "curves": curves, "optimum": optimum,
            "target_model": target_model,
            "final": {name: float(curve[-1]) for name, curve in curves.items()}}
