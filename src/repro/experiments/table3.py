"""Table III: layer-level prediction accuracy vs. learning-based baselines.

GANDSE [16], AIRCHITECT v1 [5] and AIRCHITECT v2, trained and evaluated on
the same dataset.  Paper: 84.39 / 77.60 / 91.17 % — the ordering to
reproduce is v1 < GANDSE < v2.
"""

from __future__ import annotations

from ..core import evaluate_model, evaluate_predictions
from ..dse import ExhaustiveOracle
from .common import get_datasets, get_gandse, get_problem, get_v1, get_v2
from .harness import Workspace, get_scale, render_table

__all__ = ["run_table3"]


def run_table3(scale=None, workspace: Workspace | None = None) -> dict:
    """Train all three techniques and score them on the shared test set."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = get_problem()
    train, test = get_datasets(scale, workspace, problem)
    oracle = ExhaustiveOracle(problem)

    results = {}

    gandse = get_gandse(scale, train, workspace, problem)
    pe, l2 = gandse.predict_indices(test.inputs)
    results["gandse"] = evaluate_predictions(problem, test, pe, l2,
                                             oracle=oracle)

    v1 = get_v1(scale, train, workspace, problem)
    pe, l2 = v1.predict_indices(test.inputs)
    results["airchitect_v1"] = evaluate_predictions(
        problem, test, pe, l2, pe_codec=v1.pe_codec, l2_codec=v1.l2_codec,
        oracle=oracle)

    v2 = get_v2(scale, train, workspace, problem)
    results["airchitect_v2"] = evaluate_model(v2, test, oracle=oracle)

    rows = [[name, 100.0 * metrics.accuracy, 100.0 * metrics.bucket_accuracy,
             100.0 * metrics.mean_regret]
            for name, metrics in results.items()]
    table = render_table(
        ["method", "accuracy (%)", "bucket acc (%)", "regret (%)"],
        rows, title="Table III: comparison with learning-based techniques")
    return {"results": results, "table": table, "rows": rows}
