"""Figure 4: problem-space complexity visualisation.

Input features projected onto their two principal components (xy-plane)
against the optimal output configuration plotted into UOV buckets
(z-axis).  The paper uses this to argue the mapping is irregular enough to
need a sophisticated model (not decision trees / SVMs); we additionally
quantify that irregularity with a nearest-neighbour label-disagreement
score.
"""

from __future__ import annotations

import numpy as np

from ..analysis import PCA
from ..uov import UOVCodec
from .common import get_datasets, get_problem
from .harness import Workspace, get_scale

__all__ = ["run_fig4"]


def run_fig4(scale=None, workspace: Workspace | None = None,
             num_buckets: int = 16) -> dict:
    """PCA scatter data + bucket labels + irregularity score."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = get_problem()
    train, _ = get_datasets(scale, workspace, problem)

    pca = PCA(n_components=2)
    coords = pca.fit_transform(problem.featurize(train.inputs))

    pe_codec = UOVCodec(problem.space.n_pe, num_buckets)
    l2_codec = UOVCodec(problem.space.n_l2, num_buckets)
    buckets = (pe_codec.bucket_labels(train.pe_idx) * num_buckets
               + l2_codec.bucket_labels(train.l2_idx))

    # Nearest-neighbour label disagreement in PCA space: high values mean
    # close inputs want different configurations (the Fig. 4 irregularity).
    rng = np.random.default_rng(scale.seed)
    take = min(1024, len(coords))
    pick = rng.choice(len(coords), size=take, replace=False)
    sub, lab = coords[pick], buckets[pick]
    dists = ((sub[:, None, :] - sub[None, :, :]) ** 2).sum(-1)
    np.fill_diagonal(dists, np.inf)
    nearest = dists.argmin(axis=1)
    disagreement = float((lab != lab[nearest]).mean())

    return {
        "pca_coords": coords,
        "output_buckets": buckets,
        "explained_variance": pca.explained_variance_ratio_,
        "num_distinct_buckets": int(len(np.unique(buckets))),
        "nn_label_disagreement": disagreement,
        "input_space_complexity": problem.bounds.complexity,
        "output_space_size": problem.space.size,
    }
