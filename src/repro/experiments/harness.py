"""Experiment harness: scales, seeding, caching and table rendering.

Every table/figure runner takes an :class:`ExperimentScale`, which fixes
dataset size, training epochs and model width.  Three presets:

* ``tiny``  — seconds; used by the test suite to exercise every code path.
* ``small`` — minutes; the default for ``benchmarks/`` (results recorded in
  EXPERIMENTS.md come from this scale).
* ``full``  — the paper-faithful 80K/20K split and long training; hours on
  CPU, provided for completeness.

A :class:`Workspace` caches generated datasets and trained models on disk
(keyed by scale + seed) so that the per-figure benchmarks share one
training run instead of re-training seven times.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..core import ModelConfig

__all__ = ["ExperimentScale", "SCALES", "get_scale", "Workspace", "render_table"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for wall-clock time."""

    name: str
    train_samples: int
    test_samples: int
    stage1_epochs: int
    stage2_epochs: int
    baseline_epochs: int
    d_model: int
    embed_dim: int
    n_heads: int
    n_layers: int
    bo_iterations: int
    deployment_models: tuple[str, ...]
    seed: int = 0

    def model_config(self, **overrides) -> ModelConfig:
        """The AIRCHITECT v2 model configuration at this scale."""
        base = dict(d_model=self.d_model, embed_dim=self.embed_dim,
                    n_heads=self.n_heads, n_layers=self.n_layers)
        base.update(overrides)
        return ModelConfig(**base)

    def with_seed(self, seed: int) -> "ExperimentScale":
        return replace(self, seed=seed)


SCALES: dict[str, ExperimentScale] = {
    "tiny": ExperimentScale(
        name="tiny", train_samples=800, test_samples=200,
        stage1_epochs=3, stage2_epochs=3, baseline_epochs=3,
        d_model=16, embed_dim=8, n_heads=2, n_layers=1,
        bo_iterations=10,
        deployment_models=("resnet50_224", "bert_base_seq192")),
    "small": ExperimentScale(
        name="small", train_samples=8000, test_samples=2000,
        stage1_epochs=20, stage2_epochs=16, baseline_epochs=25,
        d_model=48, embed_dim=16, n_heads=4, n_layers=2,
        bo_iterations=48,
        deployment_models=("resnet50_224", "llama2_7b_seq2048",
                           "llama3_8b_seq2048", "bert_base_seq192",
                           "gpt2_xl_seq2048", "vit_h14_224",
                           "mobilenetv2_10_192", "vgg16_256")),
    "full": ExperimentScale(
        name="full", train_samples=80000, test_samples=20000,
        stage1_epochs=120, stage2_epochs=60, baseline_epochs=80,
        d_model=96, embed_dim=32, n_heads=8, n_layers=3,
        bo_iterations=200,
        deployment_models=("resnet50_224", "llama2_7b_seq2048",
                           "llama3_8b_seq2048", "bert_base_seq192",
                           "gpt2_xl_seq2048", "vit_h14_224",
                           "mobilenetv2_10_192", "vgg16_256")),
}


def get_scale(name_or_scale) -> ExperimentScale:
    """Resolve a scale by name, defaulting from $REPRO_SCALE, else 'small'."""
    if isinstance(name_or_scale, ExperimentScale):
        return name_or_scale
    if name_or_scale is None:
        name_or_scale = os.environ.get("REPRO_SCALE", "small")
    try:
        return SCALES[name_or_scale]
    except KeyError:
        raise KeyError(f"unknown scale {name_or_scale!r}; "
                       f"choose from {sorted(SCALES)}") from None


class Workspace:
    """Disk cache for datasets and trained models, keyed by scale + seed.

    The root defaults to ``$REPRO_CACHE`` or ``.repro_cache`` under the
    current directory.  Trained models persist through the workspace's
    :attr:`registry` (a :class:`~repro.registry.ModelRegistry` rooted at
    the cache directory), so every cached model is a self-describing
    artifact discoverable by ``repro serve --registry``.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root or os.environ.get("REPRO_CACHE", ".repro_cache"))
        self.root.mkdir(parents=True, exist_ok=True)
        self._registry = None

    @property
    def registry(self):
        """The workspace's model registry (created lazily)."""
        if self._registry is None:
            from ..registry import ModelRegistry
            self._registry = ModelRegistry(self.root)
        return self._registry

    def path(self, *parts: str) -> Path:
        p = self.root.joinpath(*parts)
        p.parent.mkdir(parents=True, exist_ok=True)
        return p

    def dataset_key(self, scale: ExperimentScale, split: str) -> Path:
        return self.path(f"{scale.name}_s{scale.seed}", f"dataset_{split}.npz")

    def model_key(self, scale: ExperimentScale, tag: str) -> Path:
        return self.path(f"{scale.name}_s{scale.seed}", f"model_{tag}.npz")

    def model_id(self, scale: ExperimentScale, tag: str) -> str:
        """The registry id for a cached model (same file as ``model_key``).

        Pre-registry workspaces keep working: the id resolves to the path
        the old ``save_module`` cache used, and the registry loads
        manifest-less archives bit-identically.
        """
        return f"{scale.name}_s{scale.seed}/model_{tag}"

    def checkpoint_key(self, scale: ExperimentScale, tag: str) -> Path:
        """Path *stem* for in-flight training checkpoints of a model.

        Trainers append a stage suffix and ``.npz``; the whole family is
        deleted once the final model is cached.
        """
        return self.path(f"{scale.name}_s{scale.seed}", f"ckpt_{tag}")

    def has(self, path: Path) -> bool:
        return path.exists()


def render_table(headers: list[str], rows: list[list],
                 title: str = "") -> str:
    """Plain-text table rendering for benchmark/README output."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.2f}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for r, row in enumerate(cells):
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if r == 0:
            lines.append(sep)
    return "\n".join(lines)
