"""Figure 9: UOV vs. classification, for both AIRCHITECT v1 and v2.

Four variants — {v1, v2} x {classification, UOV} — compared on prediction
accuracy and output-head size.  Classification for v1 is the original
joint 768-way softmax; for v2 it is per-configuration softmax heads.

Claims to reproduce: UOV improves accuracy for *both* techniques (it is
not v2-specific) while *shrinking* the output heads — the property that
makes UOV scale to larger design spaces.
"""

from __future__ import annotations

from ..core import evaluate_model, evaluate_predictions
from ..dse import ExhaustiveOracle
from .common import get_datasets, get_problem, get_v1, get_v2
from .harness import Workspace, get_scale, render_table

__all__ = ["run_fig9"]


def run_fig9(scale=None, workspace: Workspace | None = None) -> dict:
    """Train the four variants and report accuracy + head sizes."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = get_problem()
    train, test = get_datasets(scale, workspace, problem)
    oracle = ExhaustiveOracle(problem)

    results = {}

    for style in ("joint", "uov"):
        model = get_v1(scale, train, workspace, problem, head_style=style)
        pe, l2 = model.predict_indices(test.inputs)
        metrics = evaluate_predictions(problem, test, pe, l2,
                                       pe_codec=model.pe_codec,
                                       l2_codec=model.l2_codec, oracle=oracle)
        label = "classification" if style == "joint" else "uov"
        results[f"v1_{label}"] = {"metrics": metrics,
                                  "head_params": model.head_parameter_count()}

    for style in ("classification", "uov"):
        model = get_v2(scale, train, workspace, problem, head_style=style)
        metrics = evaluate_model(model, test, oracle=oracle)
        results[f"v2_{style}"] = {"metrics": metrics,
                                  "head_params": model.head_parameter_count()}

    rows = []
    for technique in ("v1", "v2"):
        cls = results[f"{technique}_classification"]
        uov = results[f"{technique}_uov"]
        for label, entry in (("classification", cls), ("uov", uov)):
            rows.append([technique, label,
                         100.0 * entry["metrics"].accuracy,
                         entry["head_params"],
                         entry["head_params"] / cls["head_params"]])

    table = render_table(
        ["technique", "head", "accuracy (%)", "head params", "norm size"],
        rows, title="Fig. 9: UOV vs classification")
    return {"results": results, "table": table, "rows": rows}
