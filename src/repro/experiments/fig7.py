"""Figure 7: model-level deployment latency on unseen DNNs/LLMs.

Every technique produces per-layer hardware recommendations for held-out
models (ResNet-50, Llama2-7B, Llama3-8B, ...) which are evaluated two ways
with the MAESTRO-style cost model:

* **folded** — deployment Method 1 (§III-E): one configuration for the
  whole model, chosen by evaluating each candidate on all layers;
* **per-layer** — each layer runs on its own recommended configuration
  (a reconfigurable/partitionable accelerator), which exposes raw
  per-layer prediction quality without Method 1's candidate-pool rescue.

Latencies are normalised to AIRCHITECT v2 (= 1.0) as in the paper's plot;
the exhaustive deployment oracle is the attainable lower bound.

Paper shape to reproduce: v2 never loses to a baseline, VAESA+BO is the
closest baseline, and the mean baseline-to-v2 ratio is > 1 (the paper
reports ~1.7x at GPU scale).  An honest reproduction note (see
EXPERIMENTS.md): Method-1 folding is remarkably robust — evaluating every
candidate with the true cost model rescues even mediocre predictors — so
the folded spread is much tighter than the per-layer spread.
"""

from __future__ import annotations

import numpy as np

from ..core import DeploymentEvaluator
from ..dse import ExhaustiveOracle
from ..search.bo import BOConfig
from ..workloads import build_workload
from .common import (get_datasets, get_gandse, get_problem, get_v1, get_v2,
                     get_vaesa)
from .harness import Workspace, get_scale, render_table

__all__ = ["run_fig7"]

_METHODS = ("airchitect_v2", "vaesa_bo", "gandse", "airchitect_v1")


def _pooled_predictions(predict, layer_tuples: np.ndarray,
                        n_dataflows: int) -> tuple[np.ndarray, np.ndarray]:
    """Predict configs for every (layer, dataflow) pair and pool them."""
    pe_all, l2_all = [], []
    for df in range(n_dataflows):
        tuples = layer_tuples.copy()
        tuples[:, 3] = df
        pe, l2 = predict(tuples)
        pe_all.append(pe)
        l2_all.append(l2)
    return np.concatenate(pe_all), np.concatenate(l2_all)


def run_fig7(scale=None, workspace: Workspace | None = None) -> dict:
    """Deployment-latency comparison across techniques and unseen models."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = get_problem()
    train, _ = get_datasets(scale, workspace, problem)
    oracle = ExhaustiveOracle(problem)
    evaluator = DeploymentEvaluator(problem)
    space = problem.space

    v2 = get_v2(scale, train, workspace, problem)
    v1 = get_v1(scale, train, workspace, problem)
    gandse = get_gandse(scale, train, workspace, problem)
    vaesa = get_vaesa(scale, train, workspace, problem)
    predictors = {"airchitect_v2": v2.predict_indices,
                  "airchitect_v1": v1.predict_indices,
                  "gandse": gandse.predict_indices}

    n_df = problem.bounds.n_dataflows
    bo_cfg = BOConfig(iterations=scale.bo_iterations)

    folded: dict[str, dict[str, float]] = {}
    per_layer: dict[str, dict[str, float]] = {}
    for name in scale.deployment_models:
        workload = build_workload(name)
        tuples = evaluator.layer_inputs(workload)
        counts = workload.count_array()

        def layer_cost(pe_idx: np.ndarray, l2_idx: np.ndarray) -> float:
            """Count-weighted latency of each layer on its own config."""
            total = 0.0
            for i, (p, l) in enumerate(zip(pe_idx, l2_idx)):
                lat = evaluator.layer_latencies(
                    _single_layer(workload, i),
                    int(space.pe_choices[p]), int(space.l2_choices[l]))
                total += float(lat[0]) * counts[i]
            return total

        fold_entry: dict[str, float] = {}
        layer_entry: dict[str, float] = {}
        for method, predict in predictors.items():
            pe, l2 = predict(tuples)
            layer_entry[method] = layer_cost(pe, l2)
            pe_pool, l2_pool = _pooled_predictions(predict, tuples, n_df)
            fold_entry[method] = evaluator.method1(
                workload, pe_pool, l2_pool).total_latency

        # VAESA+BO: latent-space search per unique layer.
        rng = np.random.default_rng(scale.seed + 97)
        pe_list, l2_list = [], []
        for row in tuples:
            pe_i, l2_i, _ = vaesa.search(row, rng, bo_cfg, oracle=oracle)
            pe_list.append(pe_i)
            l2_list.append(l2_i)
        pe_arr, l2_arr = np.array(pe_list), np.array(l2_list)
        layer_entry["vaesa_bo"] = layer_cost(pe_arr, l2_arr)
        fold_entry["vaesa_bo"] = evaluator.method1(
            workload, pe_arr, l2_arr).total_latency

        fold_entry["oracle"] = evaluator.oracle_deployment(
            workload).total_latency
        # Per-layer oracle: each layer's strict flexible-dataflow optimum
        # (the true lower bound of layer_cost).
        layers = workload.layer_array()
        per_df = [oracle.cost_model.evaluate_grid(
            layers[:, 0], layers[:, 1], layers[:, 2], df,
            space.pe_choices, space.l2_choices).latency_cycles
            for df in range(n_df)]
        best = np.min(np.stack(per_df), axis=0).reshape(len(layers), -1)
        layer_entry["oracle"] = float(
            (best.min(axis=1) * counts).sum())

        folded[name] = fold_entry
        per_layer[name] = layer_entry

    def normalise(table):
        return {name: {m: vals[m] / vals["airchitect_v2"]
                       for m in (*_METHODS, "oracle")}
                for name, vals in table.items()}

    norm_folded = normalise(folded)
    norm_layer = normalise(per_layer)
    baselines = [m for m in _METHODS if m != "airchitect_v2"]
    mean_folded = float(np.mean([norm_folded[n][m] for n in folded
                                 for m in baselines]))
    mean_layer = float(np.mean([norm_layer[n][m] for n in per_layer
                                for m in baselines]))

    def rows_of(norm):
        return [[name] + [norm[name][m] for m in (*_METHODS, "oracle")]
                for name in norm]

    table = (render_table(["model"] + list(_METHODS) + ["oracle"],
                          rows_of(norm_folded),
                          title="Fig. 7 (folded, Method 1): latency "
                                "normalised to v2")
             + "\n\n"
             + render_table(["model"] + list(_METHODS) + ["oracle"],
                            rows_of(norm_layer),
                            title="Fig. 7 (per-layer): latency normalised "
                                  "to v2"))
    return {"latencies": folded, "per_layer_latencies": per_layer,
            "normalized": norm_folded, "normalized_per_layer": norm_layer,
            "mean_baseline_ratio": mean_folded,
            "mean_baseline_ratio_per_layer": mean_layer, "table": table}


def _single_layer(workload, index: int):
    """A one-layer view of a workload (for per-layer evaluation)."""
    from ..workloads import ModelWorkload
    return ModelWorkload(name=f"{workload.name}[{index}]",
                         layers=(workload.layers[index],),
                         counts=(1,))
