"""Table II: stage-1 training-loss ablation.

Four encoder variants — {no extra losses (plain L2 perf regression),
L_perf only, L_C only, L_C + L_perf} — each followed by identical stage-2
decoder training, scored by test prediction accuracy.  The paper reports
79.43 / 81.27 / 89.97 / 91.17 %, i.e. the contrastive term contributes the
bulk of the improvement (+10.54%) and the performance predictor a further
+1.2%; the reproduction checks this *ordering* and the relative magnitude
of the two contributions.
"""

from __future__ import annotations

from ..core import evaluate_model
from ..dse import ExhaustiveOracle
from .common import get_datasets, get_problem, get_v2
from .harness import Workspace, get_scale, render_table

__all__ = ["run_table2", "TABLE2_VARIANTS"]

#: (label, use_contrastive, use_perf) in the paper's row order.
TABLE2_VARIANTS = (
    ("none", False, False),
    ("perf", False, True),
    ("contrastive", True, False),
    ("both", True, True),
)


def run_table2(scale=None, workspace: Workspace | None = None) -> dict:
    """Train the four stage-1 variants and report test accuracy."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = get_problem()
    train, test = get_datasets(scale, workspace, problem)
    oracle = ExhaustiveOracle(problem)

    rows = []
    results = {}
    for label, use_c, use_p in TABLE2_VARIANTS:
        model = get_v2(scale, train, workspace, problem,
                       use_contrastive=use_c, use_perf=use_p)
        metrics = evaluate_model(model, test, oracle=oracle,
                                 compute_regret=True)
        results[label] = metrics
        rows.append([("x" if use_c else ""), ("x" if use_p else ""),
                     100.0 * metrics.accuracy, 100.0 * metrics.bucket_accuracy,
                     100.0 * metrics.mean_regret])

    table = render_table(
        ["L_C", "L_perf", "accuracy (%)", "bucket acc (%)", "regret (%)"],
        rows, title="Table II: AIRCHITECT v2 stage-1 ablations")
    return {"results": results, "table": table, "rows": rows}
