"""``repro.experiments`` — one runner per table/figure of §IV.

See DESIGN.md §4 for the experiment index.  Every runner accepts a scale
('tiny' | 'small' | 'full' or an :class:`ExperimentScale`) and an optional
:class:`Workspace` cache.
"""

from .common import (get_datasets, get_gandse, get_problem, get_v1, get_v2,
                     get_vaesa, stage_configs)
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig7 import run_fig7
from .fig8a import run_fig8a
from .fig8b import DEFAULT_BUCKET_SWEEP, run_fig8b
from .fig9 import run_fig9
from .harness import SCALES, ExperimentScale, Workspace, get_scale, render_table
from .table2 import TABLE2_VARIANTS, run_table2
from .table3 import run_table3

__all__ = [
    "ExperimentScale", "SCALES", "get_scale", "Workspace", "render_table",
    "get_problem", "get_datasets", "get_v2", "get_v1", "get_gandse",
    "get_vaesa", "stage_configs",
    "run_table2", "TABLE2_VARIANTS", "run_table3",
    "run_fig3", "run_fig4", "run_fig5", "run_fig7", "run_fig8a",
    "run_fig8b", "DEFAULT_BUCKET_SWEEP", "run_fig9",
]
