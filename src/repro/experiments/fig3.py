"""Figure 3: the two dataset pathologies motivating AIRCHITECT v2.

(a) the latency landscape over input-feature PCA space is non-uniform and
    non-convex (many local minima, high ruggedness);
(b) the optimal-design-point histogram is long-tailed (few head classes
    dominate).

The runner returns both the plot-ready arrays (PCA coordinates + latency,
label histogram) and the quantitative statistics asserted by the tests.
"""

from __future__ import annotations

import numpy as np

from ..analysis import (PCA, grid_landscape_stats, input_sensitivity,
                        longtail_stats)
from ..dse import ExhaustiveOracle
from .common import get_datasets, get_problem
from .harness import Workspace, get_scale, render_table

__all__ = ["run_fig3"]


def run_fig3(scale=None, workspace: Workspace | None = None,
             grid_samples: int = 64) -> dict:
    """Characterise the dataset's landscape (3a) and label tail (3b)."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = get_problem()
    train, _ = get_datasets(scale, workspace, problem)

    # --- (a) non-uniform landscape over PCA of the input features -------
    pca = PCA(n_components=2)
    coords = pca.fit_transform(problem.featurize(train.inputs))
    norm_latency = np.log(np.maximum(train.best_cost, 1.0))
    norm_latency = (norm_latency - norm_latency.min()) / \
        max(norm_latency.max() - norm_latency.min(), 1e-12)

    # Per-workload design-grid landscapes for convexity statistics.
    rng = np.random.default_rng(scale.seed)
    pick = rng.choice(len(train), size=min(grid_samples, len(train)),
                      replace=False)
    oracle = ExhaustiveOracle(problem)
    solved = oracle.solve(train.inputs[pick], keep_grid=True)
    grid_stats = [grid_landscape_stats(g) for g in solved.cost_grid]
    mean_minima = float(np.mean([s.num_local_minima for s in grid_stats]))
    mean_rugged = float(np.mean([s.ruggedness for s in grid_stats]))
    mean_range = float(np.mean([s.dynamic_range for s in grid_stats]))
    sensitivity = input_sensitivity(train.inputs, train.pe_idx, train.l2_idx,
                                    rng=rng)

    # --- (b) long-tailed label distribution ----------------------------
    labels = train.joint_labels(problem.space.n_l2)
    tail = longtail_stats(labels, problem.space.size)

    rows = [
        ["mean local minima per grid", mean_minima],
        ["mean ruggedness", mean_rugged],
        ["mean max/min latency range", mean_range],
        ["input sensitivity (label dist.)", sensitivity],
        ["distinct optimal points", tail.num_classes_used],
        ["top-5 label share", tail.head_share_top5],
        ["classes for 80% coverage", tail.coverage_80pct],
        ["label gini", tail.gini],
    ]
    table = render_table(["statistic", "value"], rows,
                         title="Fig. 3: dataset landscape / long-tail stats")
    return {
        "pca_coords": coords, "normalized_latency": norm_latency,
        "explained_variance": pca.explained_variance_ratio_,
        "landscape": {"mean_local_minima": mean_minima,
                      "mean_ruggedness": mean_rugged,
                      "mean_dynamic_range": mean_range,
                      "input_sensitivity": sensitivity},
        "longtail": tail, "label_histogram_labels": labels,
        "table": table,
    }
