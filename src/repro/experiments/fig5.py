"""Figure 5: embedding space with vs. without contrastive learning.

Both encoders are trained identically except for the contrastive term;
their test-set embeddings are projected with PCA and scored with
alignment / uniformity / class-separation metrics.  The paper's claim:
contrastive learning yields a *uniform* embedding where classes separate
— quantitatively, separation should rise and uniformity (log potential,
lower = more uniform) should drop.
"""

from __future__ import annotations

import numpy as np

from ..analysis import PCA, embedding_stats
from ..core import contrastive_labels
from ..nn import no_grad
from .common import get_datasets, get_problem, get_v2
from .harness import Workspace, get_scale, render_table

__all__ = ["run_fig5"]


def _embed_all(model, inputs: np.ndarray, batch: int = 2048) -> np.ndarray:
    chunks = []
    with no_grad():
        for start in range(0, len(inputs), batch):
            chunks.append(model.embed(inputs[start:start + batch]).numpy())
    return np.concatenate(chunks, axis=0)


def run_fig5(scale=None, workspace: Workspace | None = None) -> dict:
    """Compare embeddings of contrastive vs. non-contrastive encoders."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = get_problem()
    train, test = get_datasets(scale, workspace, problem)

    with_c = get_v2(scale, train, workspace, problem,
                    use_contrastive=True, use_perf=True)
    without_c = get_v2(scale, train, workspace, problem,
                       use_contrastive=False, use_perf=True)

    labels = contrastive_labels(with_c, test)
    rng = np.random.default_rng(scale.seed)

    out = {}
    rows = []
    for tag, model in (("with_contrastive", with_c),
                       ("without_contrastive", without_c)):
        z = _embed_all(model, test.inputs)
        stats = embedding_stats(z, labels, rng=rng)
        coords = PCA(n_components=2).fit_transform(z)
        out[tag] = {"stats": stats, "pca_coords": coords, "labels": labels}
        rows.append([tag, stats.alignment, stats.uniformity, stats.separation])

    table = render_table(
        ["encoder", "alignment (↓)", "uniformity (↓)", "separation (↑)"],
        rows, title="Fig. 5: embedding space quality")
    out["table"] = table
    return out
