"""Figure 8(b): impact of the number of UOV buckets.

Sweeps K over {1, 4, 8, 16, 32}: accuracy should rise with K and saturate
around K = 16, while model size (output-head parameters) grows
monotonically — the accuracy/size trade-off that picks K = 16 in the
paper.  K = 1 reverts the heads to pure regression; large K approaches
pure classification (the spectrum noted at the end of §IV-D).

The stage-1 encoder is trained once (K = 16 contrastive labels) and shared
across all decoder variants, isolating the head-representation effect.
"""

from __future__ import annotations

import numpy as np

from ..core import (AirchitectV2, Stage2Config, Stage2Trainer, evaluate_model)
from ..dse import ExhaustiveOracle
from .common import get_datasets, get_problem, get_v2, stage_configs
from .harness import Workspace, get_scale, render_table

__all__ = ["run_fig8b", "DEFAULT_BUCKET_SWEEP"]

DEFAULT_BUCKET_SWEEP = (1, 4, 8, 16, 32)


def run_fig8b(scale=None, workspace: Workspace | None = None,
              sweep: tuple[int, ...] = DEFAULT_BUCKET_SWEEP) -> dict:
    """Train per-K decoders over a shared encoder; report accuracy & size."""
    scale = get_scale(scale)
    workspace = workspace or Workspace()
    problem = get_problem()
    train, test = get_datasets(scale, workspace, problem)
    oracle = ExhaustiveOracle(problem)

    # Shared stage-1 encoder from the canonical K=16 model.
    base = get_v2(scale, train, workspace, problem)
    encoder_state = base.encoder.state_dict()

    results = {}
    rows = []
    for k in sweep:
        tag = f"v2_uov_sweepk{k}"
        registry = workspace.registry
        model_id = workspace.model_id(scale, tag)
        rng = np.random.default_rng(scale.seed + 17)
        head_style = "regression" if k == 1 else "uov"
        model = AirchitectV2(scale.model_config(head_style=head_style,
                                                num_buckets=max(k, 1)),
                             problem, rng)
        model.encoder.load_state_dict(encoder_state)
        if registry.has(model_id):
            registry.load_into(model_id, model)
            model.eval()
        else:
            _, s2 = stage_configs(scale)
            Stage2Trainer(model, s2).train(train)
            registry.save(model, model_id, scale=scale.name,
                          fingerprint={"scale": scale.name,
                                       "seed": int(scale.seed), "tag": tag})

        metrics = evaluate_model(model, test, oracle=oracle)
        head_params = model.head_parameter_count()
        results[k] = {"metrics": metrics, "head_params": head_params}
        rows.append([k, 100.0 * metrics.accuracy,
                     100.0 * metrics.bucket_accuracy, head_params])

    max_params = max(r["head_params"] for r in results.values())
    for row, k in zip(rows, sweep):
        row.append(results[k]["head_params"] / max_params)

    table = render_table(
        ["K buckets", "accuracy (%)", "bucket acc (%)", "head params",
         "norm size"],
        rows, title="Fig. 8(b): UOV bucket-count sweep")
    return {"results": results, "table": table, "sweep": list(sweep)}
