"""Shard large design-space sweeps across worker processes.

Python-side forward passes hold the GIL, so beyond one core the batched
engine scales with *processes*, not threads.  The executor:

* writes the model's state dict once (``save_module``) and has each
  worker rebuild + load it in its pool initializer — one model load per
  worker, amortised over every shard that worker serves;
* splits the sweep into contiguous shards, maps them over the pool, and
  reassembles the results by shard index so the output ordering matches
  the single-process :meth:`~repro.core.BatchedDSEPredictor.sweep`
  exactly;
* evaluates ``with_cost`` in the parent (the vectorised oracle pass is
  memory-bound, and keeping it in-parent lets the oracle's LRU/persistent
  cache keep accumulating);
* falls back to the single-process engine when ``num_workers <= 1``, the
  sweep is smaller than one shard, or the platform refuses to spawn a
  pool (sandboxes without ``fork``).

Predictions are bit-identical to the single-process sweep: sharding only
partitions rows, and every row's forward pass is deterministic.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
import warnings

import numpy as np

from ..core import AirchitectV2, BatchedDSEPredictor, BatchPrediction
from ..dse import ExhaustiveOracle
from ..nn import load_module, save_module

__all__ = ["ShardedSweepExecutor"]

# Per-worker-process engine, installed by _init_worker (one per pool
# process; plain module global because pool workers are single-threaded).
_WORKER_ENGINE: BatchedDSEPredictor | None = None


def _init_worker(config, problem, state_path: str, micro_batch_size: int) -> None:
    global _WORKER_ENGINE
    model = AirchitectV2(config, problem, np.random.default_rng(0))
    load_module(model, state_path)
    model.eval()
    _WORKER_ENGINE = BatchedDSEPredictor(model,
                                         micro_batch_size=micro_batch_size)


def _run_shard(args: tuple[int, np.ndarray]) -> tuple[int, np.ndarray, np.ndarray]:
    shard_idx, inputs = args
    pe_idx, l2_idx = _WORKER_ENGINE.predict_indices(inputs)
    return shard_idx, pe_idx, l2_idx


class ShardedSweepExecutor:
    """Run :meth:`BatchedDSEPredictor.sweep`-equivalent sweeps on N processes.

    Parameters
    ----------
    model:
        The trained :class:`AirchitectV2` to replicate into workers.
    num_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8.  ``<= 1``
        means single-process (no pool is ever created).
    micro_batch_size:
        Forwarded to each worker's engine.
    min_shard_size:
        Sweeps smaller than this skip the pool: process fan-out costs
        more than it saves on tiny batches.
    mp_context:
        ``multiprocessing`` start method (default ``"fork"`` where
        available — workers inherit nothing mutable, so fork is safe and
        avoids re-importing the world per worker).
    """

    def __init__(self, model: AirchitectV2, num_workers: int | None = None,
                 micro_batch_size: int = 1024, min_shard_size: int = 256,
                 mp_context: str | None = None):
        if num_workers is None:
            num_workers = min(os.cpu_count() or 1, 8)
        self.model = model
        self.problem = model.problem
        self.num_workers = max(1, int(num_workers))
        self.micro_batch_size = micro_batch_size
        self.min_shard_size = max(1, int(min_shard_size))
        if mp_context is None:
            mp_context = "fork" if "fork" in \
                multiprocessing.get_all_start_methods() else "spawn"
        self.mp_context = mp_context
        self._fallback = BatchedDSEPredictor(model,
                                             micro_batch_size=micro_batch_size)
        self._pool = None
        self._state_dir: tempfile.TemporaryDirectory | None = None
        self._default_oracle: ExhaustiveOracle | None = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        """Create the worker pool once; ``None`` means run single-process."""
        if self._pool is not None or self.num_workers <= 1:
            return self._pool
        self._state_dir = tempfile.TemporaryDirectory(prefix="repro_shard_")
        state_path = os.path.join(self._state_dir.name, "model.npz")
        save_module(self.model, state_path)
        try:
            ctx = multiprocessing.get_context(self.mp_context)
            self._pool = ctx.Pool(
                self.num_workers, initializer=_init_worker,
                initargs=(self.model.config, self.problem, state_path,
                          self.micro_batch_size))
        except (OSError, ValueError) as exc:
            warnings.warn(f"could not start a {self.num_workers}-worker "
                          f"pool ({exc}); falling back to single-process "
                          f"sweeps", RuntimeWarning, stacklevel=3)
            self.num_workers = 1
            self._cleanup_state_dir()
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._cleanup_state_dir()

    def _cleanup_state_dir(self) -> None:
        if self._state_dir is not None:
            self._state_dir.cleanup()
            self._state_dir = None

    def __enter__(self) -> "ShardedSweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def shard(self, inputs: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """Contiguous, order-preserving shards (one per worker, rounded up)."""
        shard_size = max(self.min_shard_size,
                         -(-len(inputs) // self.num_workers))
        return [(i, inputs[start:start + shard_size])
                for i, start in enumerate(range(0, len(inputs), shard_size))]

    def predict_indices(self, inputs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sharded one-shot DSE over pre-built (batch, 4) input tuples."""
        inputs = np.atleast_2d(np.asarray(inputs))
        pool = self._ensure_pool() \
            if len(inputs) >= 2 * self.min_shard_size else None
        if pool is None:
            return self._fallback.predict_indices(inputs)
        shards = self.shard(inputs)
        pe_idx = np.empty(len(inputs), dtype=np.int64)
        l2_idx = np.empty(len(inputs), dtype=np.int64)
        offsets = np.cumsum([0] + [len(rows) for _, rows in shards])
        # imap_unordered: shards reassemble by index, so completion order
        # is irrelevant and the fastest workers never wait on the slowest.
        for idx, pe, l2 in pool.imap_unordered(_run_shard, shards):
            sl = slice(offsets[idx], offsets[idx + 1])
            pe_idx[sl], l2_idx[sl] = pe, l2
        return pe_idx, l2_idx

    def sweep(self, inputs: np.ndarray, with_cost: bool = False,
              oracle: ExhaustiveOracle | None = None) -> BatchPrediction:
        """Sharded drop-in for :meth:`BatchedDSEPredictor.sweep`."""
        inputs = np.atleast_2d(np.asarray(inputs))
        start = time.perf_counter()
        pe_idx, l2_idx = self.predict_indices(inputs)
        predict_elapsed = time.perf_counter() - start
        num_pes, l2_kb = self.problem.space.values(pe_idx, l2_idx)
        cost = None
        if with_cost:
            if oracle is None:
                if self._default_oracle is None:
                    self._default_oracle = ExhaustiveOracle(self.problem)
                oracle = self._default_oracle
            cost = oracle.cost_at(inputs, pe_idx, l2_idx)
        elapsed = time.perf_counter() - start
        return BatchPrediction(inputs=inputs, pe_idx=pe_idx, l2_idx=l2_idx,
                               num_pes=num_pes, l2_kb=l2_kb,
                               predicted_cost=cost, elapsed_s=elapsed,
                               samples_per_sec=len(inputs) / max(elapsed, 1e-12),
                               predict_elapsed_s=predict_elapsed)
