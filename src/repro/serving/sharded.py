"""Shard large design-space sweeps across worker processes.

Python-side forward passes hold the GIL, so beyond one core the batched
engine scales with *processes*, not threads.  The executor:

* writes the model's state dict once (``save_module``) and has each
  worker rebuild + load it in its pool initializer — one model load per
  worker, amortised over every shard that worker serves;
* splits the sweep into contiguous shards, maps them over the pool, and
  reassembles the results by shard index so the output ordering matches
  the single-process :meth:`~repro.core.BatchedDSEPredictor.sweep`
  exactly;
* evaluates ``with_cost`` in the parent (the vectorised oracle pass is
  memory-bound, and keeping it in-parent lets the oracle's LRU/persistent
  cache keep accumulating);
* falls back to the single-process engine when ``num_workers <= 1``, the
  sweep is smaller than one shard, or the platform refuses to spawn a
  pool (sandboxes without ``fork``);
* survives worker failure: shards run under a
  :class:`~repro.faults.PoolSupervisor` with a per-shard timeout, so a
  SIGKILLed or hung worker costs one timeout + a pool rebuild (capped
  exponential backoff), the missing shards are re-dispatched, and after
  repeated pool failure the remainder degrades to the in-process
  engine — results bit-identical to the fault-free run either way,
  because shards are pure functions of their rows reassembled by index;
* with ``autoscale=True``, plans every sweep through an
  :class:`AutoscalePolicy`: worker count and shard size adapt to the
  sweep size and the observed per-worker throughput, and each plan is
  recorded in :attr:`ShardedSweepExecutor.decision_trace` (surfaced by
  the serving front-end's ``GET /stats``).

Predictions are bit-identical to the single-process sweep regardless of
the plan: sharding only partitions rows, and every row's forward pass is
deterministic — so the autoscaled path returns exactly what the
fixed-shard path would.

The worker pool and the model-state temp directory are torn down by
``close()`` (idempotent), by the context manager, or — as a last
resort — by a ``weakref.finalize`` hook at garbage collection or
interpreter exit, so abandoned executors never leak processes or
``repro_shard_*`` directories.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import signal
import tempfile
import time
import warnings
import weakref
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core import AirchitectV2, BatchedDSEPredictor, BatchPrediction
from ..dse import ExhaustiveOracle
from ..faults import PoolBrokenError, PoolSupervisor, RetryPolicy, fire
from ..nn import load_module, save_module

__all__ = ["ShardedSweepExecutor", "AutoscalePolicy", "AutoscaleDecision"]

# Per-worker-process engine, installed by _init_worker (one per pool
# process; plain module global because pool workers are single-threaded).
_WORKER_ENGINE: BatchedDSEPredictor | None = None


def _init_worker(config, problem, state_path: str, micro_batch_size: int) -> None:
    global _WORKER_ENGINE
    # A terminal Ctrl-C lands on the whole foreground process *group*,
    # workers included; dying mid-IPC can wedge the parent's
    # pool.terminate()/join().  The parent owns worker lifecycle, so
    # workers ignore SIGINT and wait to be terminated.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    model = AirchitectV2(config, problem, np.random.default_rng(0))
    load_module(model, state_path)
    model.eval()
    _WORKER_ENGINE = BatchedDSEPredictor(model,
                                         micro_batch_size=micro_batch_size)


def _run_shard(args: tuple[int, np.ndarray]) -> tuple[int, np.ndarray, np.ndarray]:
    shard_idx, inputs = args
    hit = fire("pool.worker_crash")
    if hit is not None:
        os._exit(int(hit.get("exit_code", 47)))     # SIGKILL-equivalent
    hit = fire("pool.shard_hang")
    if hit is not None:
        time.sleep(float(hit.get("hang_s", 3600.0)))
    pe_idx, l2_idx = _WORKER_ENGINE.predict_indices(inputs)
    return shard_idx, pe_idx, l2_idx


def _cleanup_dir(state_dir) -> None:
    """Remove the model-state temp dir (finalizer-safe: tolerates reruns)."""
    if state_dir is not None and os.path.isdir(state_dir.name):
        state_dir.cleanup()


# ----------------------------------------------------------------------
# Autoscaling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AutoscaleDecision:
    """One sweep's plan: how many workers, how big the shards, and why."""

    sweep_size: int
    workers: int            # target parallelism (1 = stay single-process)
    shard_size: int         # rows per shard when pooled
    reason: str

    def as_dict(self) -> dict:
        return {"sweep_size": self.sweep_size, "workers": self.workers,
                "shard_size": self.shard_size, "reason": self.reason}


class AutoscalePolicy:
    """Plan sweeps from their size and the observed per-worker throughput.

    The policy is a pure, deterministic function of its observations, so
    plans are reproducible and unit-testable.  Two exponentially-weighted
    throughput estimates feed it:

    * ``single_rows_per_s`` — rows/sec of the in-process fallback engine;
    * ``pooled_rows_per_worker_s`` — rows/sec *per worker* of pooled runs.

    Decision rules, in order:

    1. Sweeps under ``2 * min_shard_size`` rows stay single-process
       (fan-out costs more than it saves on tiny batches).
    2. Once the single-process rate is known, sweeps it would finish
       within ``min_pool_gain_s`` stay single-process — dispatching to a
       pool cannot win back less time than the dispatch costs.
    3. Once *both* rates are known, a sweep whose predicted
       single-process time beats the predicted pooled time (per-worker
       rate times the planned workers, plus ``min_pool_gain_s`` of
       dispatch) stays single-process.
    4. Otherwise the sweep is pooled on
       ``min(max_workers, sweep_size // min_shard_size)`` workers, with
       ``shards_per_worker`` shards each (a little oversharding lets the
       fast workers absorb the slow ones' tail), never below
       ``min_shard_size`` rows per shard.

    Only *whether and how* to shard is adaptive; the predictions are
    bit-identical under every plan.
    """

    def __init__(self, max_workers: int, min_shard_size: int = 256,
                 shards_per_worker: int = 2, min_pool_gain_s: float = 0.05,
                 ewma: float = 0.5):
        self.max_workers = max(1, int(max_workers))
        self.min_shard_size = max(1, int(min_shard_size))
        self.shards_per_worker = max(1, int(shards_per_worker))
        self.min_pool_gain_s = float(min_pool_gain_s)
        self.ewma = float(ewma)
        self.single_rows_per_s: float | None = None
        self.pooled_rows_per_worker_s: float | None = None

    # ------------------------------------------------------------------
    def _blend(self, current: float | None, sample: float) -> float:
        if current is None:
            return sample
        return (1.0 - self.ewma) * current + self.ewma * sample

    def observe_single(self, rows: int, elapsed_s: float) -> None:
        self.single_rows_per_s = self._blend(
            self.single_rows_per_s, rows / max(elapsed_s, 1e-9))

    def observe_pooled(self, rows: int, workers: int, elapsed_s: float) -> None:
        per_worker = rows / max(elapsed_s, 1e-9) / max(workers, 1)
        self.pooled_rows_per_worker_s = self._blend(
            self.pooled_rows_per_worker_s, per_worker)

    # ------------------------------------------------------------------
    def decide(self, sweep_size: int) -> AutoscaleDecision:
        n = int(sweep_size)
        if n < 2 * self.min_shard_size:
            return AutoscaleDecision(
                n, 1, n or 1,
                f"{n} rows below the {2 * self.min_shard_size}-row pool "
                f"threshold")
        if self.single_rows_per_s is not None:
            eta = n / self.single_rows_per_s
            if eta < self.min_pool_gain_s:
                return AutoscaleDecision(
                    n, 1, n,
                    f"single-process ETA {eta * 1e3:.1f}ms under the "
                    f"{self.min_pool_gain_s * 1e3:.0f}ms pool-gain floor")
        workers = min(self.max_workers, max(1, n // self.min_shard_size))
        shard_size = max(self.min_shard_size,
                         math.ceil(n / (workers * self.shards_per_worker)))
        if self.single_rows_per_s is not None \
                and self.pooled_rows_per_worker_s is not None:
            eta_single = n / self.single_rows_per_s
            eta_pooled = self.min_pool_gain_s \
                + n / (workers * self.pooled_rows_per_worker_s)
            if eta_single <= eta_pooled:
                return AutoscaleDecision(
                    n, 1, n,
                    f"single-process ETA {eta_single * 1e3:.1f}ms beats "
                    f"{workers}-worker pooled ETA {eta_pooled * 1e3:.1f}ms")
        basis = ("observed "
                 f"{self.pooled_rows_per_worker_s:.0f} rows/s/worker"
                 if self.pooled_rows_per_worker_s is not None
                 else "no pooled-throughput observation yet")
        return AutoscaleDecision(
            n, workers, shard_size,
            f"{workers} worker(s) x {self.shards_per_worker} shard(s) "
            f"of <= {shard_size} rows ({basis})")


class ShardedSweepExecutor:
    """Run :meth:`BatchedDSEPredictor.sweep`-equivalent sweeps on N processes.

    Parameters
    ----------
    model:
        The trained :class:`AirchitectV2` to replicate into workers.
    num_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8.  ``<= 1``
        means single-process (no pool is ever created).  With
        ``autoscale`` this is the *ceiling* — the policy may use fewer.
    micro_batch_size:
        Forwarded to each worker's engine.
    min_shard_size:
        Sweeps smaller than this skip the pool: process fan-out costs
        more than it saves on tiny batches.
    mp_context:
        ``multiprocessing`` start method (default ``"fork"`` where
        available — workers inherit nothing mutable, so fork is safe and
        avoids re-importing the world per worker).
    autoscale:
        Plan each sweep through an :class:`AutoscalePolicy` (worker
        count and shard size adapt to sweep size and observed
        throughput) instead of the fixed one-shard-per-worker split.
        Results are bit-identical either way.
    policy:
        Optional pre-configured :class:`AutoscalePolicy` (implies
        ``autoscale=True``); built from ``num_workers`` /
        ``min_shard_size`` otherwise.
    registry / labels:
        Optional :class:`~repro.obs.MetricsRegistry` (plus label
        names/values, e.g. ``{"model": ...}``) into which every
        autoscale decision is published: sweeps by execution mode,
        planned workers, and observed throughput — the scrapeable twin
        of :attr:`decision_trace` — plus the supervisor's recovery
        counters (``repro_retry_total``, ``repro_pool_rebuilds_total``,
        ``repro_pool_degraded_total``).
    shard_timeout_s:
        Per-shard wall-clock budget; a shard with no result by then is
        treated as lost (its worker was killed or hung) and re-dispatched
        on a rebuilt pool.  ``None`` disables the timeout (a lost worker
        then blocks forever — only for debugging).  Spurious timeouts are
        safe: the retry recomputes the same rows bit-identically.
    retry:
        :class:`~repro.faults.RetryPolicy` governing pool rebuilds and
        backoff before degrading to in-process execution.
    """

    def __init__(self, model: AirchitectV2, num_workers: int | None = None,
                 micro_batch_size: int = 1024, min_shard_size: int = 256,
                 mp_context: str | None = None, autoscale: bool = False,
                 policy: AutoscalePolicy | None = None,
                 registry=None, labels: dict | None = None,
                 shard_timeout_s: float | None = 120.0,
                 retry: RetryPolicy | None = None):
        if num_workers is None:
            num_workers = min(os.cpu_count() or 1, 8)
        self.model = model
        self.problem = model.problem
        self.num_workers = max(1, int(num_workers))
        self.micro_batch_size = micro_batch_size
        self.min_shard_size = max(1, int(min_shard_size))
        if mp_context is None:
            mp_context = "fork" if "fork" in \
                multiprocessing.get_all_start_methods() else "spawn"
        self.mp_context = mp_context
        self.policy = policy if policy is not None else (
            AutoscalePolicy(self.num_workers, self.min_shard_size)
            if autoscale else None)
        self.autoscale = self.policy is not None
        self.decision_trace: deque[dict] = deque(maxlen=64)
        self._metrics = None
        self._metric_labels = {str(k): str(v)
                               for k, v in (labels or {}).items()}
        if registry is not None:
            names = tuple(self._metric_labels)
            base = self._metric_labels
            self._metrics = {
                "sweeps": registry.counter(
                    "repro_autoscale_sweeps_total",
                    "Autoscaled sweeps run, by execution mode.",
                    names + ("pooled",)),
                "workers": registry.gauge(
                    "repro_autoscale_workers",
                    "Workers planned by the latest autoscale decision.",
                    names).labels(**base),
                "rows_per_sec": registry.gauge(
                    "repro_autoscale_rows_per_sec",
                    "Throughput of the latest autoscaled sweep.",
                    names).labels(**base),
                "per_worker": registry.gauge(
                    "repro_autoscale_pooled_rows_per_worker_sec",
                    "EWMA per-worker pooled-throughput estimate.",
                    names).labels(**base),
            }
        self._fallback = BatchedDSEPredictor(model,
                                             micro_batch_size=micro_batch_size)
        self._state_dir: tempfile.TemporaryDirectory | None = None
        self._state_finalizer: weakref.finalize | None = None
        self._default_oracle: ExhaustiveOracle | None = None
        self._supervisor = PoolSupervisor(
            self._make_pool, shard_timeout_s=shard_timeout_s, retry=retry,
            name="sweep-pool", registry=registry,
            labels={**self._metric_labels, "component": "sweep"}
            if registry is not None else None)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def _pool(self):
        """The supervisor's live pool (None when running single-process)."""
        return self._supervisor.pool

    def _make_pool(self):
        """Pool factory for the supervisor; ``None`` = stay single-process.

        Called again after every supervised teardown, so a rebuilt pool
        reuses the already-saved model state."""
        if self.num_workers <= 1:
            return None
        if self._state_dir is None:
            self._state_dir = tempfile.TemporaryDirectory(
                prefix="repro_shard_")
            # Last-resort cleanup at GC/interpreter exit: an abandoned
            # executor must not leak its state dir (the supervisor owns
            # the matching hook for worker processes).
            self._state_finalizer = weakref.finalize(self, _cleanup_dir,
                                                     self._state_dir)
            save_module(self.model,
                        os.path.join(self._state_dir.name, "model.npz"))
        state_path = os.path.join(self._state_dir.name, "model.npz")
        try:
            ctx = multiprocessing.get_context(self.mp_context)
            return ctx.Pool(
                self.num_workers, initializer=_init_worker,
                initargs=(self.model.config, self.problem, state_path,
                          self.micro_batch_size))
        except (OSError, ValueError) as exc:
            warnings.warn(f"could not start a {self.num_workers}-worker "
                          f"pool ({exc}); falling back to single-process "
                          f"sweeps", RuntimeWarning, stacklevel=3)
            self.num_workers = 1
            return None

    def _ensure_pool(self):
        """Create the worker pool once; ``None`` means run single-process."""
        if self.num_workers <= 1:
            return None
        return self._supervisor.ensure()

    def close(self) -> None:
        """Terminate the pool and remove the state dir; idempotent and
        exception-safe even when the pool's workers have been killed."""
        self._supervisor.close()
        if self._state_finalizer is not None:
            self._state_finalizer()    # no-op if the finalizer already ran
            self._state_finalizer = None
        self._state_dir = None

    def __enter__(self) -> "ShardedSweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def shard(self, inputs: np.ndarray,
              shard_size: int | None = None) -> list[tuple[int, np.ndarray]]:
        """Contiguous, order-preserving shards.

        Defaults to one shard per worker (rounded up); an autoscale plan
        passes its own ``shard_size``.
        """
        if shard_size is None:
            shard_size = max(self.min_shard_size,
                             -(-len(inputs) // self.num_workers))
        shard_size = max(1, int(shard_size))
        return [(i, inputs[start:start + shard_size])
                for i, start in enumerate(range(0, len(inputs), shard_size))]

    def _run_pooled(self, inputs: np.ndarray,
                    shard_size: int | None) -> tuple[np.ndarray, np.ndarray, int]:
        """Map shards over the supervised pool; returns
        (pe_idx, l2_idx, num_shards).

        Shards reassemble by index, so completion order is irrelevant;
        shards the pool lost for good (worker churn outlasting the retry
        policy) are recomputed in-process — same rows, same deterministic
        forward pass, bit-identical output."""
        shards = self.shard(inputs, shard_size)
        pe_idx = np.empty(len(inputs), dtype=np.int64)
        l2_idx = np.empty(len(inputs), dtype=np.int64)
        offsets = np.cumsum([0] + [len(rows) for _, rows in shards])
        try:
            results = self._supervisor.run(_run_shard, shards)
        except PoolBrokenError as exc:
            results = exc.completed
            for idx in exc.pending:
                pe, l2 = self._fallback.predict_indices(shards[idx][1])
                results[idx] = (idx, pe, l2)
        for idx, pe, l2 in results.values():
            sl = slice(offsets[idx], offsets[idx + 1])
            pe_idx[sl], l2_idx[sl] = pe, l2
        return pe_idx, l2_idx, len(shards)

    def predict_indices(self, inputs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sharded one-shot DSE over pre-built (batch, 4) input tuples."""
        inputs = np.atleast_2d(np.asarray(inputs))
        if self.autoscale:
            return self._predict_autoscaled(inputs)
        pool = self._ensure_pool() \
            if len(inputs) >= 2 * self.min_shard_size else None
        if pool is None:
            return self._fallback.predict_indices(inputs)
        pe_idx, l2_idx, _ = self._run_pooled(inputs, None)
        return pe_idx, l2_idx

    def _predict_autoscaled(self, inputs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Plan, run, observe, and trace one sweep under the policy."""
        decision = self.policy.decide(len(inputs))
        pool = self._ensure_pool() if decision.workers > 1 else None
        record = decision.as_dict()
        start = time.perf_counter()
        if pool is None:
            if decision.workers > 1:   # pool refused to start (no fork)
                record["reason"] += "; pool unavailable, ran single-process"
            pe_idx, l2_idx = self._fallback.predict_indices(inputs)
            elapsed = time.perf_counter() - start
            self.policy.observe_single(len(inputs), elapsed)
            record.update(pooled=False, num_shards=1)
        else:
            pe_idx, l2_idx, num_shards = self._run_pooled(
                inputs, decision.shard_size)
            elapsed = time.perf_counter() - start
            # Actual parallelism is bounded by the pool, not the plan:
            # the pool has num_workers processes and every shard can land
            # on a distinct one.
            self.policy.observe_pooled(
                len(inputs), min(self.num_workers, num_shards), elapsed)
            record.update(pooled=True, num_shards=num_shards,
                          pool_size=self.num_workers)
        record.update(
            elapsed_s=elapsed,
            rows_per_sec=len(inputs) / max(elapsed, 1e-9),
            single_rows_per_sec=self.policy.single_rows_per_s,
            pooled_rows_per_worker_sec=self.policy.pooled_rows_per_worker_s)
        self.decision_trace.append(record)
        if self._metrics is not None:
            self._metrics["sweeps"].labels(
                **self._metric_labels,
                pooled="true" if record["pooled"] else "false").inc()
            self._metrics["workers"].set(decision.workers)
            self._metrics["rows_per_sec"].set(record["rows_per_sec"])
            if self.policy.pooled_rows_per_worker_s is not None:
                self._metrics["per_worker"].set(
                    self.policy.pooled_rows_per_worker_s)
        return pe_idx, l2_idx

    def sweep(self, inputs: np.ndarray, with_cost: bool = False,
              oracle: ExhaustiveOracle | None = None) -> BatchPrediction:
        """Sharded drop-in for :meth:`BatchedDSEPredictor.sweep`."""
        inputs = np.atleast_2d(np.asarray(inputs))
        start = time.perf_counter()
        pe_idx, l2_idx = self.predict_indices(inputs)
        predict_elapsed = time.perf_counter() - start
        num_pes, l2_kb = self.problem.space.values(pe_idx, l2_idx)
        cost = None
        if with_cost:
            if oracle is None:
                if self._default_oracle is None:
                    self._default_oracle = ExhaustiveOracle(self.problem)
                oracle = self._default_oracle
            cost = oracle.cost_at(inputs, pe_idx, l2_idx)
        elapsed = time.perf_counter() - start
        return BatchPrediction(inputs=inputs, pe_idx=pe_idx, l2_idx=l2_idx,
                               num_pes=num_pes, l2_kb=l2_kb,
                               predicted_cost=cost, elapsed_s=elapsed,
                               samples_per_sec=len(inputs) / max(elapsed, 1e-12),
                               predict_elapsed_s=predict_elapsed)
