"""Persist the :class:`~repro.dse.ExhaustiveOracle` label cache across runs.

The oracle's LRU cache makes repeated sweeps cheap *within* one process;
this module makes it survive process boundaries: a snapshot is a single
``.npz`` archive holding the exported entries plus a JSON metadata record
keyed on the oracle's labelling fingerprint (problem bounds, design
space, metric, tolerance, cost-model technology).  A fresh process with
an equivalent oracle warm-starts from the snapshot; a process whose
labelling function differs refuses the load with a warning — stale labels
are worse than cold ones.

A snapshot is a *cache*: losing one costs recomputation, never
correctness.  So every unusable snapshot — stale fingerprint, torn
archive, checksum mismatch, mangled metadata — takes the same logged
skip-and-quarantine path: warn, rename the file out of the way
(``.stale`` / ``.corrupt``), and return 0 so the serving path starts
cold instead of crashing.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np

from ..dse import ExhaustiveOracle
from ..registry.storage import (CorruptArtifactError, atomic_savez,
                                quarantine_artifact, read_verified)

__all__ = ["PersistentOracleCache", "StaleCacheWarning",
           "CorruptCacheWarning"]

_FORMAT_VERSION = 1


class StaleCacheWarning(UserWarning):
    """A snapshot was rejected because its labelling fingerprint differs."""


class CorruptCacheWarning(UserWarning):
    """A snapshot was rejected because the file is torn or bit-rotted."""


class PersistentOracleCache:
    """Disk snapshot/restore for an oracle's LRU label cache.

    Parameters
    ----------
    path:
        Snapshot file (``.npz`` appended if absent).  Parent directories
        are created on save.
    """

    def __init__(self, path: str | os.PathLike):
        path = str(path)
        if not path.endswith(".npz"):
            path += ".npz"
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.is_file()

    # ------------------------------------------------------------------
    def save(self, oracle: ExhaustiveOracle) -> int:
        """Snapshot the oracle's cache; returns the entry count written.

        Writes through the shared :func:`repro.registry.atomic_savez`
        (temp file + rename) so a concurrent reader never sees a torn
        snapshot.
        """
        exported = oracle.export_cache()
        meta = {"format_version": _FORMAT_VERSION,
                "fingerprint": oracle.labelling_fingerprint(),
                "entries": int(len(exported["keys"])),
                "metric": oracle.problem.metric,
                "tolerance": oracle.tolerance,
                "saved_at": time.time()}
        atomic_savez(self.path, {
            "meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **exported})
        return meta["entries"]

    def read_meta(self) -> dict | None:
        """Snapshot metadata, or ``None`` when no (readable) snapshot
        exists — a corrupt snapshot is quarantined with a warning."""
        if not self.exists():
            return None
        try:
            arrays = read_verified(self.path)
            return json.loads(arrays["meta"].tobytes().decode())
        except (CorruptArtifactError, KeyError, UnicodeDecodeError,
                json.JSONDecodeError) as exc:
            self._skip_corrupt(exc)
            return None

    def _skip_corrupt(self, exc: Exception) -> None:
        """The unified skip path for unreadable snapshots: quarantine
        (unless the verified reader already did) + warn + carry on cold."""
        quarantined = getattr(exc, "quarantined_to", None)
        if quarantined is None and self.exists():
            quarantined = quarantine_artifact(str(self.path))
        warnings.warn(
            f"oracle cache {self.path} is corrupt "
            f"({type(exc).__name__}: {exc}); starting cold"
            + (f" (snapshot quarantined to {quarantined})" if quarantined
               else ""),
            CorruptCacheWarning, stacklevel=3)

    def load(self, oracle: ExhaustiveOracle) -> int:
        """Warm the oracle from the snapshot; returns resident entries.

        Returns 0 when no snapshot exists — and likewise, with a logged
        skip, for every *unusable* one: a stale labelling fingerprint or
        format sets the snapshot aside as ``<path>.stale`` with a
        :class:`StaleCacheWarning`; a torn/bit-rotted file is
        quarantined as ``<path>.corrupt`` with a
        :class:`CorruptCacheWarning`.  Either way serving starts cold
        instead of crashing or silently re-tripping on the same file.
        The return value is the oracle's cache size after the import —
        smaller than the snapshot when the oracle's ``cache_size``
        truncates it.
        """
        if not self.exists():
            return 0
        try:
            arrays = read_verified(self.path)
            meta = json.loads(arrays["meta"].tobytes().decode())
            keys, pe_idx = arrays["keys"], arrays["pe_idx"]
            l2_idx, best = arrays["l2_idx"], arrays["best_cost"]
        except (CorruptArtifactError, KeyError, UnicodeDecodeError,
                json.JSONDecodeError) as exc:
            self._skip_corrupt(exc)
            return 0
        expected = oracle.labelling_fingerprint()
        if meta.get("fingerprint") != expected or \
                meta.get("format_version") != _FORMAT_VERSION:
            set_aside = quarantine_artifact(str(self.path), suffix=".stale")
            warnings.warn(
                f"oracle cache {self.path} was labelled under a "
                f"different problem/tolerance/cost-model fingerprint "
                f"({str(meta.get('fingerprint', '?'))[:12]}... != "
                f"{expected[:12]}...); refusing stale load"
                + (f" (snapshot set aside as {set_aside})" if set_aside
                   else ""),
                StaleCacheWarning, stacklevel=2)
            return 0
        return oracle.import_cache(keys, pe_idx, l2_idx, best)
