"""Persist the :class:`~repro.dse.ExhaustiveOracle` label cache across runs.

The oracle's LRU cache makes repeated sweeps cheap *within* one process;
this module makes it survive process boundaries: a snapshot is a single
``.npz`` archive holding the exported entries plus a JSON metadata record
keyed on the oracle's labelling fingerprint (problem bounds, design
space, metric, tolerance, cost-model technology).  A fresh process with
an equivalent oracle warm-starts from the snapshot; a process whose
labelling function differs refuses the load with a warning — stale labels
are worse than cold ones.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np

from ..dse import ExhaustiveOracle
from ..registry.storage import atomic_savez

__all__ = ["PersistentOracleCache", "StaleCacheWarning"]

_FORMAT_VERSION = 1


class StaleCacheWarning(UserWarning):
    """A snapshot was rejected because its labelling fingerprint differs."""


class PersistentOracleCache:
    """Disk snapshot/restore for an oracle's LRU label cache.

    Parameters
    ----------
    path:
        Snapshot file (``.npz`` appended if absent).  Parent directories
        are created on save.
    """

    def __init__(self, path: str | os.PathLike):
        path = str(path)
        if not path.endswith(".npz"):
            path += ".npz"
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.is_file()

    # ------------------------------------------------------------------
    def save(self, oracle: ExhaustiveOracle) -> int:
        """Snapshot the oracle's cache; returns the entry count written.

        Writes through the shared :func:`repro.registry.atomic_savez`
        (temp file + rename) so a concurrent reader never sees a torn
        snapshot.
        """
        exported = oracle.export_cache()
        meta = {"format_version": _FORMAT_VERSION,
                "fingerprint": oracle.labelling_fingerprint(),
                "entries": int(len(exported["keys"])),
                "metric": oracle.problem.metric,
                "tolerance": oracle.tolerance,
                "saved_at": time.time()}
        atomic_savez(self.path, {
            "meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **exported})
        return meta["entries"]

    def read_meta(self) -> dict | None:
        """Snapshot metadata, or ``None`` when no snapshot exists."""
        if not self.exists():
            return None
        with np.load(self.path) as archive:
            return json.loads(archive["meta"].tobytes().decode())

    def load(self, oracle: ExhaustiveOracle) -> int:
        """Warm the oracle from the snapshot; returns resident entries.

        Returns 0 when no snapshot exists.  When the snapshot's labelling
        fingerprint does not match the oracle's, the load is refused: a
        :class:`StaleCacheWarning` is emitted and 0 returned (the cache
        is left untouched).  The return value is the oracle's cache size
        after the import — smaller than the snapshot when the oracle's
        ``cache_size`` truncates it.
        """
        if not self.exists():
            return 0
        with np.load(self.path) as archive:
            meta = json.loads(archive["meta"].tobytes().decode())
            expected = oracle.labelling_fingerprint()
            if meta.get("fingerprint") != expected or \
                    meta.get("format_version") != _FORMAT_VERSION:
                warnings.warn(
                    f"oracle cache {self.path} was labelled under a "
                    f"different problem/tolerance/cost-model fingerprint "
                    f"({meta.get('fingerprint', '?')[:12]}... != "
                    f"{expected[:12]}...); refusing stale load",
                    StaleCacheWarning, stacklevel=2)
                return 0
            return oracle.import_cache(archive["keys"], archive["pe_idx"],
                                       archive["l2_idx"],
                                       archive["best_cost"])
