"""``repro.serving`` — the multi-model DSE serving subsystem.

Turns the batched inference engine (:class:`repro.core.BatchedDSEPredictor`)
into a serving stack:

* :class:`DynamicBatcher` / :class:`RequestQueue` — coalesce concurrent
  single-workload requests into engine micro-batches (size-or-deadline
  flush policy, per-request futures);
* :class:`ShardedSweepExecutor` — split huge sweeps across worker
  processes and reassemble the shards in order; with
  :class:`AutoscalePolicy`, worker count and shard size adapt to sweep
  size and observed per-worker throughput (decision-traced, results
  bit-identical to the fixed-shard path);
* :class:`PersistentOracleCache` — snapshot/restore the oracle's label
  cache across runs, fingerprint-guarded against stale labels;
* :class:`DSEServer` — a stdlib threaded HTTP front-end hosting a
  :class:`~repro.registry.ModelRegistry` of models as :class:`ModelRoute`
  entries (``POST /predict`` routed by ``"model"``, streaming
  ``POST /sweep``, ``GET /models``, ``GET /healthz``, ``GET /stats``)
  with per-model :class:`ServingStats` accounting throughout — including
  per-route p50/p95/p99 service-latency via :class:`LatencyHistogram`;
* :class:`AsyncDSEServer` — the asyncio front-end over the same
  application layer: bounded per-route admission queues (429 +
  Retry-After under saturation), per-request timeouts (504), and
  graceful drain on shutdown, with responses parity-identical to the
  threaded server.

``python -m repro serve`` (``--async`` for the asyncio front-end) is the
CLI entry point.
"""

from .async_server import AsyncDSEServer
from .batcher import DynamicBatcher, RequestQueue, ServedPrediction
from .cache import (CorruptCacheWarning, PersistentOracleCache,
                    StaleCacheWarning)
from .server import DSEServer, ModelRoute
from .sharded import AutoscaleDecision, AutoscalePolicy, ShardedSweepExecutor
from .stats import LatencyHistogram, ServingStats

__all__ = [
    "DynamicBatcher", "RequestQueue", "ServedPrediction",
    "ShardedSweepExecutor", "AutoscalePolicy", "AutoscaleDecision",
    "PersistentOracleCache", "StaleCacheWarning", "CorruptCacheWarning",
    "DSEServer", "AsyncDSEServer", "ModelRoute",
    "ServingStats", "LatencyHistogram",
]
