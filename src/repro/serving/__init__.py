"""``repro.serving`` — the multi-client DSE serving subsystem.

Turns the batched inference engine (:class:`repro.core.BatchedDSEPredictor`)
into a serving stack:

* :class:`DynamicBatcher` / :class:`RequestQueue` — coalesce concurrent
  single-workload requests into engine micro-batches (size-or-deadline
  flush policy, per-request futures);
* :class:`ShardedSweepExecutor` — split huge sweeps across worker
  processes and reassemble the shards in order;
* :class:`PersistentOracleCache` — snapshot/restore the oracle's label
  cache across runs, fingerprint-guarded against stale labels;
* :class:`DSEServer` — a stdlib threaded HTTP front-end
  (``POST /predict``, ``GET /healthz``, ``GET /stats``) wired through the
  batcher, with :class:`ServingStats` accounting throughout.

``python -m repro serve`` is the CLI entry point.
"""

from .batcher import DynamicBatcher, RequestQueue, ServedPrediction
from .cache import PersistentOracleCache, StaleCacheWarning
from .server import DSEServer
from .sharded import ShardedSweepExecutor
from .stats import ServingStats

__all__ = [
    "DynamicBatcher", "RequestQueue", "ServedPrediction",
    "ShardedSweepExecutor",
    "PersistentOracleCache", "StaleCacheWarning",
    "DSEServer", "ServingStats",
]
