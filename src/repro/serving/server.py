"""Stdlib HTTP front-end for the dynamic-batching DSE serving stack.

``python -m repro serve`` runs this server.  It is deliberately plain
``http.server`` — no framework dependency — with one thread per
connection (:class:`ThreadingHTTPServer`); concurrency is harvested by
the :class:`~repro.serving.DynamicBatcher` behind it, which coalesces the
per-connection requests into engine micro-batches.

Endpoints
---------
``POST /predict``
    Request: ``{"workloads": [{"m": 64, "n": 512, "k": 256,
    "dataflow": 0}, ...]}`` (or a single workload object; ``dataflow``
    defaults to 0).  Optional ``"with_cost": true`` adds the predicted
    design point's cost-model metric; ``"with_oracle": true`` also
    returns the exact optimum (served from the oracle's — possibly
    persistent — label cache) and the prediction's regret against it.
    Response: ``{"predictions": [{"m": ..., "num_pes": ..., "l2_kb": ...,
    "queue_wait_ms": ..., "batch_size": ...}, ...]}``.
``GET /healthz``
    ``{"status": "ok", "uptime_s": ...}`` — liveness probe.
``GET /stats``
    The :class:`~repro.serving.ServingStats` snapshot (requests, batches,
    mean batch size, queue waits, forward passes, oracle cache hit rate).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..core import AirchitectV2, BatchedDSEPredictor
from ..dse import ExhaustiveOracle
from .batcher import DynamicBatcher
from .stats import ServingStats

__all__ = ["DSEServer"]

_MAX_BODY_BYTES = 8 << 20
_MAX_WORKLOADS_PER_REQUEST = 65536


class _BadRequest(ValueError):
    """Client error: reported as HTTP 400 with the message as detail."""


def _parse_workloads(doc) -> list[tuple[int, int, int, int]]:
    if isinstance(doc, dict) and "workloads" in doc:
        items = doc["workloads"]
    else:
        items = doc
    if isinstance(items, dict):
        items = [items]
    if not isinstance(items, list) or not items:
        raise _BadRequest("body must be a workload object or a non-empty "
                          "'workloads' list")
    if len(items) > _MAX_WORKLOADS_PER_REQUEST:
        raise _BadRequest(f"too many workloads in one request "
                          f"(max {_MAX_WORKLOADS_PER_REQUEST})")
    rows = []
    for i, item in enumerate(items):
        if not isinstance(item, dict):
            raise _BadRequest(f"workloads[{i}]: expected an object")
        try:
            rows.append((int(item["m"]), int(item["n"]), int(item["k"]),
                         int(item.get("dataflow", 0))))
        except (KeyError, TypeError, ValueError) as exc:
            raise _BadRequest(f"workloads[{i}]: needs integer 'm', 'n', "
                              f"'k' (and optional 'dataflow'): {exc}") \
                from None
    return rows


class _ServingHandler(BaseHTTPRequestHandler):
    server: "_ServingHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        if self.server.dse.log_requests:  # pragma: no cover - verbose mode
            super().log_message(format, *args)

    def _send_json(self, status: int, doc: dict) -> None:
        body = json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # Error paths may not have drained the request body; under
            # HTTP/1.1 keep-alive the unread bytes would desync the next
            # request on this connection, so close it instead.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        dse = self.server.dse
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok",
                                  "uptime_s": dse.stats.snapshot()["uptime_s"]})
        elif self.path == "/stats":
            self._send_json(200, dse.stats.snapshot())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:
        if self.path != "/predict":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except (TypeError, ValueError):
                raise _BadRequest("invalid Content-Length header") from None
            if length <= 0 or length > _MAX_BODY_BYTES:
                raise _BadRequest("Content-Length required "
                                  f"(max {_MAX_BODY_BYTES} bytes)")
            try:
                doc = json.loads(self.rfile.read(length))
            except json.JSONDecodeError as exc:
                raise _BadRequest(f"invalid JSON: {exc}") from None
            self._send_json(200, self.server.dse.handle_predict(doc))
        except _BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive 500 path
            self.server.dse.stats.record_error()
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})


class _ServingHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, dse: "DSEServer"):
        self.dse = dse
        super().__init__(address, _ServingHandler)


class DSEServer:
    """The full serving stack: engine -> batcher -> threaded HTTP server.

    Parameters
    ----------
    model:
        A (trained) :class:`AirchitectV2`.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` for the bound one — tests rely on this).
    max_batch_size / max_wait_ms:
        The batcher's flush policy (see :class:`DynamicBatcher`).
    oracle:
        Optional shared :class:`ExhaustiveOracle` for ``with_cost``
        requests and the ``/stats`` cache-hit-rate line; created lazily
        when a request first needs one.
    """

    def __init__(self, model: AirchitectV2, host: str = "127.0.0.1",
                 port: int = 0, max_batch_size: int = 64,
                 max_wait_ms: float = 2.0, micro_batch_size: int | None = None,
                 oracle: ExhaustiveOracle | None = None,
                 request_timeout_s: float = 60.0,
                 log_requests: bool = False):
        self.model = model
        self.problem = model.problem
        self.oracle = oracle
        self._oracle_lock = threading.Lock()
        self.request_timeout_s = request_timeout_s
        self.log_requests = log_requests
        self.stats = ServingStats(oracle=oracle)
        engine = BatchedDSEPredictor(
            model,
            micro_batch_size=micro_batch_size or max(max_batch_size, 1024),
            on_batch=self.stats.record_forward)
        self.batcher = DynamicBatcher(engine, max_batch_size=max_batch_size,
                                      max_wait_ms=max_wait_ms,
                                      stats=self.stats, start=False)
        self._httpd = _ServingHTTPServer((host, port), self)
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound (host, port)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    def _ensure_oracle(self) -> ExhaustiveOracle:
        with self._oracle_lock:
            if self.oracle is None:
                self.oracle = ExhaustiveOracle(self.problem)
                self.stats.oracle = self.oracle
            return self.oracle

    def handle_predict(self, doc) -> dict:
        """Serve one ``/predict`` body through the batcher (any thread)."""
        rows = _parse_workloads(doc)
        with_cost = bool(isinstance(doc, dict) and doc.get("with_cost"))
        with_oracle = bool(isinstance(doc, dict) and doc.get("with_oracle"))
        try:
            if len(rows) > self.batcher.max_batch_size:
                # Bulk bodies go straight to the vectorised engine; the
                # queue exists to coalesce *small* concurrent requests.
                served = self.batcher.predict_batch(rows)
            else:
                futures = [self.batcher.submit(m, n, k, df)
                           for m, n, k, df in rows]
                served = [f.result(self.request_timeout_s) for f in futures]
        except ValueError as exc:
            raise _BadRequest(str(exc)) from None
        predictions = [s.as_dict() for s in served]
        if with_cost or with_oracle:
            oracle = self._ensure_oracle()
            inputs = np.array([[s.m, s.n, s.k, s.dataflow] for s in served],
                              dtype=np.int64)
            costs = oracle.cost_at(
                inputs, np.array([s.pe_idx for s in served]),
                np.array([s.l2_idx for s in served]))
            for pred, cost in zip(predictions, costs):
                pred["predicted_cost"] = float(cost)
        if with_oracle:
            # The exact optimum (LRU/persistently cached) plus the
            # prediction's regret against it.
            labels = oracle.solve(inputs)
            opt_pes, opt_l2 = self.problem.space.values(labels.pe_idx,
                                                        labels.l2_idx)
            for i, pred in enumerate(predictions):
                pred["oracle_num_pes"] = int(opt_pes[i])
                pred["oracle_l2_kb"] = int(opt_l2[i])
                pred["oracle_cost"] = float(labels.best_cost[i])
                pred["regret"] = float(
                    pred["predicted_cost"]
                    / max(labels.best_cost[i], 1e-12) - 1.0)
        return {"predictions": predictions, "count": len(predictions)}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "DSEServer":
        """Serve in a background thread (tests / embedded use)."""
        self.batcher.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="dse-http-server", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self.batcher.start()
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None
        self.batcher.stop()

    def __enter__(self) -> "DSEServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
