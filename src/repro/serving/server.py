"""Stdlib HTTP front-end for the multi-model DSE serving stack.

``python -m repro serve`` runs this server.  It is deliberately plain
``http.server`` — no framework dependency — with one thread per
connection (:class:`ThreadingHTTPServer`); concurrency is harvested by
the per-model :class:`~repro.serving.DynamicBatcher` queues behind it,
which coalesce the per-connection requests into engine micro-batches.

The server hosts a :class:`~repro.registry.ModelRegistry` rather than a
single model: every served model is a :class:`ModelRoute` (its own
engine, batcher queue and :class:`~repro.serving.ServingStats`), created
eagerly for directly-attached models and lazily — through the registry's
loaded-model LRU — for registry artifacts the first time a request names
them.

Endpoints
---------
``POST /predict``
    Request: ``{"workloads": [{"m": 64, "n": 512, "k": 256,
    "dataflow": 0}, ...]}`` (or a single workload object; ``dataflow``
    defaults to 0).  ``"model"`` selects the serving route (the default
    model otherwise).  Optional ``"with_cost": true`` adds the predicted
    design point's cost-model metric; ``"with_oracle": true`` also
    returns the exact optimum (served from the oracle's — possibly
    persistent — label cache) and the prediction's regret against it.
    Response: ``{"model": ..., "predictions": [{"m": ..., "num_pes": ...,
    "l2_kb": ..., "queue_wait_ms": ..., "batch_size": ...}, ...]}``.
``POST /sweep``
    Streaming bulk sweeps: ``{"workloads": [...]}`` or
    ``{"random": N, "seed": S}`` (server-generated sweep), plus optional
    ``"model"``, ``"with_cost"`` and ``"chunk_size"``.  The response is
    chunked ``application/x-ndjson``: a header line, one line per chunk
    of predictions as soon as it is computed, and a summary line — a
    million-point sweep starts flowing after the first chunk instead of
    after the last.  A mid-stream failure appends an ``{"error": ...}``
    line and closes the connection.  With ``--sweep-workers``, chunks run
    through an autoscaled :class:`~repro.serving.ShardedSweepExecutor`
    whose decision trace ``GET /stats`` exposes.
``GET /models``
    The registry/route listing: every active route and every discoverable
    registry artifact, with manifest summaries and load state.
``GET /healthz``
    ``{"status": "ok", "uptime_s": ...}`` — liveness probe.
``GET /stats``
    Aggregate serving counters plus a per-model breakdown (requests,
    batches, queue waits, forward passes, sweep/chunk counts, autoscale
    decision traces, oracle cache hit rate).
``GET /metrics``
    The same numbers in the Prometheus text exposition format, rendered
    from the server's :class:`~repro.obs.MetricsRegistry` — every
    route's :class:`ServingStats` series (labelled by model), autoscale
    gauges, uptime and in-flight gauges.

Requests are traced end to end: each ``/predict`` or ``/sweep`` gets a
front-end span (honouring an ``X-Trace-Id`` request header, minting an
id otherwise), the batcher adds a ``queue.wait`` span, and the engine
attributes its coalesced forward pass to every trace that shared it.
Responses echo ``X-Trace-Id``; spans land in the tracer's bounded ring
and, with a sink configured, an NDJSON file.

All error responses are JSON: unknown routes and unknown models are
``404``, malformed or non-dict bodies are ``400`` — never a traceback.
Each route also carries a :class:`~repro.faults.CircuitBreaker` over its
*engine* outcomes: after ``breaker_threshold`` consecutive engine
failures the route answers ``503`` with a ``Retry-After`` header until a
half-open probe succeeds.  Client errors (400/404/429) are neutral —
they can neither trip nor heal a breaker.  ``repro_breaker_state``
(0=closed, 1=half-open, 2=open) is scrapeable per model.
"""

from __future__ import annotations

import json
import re
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..core import AirchitectV2, BatchedDSEPredictor
from ..dse import ExhaustiveOracle
from ..faults import CircuitBreaker, TransientEngineError
from ..faults import active as _active_faults
from ..faults import fire
from ..obs import MetricsRegistry, SpanContext, Tracer, get_logger
from ..registry import ModelRegistry, RegistryError
from .batcher import DynamicBatcher
from .sharded import ShardedSweepExecutor
from .stats import ServingStats

__all__ = ["DSEServer", "ModelRoute"]

_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_TRACE_ID_RE = re.compile(r"^[0-9a-fA-F-]{8,64}$")

_MAX_BODY_BYTES = 8 << 20
_MAX_WORKLOADS_PER_REQUEST = 65536
_MAX_SWEEP_ROWS = 1 << 20
_MAX_SWEEP_CHUNK = 65536


class _BadRequest(ValueError):
    """Client error: reported as HTTP 400 with the message as detail."""


class _NotFound(ValueError):
    """Unknown route or model: reported as HTTP 404."""


class _Backpressure(Exception):
    """A route's bounded admission queue is full: HTTP 429 + Retry-After."""

    def __init__(self, route_name: str, max_queue: int, retry_after_s: float):
        self.route_name = route_name
        self.max_queue = max_queue
        self.retry_after_s = retry_after_s
        super().__init__(
            f"route {route_name!r} admission queue is full "
            f"(max_queue={max_queue}); retry after {retry_after_s:g}s")

    @property
    def retry_after_header(self) -> str:
        return str(max(1, -(-int(self.retry_after_s * 1000) // 1000)))


class _ServiceUnavailable(Exception):
    """A route's circuit breaker is open: HTTP 503 + Retry-After."""

    def __init__(self, route_name: str, retry_after_s: float):
        self.route_name = route_name
        self.retry_after_s = retry_after_s
        super().__init__(
            f"route {route_name!r} is shedding load after repeated engine "
            f"failures (circuit breaker open); retry after "
            f"{retry_after_s:g}s")

    @property
    def retry_after_header(self) -> str:
        return str(max(1, -(-int(self.retry_after_s * 1000) // 1000)))


class _RequestTimeout(Exception):
    """A request exceeded the per-route timeout: HTTP 504."""


def _parse_workloads(doc, limit: int = _MAX_WORKLOADS_PER_REQUEST) \
        -> list[tuple[int, int, int, int]]:
    if isinstance(doc, dict) and "workloads" in doc:
        items = doc["workloads"]
    else:
        items = doc
    if isinstance(items, dict):
        items = [items]
    if not isinstance(items, list) or not items:
        raise _BadRequest("body must be a workload object or a non-empty "
                          "'workloads' list")
    if len(items) > limit:
        raise _BadRequest(f"too many workloads in one request (max {limit})")
    rows = []
    for i, item in enumerate(items):
        if not isinstance(item, dict):
            raise _BadRequest(f"workloads[{i}]: expected an object")
        try:
            rows.append((int(item["m"]), int(item["n"]), int(item["k"]),
                         int(item.get("dataflow", 0))))
        except (KeyError, TypeError, ValueError) as exc:
            raise _BadRequest(f"workloads[{i}]: needs integer 'm', 'n', "
                              f"'k' (and optional 'dataflow'): {exc}") \
                from None
    return rows


def _require_dict(doc, endpoint: str) -> dict:
    if not isinstance(doc, dict):
        raise _BadRequest(f"{endpoint} body must be a JSON object, "
                          f"got {type(doc).__name__}")
    return doc


class ModelRoute:
    """One served model: engine, dynamic-batcher queue, stats, executor.

    Routes are the unit of multi-model serving: each has its own request
    queue (so one model's burst never stalls another's latency), its own
    :class:`ServingStats`, and — when the server runs with sweep
    workers — its own lazily-created autoscaled sweep executor.
    """

    def __init__(self, name: str, model: AirchitectV2, *,
                 max_batch_size: int, max_wait_ms: float,
                 micro_batch_size: int, source: str = "direct",
                 sweep_workers: int | None = None,
                 max_queue: int | None = None,
                 breaker_threshold: int | None = 5,
                 breaker_reset_s: float = 30.0,
                 shard_timeout_s: float | None = 120.0,
                 registry: MetricsRegistry | None = None):
        self.name = name
        self.model = model
        self.problem = model.problem
        self.source = source
        self.sweep_workers = sweep_workers
        self.max_queue = max_queue
        self.shard_timeout_s = shard_timeout_s
        self._inflight = 0
        self._admission_lock = threading.Lock()
        self.registry = registry
        self.stats = ServingStats(registry=registry,
                                  labels={"model": name})
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            reset_timeout_s=breaker_reset_s) \
            if breaker_threshold is not None else None
        if registry is not None:
            # Lazy gauge: the scrape reads the admission counter directly,
            # so in-flight tracking costs the hot path nothing extra.
            registry.gauge("repro_inflight_requests",
                           "Requests admitted and not yet answered.",
                           ("model",)).labels(model=name) \
                .set_function(lambda: self.inflight)
            if self.breaker is not None:
                registry.gauge(
                    "repro_breaker_state",
                    "Circuit breaker state per route "
                    "(0=closed, 1=half-open, 2=open).",
                    ("model",)).labels(model=name) \
                    .set_function(lambda: float(self.breaker.state_code))
        self.last_served = time.time()
        self.engine = BatchedDSEPredictor(
            model, micro_batch_size=micro_batch_size,
            on_batch=self.stats.record_forward)
        self.batcher = DynamicBatcher(self.engine,
                                      max_batch_size=max_batch_size,
                                      max_wait_ms=max_wait_ms,
                                      stats=self.stats, start=False)
        self._executor: ShardedSweepExecutor | None = None
        self._executor_lock = threading.Lock()

    # ------------------------------------------------------------------
    def sweep_engine(self):
        """What ``/sweep`` chunks run on: the autoscaled sharded executor
        when the server was configured with sweep workers, the in-process
        engine otherwise.  Bit-identical predictions either way."""
        if self.sweep_workers is None or self.sweep_workers <= 1:
            return self.engine
        with self._executor_lock:
            if self._executor is None:
                self._executor = ShardedSweepExecutor(
                    self.model, num_workers=self.sweep_workers,
                    autoscale=True, shard_timeout_s=self.shard_timeout_s,
                    registry=self.registry,
                    labels={"model": self.name})
            return self._executor

    @property
    def executor(self) -> ShardedSweepExecutor | None:
        return self._executor

    # ------------------------------------------------------------------
    # Admission control (the bounded per-route queue)
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Requests currently admitted (queued or being served)."""
        with self._admission_lock:
            return self._inflight

    def try_admit(self) -> bool:
        """Claim one admission slot; ``False`` once ``max_queue`` are
        in flight (the caller answers 429 instead of queueing)."""
        with self._admission_lock:
            if self.max_queue is not None and self._inflight >= self.max_queue:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._admission_lock:
            self._inflight = max(0, self._inflight - 1)

    def start(self) -> None:
        self.batcher.start()

    def stop(self) -> None:
        self.batcher.stop()
        with self._executor_lock:
            if self._executor is not None:
                self._executor.close()
                self._executor = None
        if self.registry is not None:
            # Drop the lazy gauges so an evicted route's scrape callbacks
            # cannot outlive the route (counters stay: they are history).
            self.registry.gauge("repro_inflight_requests",
                                "Requests admitted and not yet answered.",
                                ("model",)).remove(model=self.name)
            if self.breaker is not None:
                self.registry.gauge(
                    "repro_breaker_state",
                    "Circuit breaker state per route "
                    "(0=closed, 1=half-open, 2=open).",
                    ("model",)).remove(model=self.name)

    def stats_snapshot(self) -> dict:
        doc = self.stats.snapshot()
        doc["source"] = self.source
        doc["inflight"] = self.inflight
        doc["max_queue"] = self.max_queue
        if self.breaker is not None:
            doc["breaker"] = {"state": self.breaker.state,
                              "opens": self.breaker.opens}
        if self._executor is not None:
            doc["autoscale"] = list(self._executor.decision_trace)
        return doc


class _ServingHandler(BaseHTTPRequestHandler):
    server: "_ServingHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        if self.server.dse.log_requests:  # pragma: no cover - verbose mode
            super().log_message(format, *args)

    def _send_json(self, status: int, doc: dict,
                   extra_headers=()) -> None:
        body = json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (*getattr(self, "_trace_headers", ()),
                            *extra_headers):
            self.send_header(name, value)
        if status >= 400:
            # Error paths may not have drained the request body; under
            # HTTP/1.1 keep-alive the unread bytes would desync the next
            # request on this connection, so close it instead.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _unknown_route(self) -> None:
        self._send_json(404, {"error": f"unknown route "
                                       f"{self.command} {self.path!r}"})

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        dse = self.server.dse
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok",
                                  "uptime_s": time.time() - dse.started_at})
        elif self.path == "/stats":
            self._send_json(200, dse.stats_snapshot())
        elif self.path == "/models":
            self._send_json(200, dse.models_snapshot())
        elif self.path == "/metrics":
            body = dse.metrics_text().encode()
            self.send_response(200)
            self.send_header("Content-Type", _METRICS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._unknown_route()

    def do_PUT(self) -> None:
        self._unknown_route()   # 404s close the connection, so the unread
                                # body can never desync a next request

    def do_DELETE(self) -> None:
        self._unknown_route()

    def _read_body(self, max_bytes: int = _MAX_BODY_BYTES):
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise _BadRequest("invalid Content-Length header") from None
        if length <= 0 or length > max_bytes:
            raise _BadRequest(f"Content-Length required (max {max_bytes} "
                              f"bytes)")
        try:
            return json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"invalid JSON: {exc}") from None

    def do_POST(self) -> None:
        dse = self.server.dse
        if self.path not in ("/predict", "/sweep"):
            self._unknown_route()
            return
        span = dse.begin_request_span(
            f"http.{self.path[1:]}", self.headers.get("X-Trace-Id"))
        self._trace_headers = (("X-Trace-Id", span.trace_id),) \
            if span is not None else ()
        try:
            doc = self._read_body()
            if self.path == "/predict":
                self._send_json(200, dse.handle_predict(
                    doc, trace=span.context if span is not None else None))
            else:
                self._stream_ndjson(dse.prepare_sweep(doc))
        except ConnectionError:    # client gone; nobody to answer
            self.close_connection = True
            if span is not None:
                span.status = "error"
        except _NotFound as exc:
            self._send_json(404, {"error": str(exc)})
        except _BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except _Backpressure as exc:
            self._send_json(429, {"error": str(exc)},
                            extra_headers=[("Retry-After",
                                            exc.retry_after_header)])
        except _ServiceUnavailable as exc:
            self._send_json(503, {"error": str(exc)},
                            extra_headers=[("Retry-After",
                                            exc.retry_after_header)])
        except _RequestTimeout as exc:
            dse.record_error()
            self._send_json(504, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive 500 path
            dse.record_error()
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            self._trace_headers = ()
            if span is not None:
                span.end()

    # ------------------------------------------------------------------
    def _write_chunk(self, doc: dict) -> None:
        data = json.dumps(doc).encode() + b"\n"
        self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()

    def _stream_ndjson(self, lines) -> None:
        """Send an iterator of JSON docs as a chunked NDJSON response.

        Each document is one ndjson line in its own HTTP chunk, flushed
        as soon as it is produced — the client sees chunk K while the
        server computes chunk K+1.  Validation errors raise *before*
        streaming starts (the caller turns them into 400/404); a failure
        mid-stream appends an ``{"error": ...}`` line and drops the
        connection, which clients detect as a truncated stream.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        for name, value in getattr(self, "_trace_headers", ()):
            self.send_header(name, value)
        self.end_headers()
        try:
            for doc in lines:
                self._write_chunk(doc)
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except ConnectionError:
            # The client hung up mid-stream — routine for streaming
            # sweeps (read a few chunks, stop).  Nothing to send and
            # nobody to send it to; just drop the connection quietly.
            self.close_connection = True
        except Exception as exc:   # pragma: no cover - mid-stream failure
            self.server.dse.record_error()
            try:
                self._write_chunk({"error": f"{type(exc).__name__}: {exc}"})
                self.wfile.write(b"0\r\n\r\n")
            except ConnectionError:
                pass
            self.close_connection = True
        finally:
            if hasattr(lines, "close"):
                lines.close()   # abandoned mid-stream: release admission


class _ServingHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, dse: "DSEServer"):
        self.dse = dse
        super().__init__(address, _ServingHandler)
        # ``BaseServer.shutdown`` blocks on an event that only the serve
        # loop's ``finally`` sets.  If shutdown runs before the loop was
        # ever entered (a SIGTERM can interrupt the CLI in that window)
        # the wait would deadlock; pre-setting the event makes shutdown
        # a no-op then.  ``serve_forever`` clears it on entry, restoring
        # the normal handshake.
        self._BaseServer__is_shut_down.set()


class DSEServer:
    """The full serving stack: registry -> routes -> threaded HTTP server.

    Parameters
    ----------
    model:
        A (trained) :class:`AirchitectV2` served as the ``default_model``
        route.  Optional when ``registry`` is given.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` for the bound one — tests rely on this).
    max_batch_size / max_wait_ms:
        Every route's batcher flush policy (see :class:`DynamicBatcher`).
    oracle:
        Optional shared :class:`ExhaustiveOracle` for ``with_cost``
        requests and the ``/stats`` cache-hit-rate line; created lazily
        when a request first needs one.  One oracle serves every route
        (all models share the canonical Table-I problem).
    registry:
        A :class:`~repro.registry.ModelRegistry` (or a path to one) whose
        artifacts become servable routes: ``POST /predict`` with
        ``"model": "<id>"`` loads the artifact on first use through the
        registry's LRU.
    model_ids:
        Restrict registry serving to these ids (default: every
        manifested artifact is servable).
    default_model:
        Route name served when a request has no ``"model"`` field.
        Defaults to the directly-attached model, else the first of
        ``model_ids``, else the registry's first artifact.
    max_models:
        Cap on concurrently-active *registry* routes; the
        least-recently-served one is stopped and evicted beyond this.
        Directly-attached models are never evicted.
    sweep_workers:
        Give each route an autoscaled :class:`ShardedSweepExecutor` with
        this many max workers for ``POST /sweep`` chunks (default: sweep
        in-process).
    max_queue:
        Bounded per-route admission queue: above this many in-flight
        requests (queued or being served) a route answers HTTP 429 with
        a ``Retry-After`` header instead of queueing unboundedly
        (default: unbounded, the pre-admission-control behaviour).
    retry_after_s:
        The backoff hint sent with 429 responses (default 1s; the
        ``Retry-After`` header rounds it up to whole seconds).
    breaker_threshold / breaker_reset_s:
        Per-route circuit breaker: after ``breaker_threshold``
        consecutive engine failures the route answers 503 (with
        ``Retry-After``) for ``breaker_reset_s`` seconds, then admits a
        single half-open probe.  ``breaker_threshold=None`` disables the
        breaker entirely.
    shard_timeout_s:
        Per-shard result deadline for each route's sweep executor — a
        lost or hung pool worker is declared dead after this long and
        its shards retried on a rebuilt pool (see
        :class:`~repro.faults.PoolSupervisor`).
    tracer:
        Optional pre-built :class:`~repro.obs.Tracer` shared with the
        embedding application; one is created per server otherwise.
    trace_file:
        NDJSON span-sink path for the created tracer (``--trace-file``).
    enable_tracing:
        ``False`` turns request tracing off entirely (the overhead
        benchmark's un-instrumented baseline).
    """

    def __init__(self, model: AirchitectV2 | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 max_batch_size: int = 64, max_wait_ms: float = 2.0,
                 micro_batch_size: int | None = None,
                 oracle: ExhaustiveOracle | None = None,
                 request_timeout_s: float = 60.0,
                 log_requests: bool = False,
                 registry: ModelRegistry | str | None = None,
                 model_ids: list[str] | None = None,
                 default_model: str | None = None,
                 max_models: int | None = None,
                 sweep_workers: int | None = None,
                 max_queue: int | None = None,
                 retry_after_s: float = 1.0,
                 breaker_threshold: int | None = 5,
                 breaker_reset_s: float = 30.0,
                 shard_timeout_s: float | None = 120.0,
                 tracer: Tracer | None = None,
                 trace_file: str | None = None,
                 enable_tracing: bool = True):
        if model is None and registry is None:
            raise ValueError("DSEServer needs a model or a registry")
        if isinstance(registry, (str, bytes)) or hasattr(registry, "__fspath__"):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.oracle = oracle
        self._oracle_lock = threading.Lock()
        self.request_timeout_s = request_timeout_s
        self.log_requests = log_requests
        self.started_at = time.time()
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.micro_batch_size = micro_batch_size or max(max_batch_size, 1024)
        self.max_models = max_models
        self.sweep_workers = sweep_workers
        self.max_queue = max_queue
        self.retry_after_s = retry_after_s
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.shard_timeout_s = shard_timeout_s
        self._model_ids = list(model_ids) if model_ids is not None else None
        self.log = get_logger("serving.server")
        # One registry per server: every route's ServingStats publishes
        # into it (labelled by model), and /metrics renders it.
        self.metrics = MetricsRegistry()
        self.metrics.gauge("repro_uptime_seconds",
                           "Seconds since the server started.") \
            .labels().set_function(lambda: time.time() - self.started_at)
        self.metrics.gauge("repro_routes_active",
                           "Model routes currently loaded.") \
            .labels().set_function(lambda: len(self.routes))
        if tracer is None and enable_tracing:
            tracer = Tracer(sink=trace_file)
        self.tracer = tracer
        # Routing/transport-level failures (no route to blame them on).
        self._errors = ServingStats(registry=self.metrics,
                                    labels={"model": "_transport"})
        armed = _active_faults()
        if armed is not None:
            # Surface the armed fault points (and their fire counts) on
            # /metrics so chaos runs can observe injection from outside.
            armed.attach_metrics(self.metrics)
        self.routes: dict[str, ModelRoute] = {}
        self._route_lock = threading.RLock()
        self._running = False

        if model is not None:
            name = default_model or "default"
            self.add_model(name, model)
            self.default_model = name
        else:
            candidates = self._model_ids or self.registry.ids()
            if default_model is not None:
                self.default_model = default_model
            elif candidates:
                self.default_model = candidates[0]
            else:
                raise ValueError("registry has no servable artifacts and no "
                                 "default_model was given")
        self._make_transport(host, port)

    def _make_transport(self, host: str, port: int) -> None:
        """Bind the HTTP transport (overridden by the asyncio server)."""
        self._httpd = _ServingHTTPServer((host, port), self)
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound (host, port)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def model(self) -> AirchitectV2:
        """The default route's model (back-compat accessor)."""
        return self._route(self.default_model).model

    @property
    def problem(self):
        return self.model.problem

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def add_model(self, name: str, model: AirchitectV2,
                  source: str = "direct") -> ModelRoute:
        """Attach a model under ``name`` (started if the server runs)."""
        route = ModelRoute(name, model, max_batch_size=self.max_batch_size,
                           max_wait_ms=self.max_wait_ms,
                           micro_batch_size=self.micro_batch_size,
                           source=source, sweep_workers=self.sweep_workers,
                           max_queue=self.max_queue,
                           breaker_threshold=self.breaker_threshold,
                           breaker_reset_s=self.breaker_reset_s,
                           shard_timeout_s=self.shard_timeout_s,
                           registry=self.metrics)
        with self._route_lock:
            if name in self.routes:
                raise ValueError(f"model {name!r} is already served")
            self.routes[name] = route
            if self._running:
                route.start()
        self.log.info("route loaded", extra={"model": name,
                                             "source": source})
        return route

    def _servable_from_registry(self, name: str) -> bool:
        if self.registry is None:
            return False
        if self._model_ids is not None and name not in self._model_ids:
            return False
        return self.registry.has(name)

    def _route(self, name: str | None) -> ModelRoute:
        """Resolve a request's model name to an active route.

        Registry-backed models load lazily on first use (through the
        registry's LRU); over ``max_models`` the least-recently-served
        registry route is stopped and evicted first.
        """
        name = name or self.default_model
        if not isinstance(name, str):
            raise _BadRequest(f"'model' must be a string, "
                              f"got {type(name).__name__}")
        with self._route_lock:
            route = self.routes.get(name)
            if route is not None:
                route.last_served = time.time()
                return route
        if not self._servable_from_registry(name):
            known = sorted(self.routes)
            if self.registry is not None:
                known = sorted(set(known)
                               | set(self._model_ids or self.registry.ids()))
            raise _NotFound(f"unknown model {name!r}; "
                            f"available: {known}")
        try:
            loaded = self.registry.get(name)
        except RegistryError as exc:
            raise _NotFound(f"model {name!r} could not be loaded from the "
                            f"registry: {exc}") from None
        if not hasattr(loaded, "predict_indices"):
            raise _BadRequest(f"model {name!r} (kind "
                              f"{self.registry.artifact(name).kind!r}) has "
                              f"no one-shot inference path; only models with "
                              f"predict_indices are servable")
        evicted: ModelRoute | None = None
        with self._route_lock:
            if name not in self.routes:     # racing request may have won
                route = ModelRoute(
                    name, loaded, max_batch_size=self.max_batch_size,
                    max_wait_ms=self.max_wait_ms,
                    micro_batch_size=self.micro_batch_size,
                    source="registry", sweep_workers=self.sweep_workers,
                    max_queue=self.max_queue,
                    breaker_threshold=self.breaker_threshold,
                    breaker_reset_s=self.breaker_reset_s,
                    shard_timeout_s=self.shard_timeout_s,
                    registry=self.metrics)
                self.routes[name] = route
                if self._running:
                    route.start()
                self.log.info("route loaded",
                              extra={"model": name, "source": "registry"})
                evicted = self._evict_locked(keep=name)
            route = self.routes[name]
            route.last_served = time.time()
        if evicted is not None:
            evicted.stop()
            self.registry.invalidate(evicted.name)
            self.log.info("route evicted",
                          extra={"model": evicted.name,
                                 "kept": name,
                                 "max_models": self.max_models})
        return route

    def _evict_locked(self, keep: str) -> ModelRoute | None:
        """Pop the stalest registry route beyond ``max_models`` (if any)."""
        if self.max_models is None:
            return None
        candidates = [r for r in self.routes.values()
                      if r.source == "registry" and r.name != keep]
        if len(candidates) + 1 <= self.max_models:
            return None
        stalest = min(candidates, key=lambda r: r.last_served, default=None)
        if stalest is not None:
            del self.routes[stalest.name]
        return stalest

    # ------------------------------------------------------------------
    def _ensure_oracle(self, problem) -> ExhaustiveOracle:
        # Built from the requesting route's problem: going through
        # self.problem here would lazily load the *default* route, which
        # under max_models could evict the very route being served.
        with self._oracle_lock:
            if self.oracle is None:
                self.oracle = ExhaustiveOracle(problem)
            return self.oracle

    def record_error(self) -> None:
        self._errors.record_error()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """The Prometheus exposition document both transports serve at
        ``GET /metrics`` (one registry, so the transports are in parity
        by construction)."""
        return self.metrics.render()

    def begin_request_span(self, name: str, header_trace_id: str | None):
        """Open a front-end span for one request, or ``None`` untraced.

        A well-formed incoming ``X-Trace-Id`` header joins the request to
        the caller's existing trace; anything else gets a fresh id.  The
        caller must ``end()`` the span and echo ``span.trace_id`` back in
        the response's ``X-Trace-Id`` header.
        """
        if self.tracer is None:
            return None
        trace_id = None
        if header_trace_id and _TRACE_ID_RE.match(header_trace_id.strip()):
            trace_id = header_trace_id.strip().lower()
        return self.tracer.span(name, trace_id=trace_id)

    # ------------------------------------------------------------------
    # /predict
    # ------------------------------------------------------------------
    def handle_predict(self, doc, trace: SpanContext | None = None) -> dict:
        """Serve one ``/predict`` body through its route's batcher.

        Admission is bounded per route (``max_queue``): a full queue
        raises :class:`_Backpressure` (HTTP 429 + Retry-After) instead
        of queueing unboundedly, and every admitted request's service
        latency lands in the route's p50/p95/p99 histogram.  ``trace``
        (the front-end span's context) rides into the batcher so the
        queue wait and forward pass show up as child spans.
        """
        rows = _parse_workloads(doc)
        is_dict = isinstance(doc, dict)
        route = self._route(doc.get("model") if is_dict else None)
        breaker = route.breaker
        if breaker is not None and not breaker.allow():
            raise _ServiceUnavailable(route.name, breaker.retry_after_s())
        # From here on, every exit must report an outcome: a half-open
        # breaker holds its single probe slot until one arrives.
        try:
            if not route.try_admit():
                raise _Backpressure(route.name, route.max_queue,
                                    self.retry_after_s)
            start = time.perf_counter()
            try:
                result = self._predict_admitted(route, rows,
                                                doc if is_dict else {},
                                                trace)
            finally:
                route.release()
                route.stats.record_latency(time.perf_counter() - start)
        except (_BadRequest, _NotFound, _Backpressure):
            # Client errors are neutral: they release a probe slot but
            # can neither trip nor heal the breaker.
            if breaker is not None:
                breaker.record_neutral()
            raise
        except BaseException:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return result

    def _predict_admitted(self, route: ModelRoute, rows, doc: dict,
                          trace: SpanContext | None = None) -> dict:
        hit = fire("engine.transient_error")
        if hit is not None:
            raise TransientEngineError(
                str(hit.get("message", "injected transient engine failure")))
        with_cost = bool(doc.get("with_cost"))
        with_oracle = bool(doc.get("with_oracle"))
        futures = []
        try:
            if len(rows) > route.batcher.max_batch_size:
                # Bulk bodies go straight to the vectorised engine; the
                # queue exists to coalesce *small* concurrent requests.
                served = route.batcher.predict_batch(rows, trace=trace)
            else:
                futures = [route.batcher.submit(m, n, k, df, trace=trace)
                           for m, n, k, df in rows]
                served = [f.result(self.request_timeout_s) for f in futures]
        except FutureTimeout:
            for future in futures:
                future.cancel()     # unserved rows must not burn the engine
            raise _RequestTimeout(
                f"route {route.name!r} request timed out after "
                f"{self.request_timeout_s:g}s") from None
        except ValueError as exc:
            raise _BadRequest(str(exc)) from None
        predictions = [s.as_dict() for s in served]
        if with_cost or with_oracle:
            oracle = self._ensure_oracle(route.problem)
            inputs = np.array([[s.m, s.n, s.k, s.dataflow] for s in served],
                              dtype=np.int64)
            costs = oracle.cost_at(
                inputs, np.array([s.pe_idx for s in served]),
                np.array([s.l2_idx for s in served]))
            for pred, cost in zip(predictions, costs):
                pred["predicted_cost"] = float(cost)
        if with_oracle:
            # The exact optimum (LRU/persistently cached) plus the
            # prediction's regret against it.
            labels = oracle.solve(inputs)
            opt_pes, opt_l2 = route.problem.space.values(labels.pe_idx,
                                                         labels.l2_idx)
            for i, pred in enumerate(predictions):
                pred["oracle_num_pes"] = int(opt_pes[i])
                pred["oracle_l2_kb"] = int(opt_l2[i])
                pred["oracle_cost"] = float(labels.best_cost[i])
                pred["regret"] = float(
                    pred["predicted_cost"]
                    / max(labels.best_cost[i], 1e-12) - 1.0)
        return {"model": route.name, "predictions": predictions,
                "count": len(predictions)}

    # ------------------------------------------------------------------
    # /sweep (streaming)
    # ------------------------------------------------------------------
    def prepare_sweep(self, doc):
        """Validate a ``/sweep`` body and return its chunk generator.

        All client errors surface *here*, before the caller commits to a
        200 streaming response; the generator itself only touches the
        engine.
        """
        doc = _require_dict(doc, "/sweep")
        route = self._route(doc.get("model"))
        problem = route.problem
        if "random" in doc:
            try:
                count = int(doc["random"])
                seed = int(doc.get("seed", 0))
            except (TypeError, ValueError):
                raise _BadRequest("'random' and 'seed' must be integers") \
                    from None
            if not 1 <= count <= _MAX_SWEEP_ROWS:
                raise _BadRequest(f"'random' must be in 1..{_MAX_SWEEP_ROWS}")
            inputs = problem.sample_inputs(count, np.random.default_rng(seed))
        else:
            rows = _parse_workloads(doc, limit=_MAX_SWEEP_ROWS)
            inputs = np.array(rows, dtype=np.int64)
            bad = (inputs[:, 3] < 0) | \
                (inputs[:, 3] >= problem.bounds.n_dataflows)
            if bad.any():
                raise _BadRequest(
                    f"dataflow must be in 0..{problem.bounds.n_dataflows - 1}")
            m, n, k = problem.clamp_inputs(inputs[:, 0], inputs[:, 1],
                                           inputs[:, 2])
            inputs = np.stack([m, n, k, inputs[:, 3]], axis=1)
        try:
            chunk_size = int(doc.get("chunk_size", 1024))
        except (TypeError, ValueError):
            raise _BadRequest("'chunk_size' must be an integer") from None
        if not 1 <= chunk_size <= _MAX_SWEEP_CHUNK:
            raise _BadRequest(f"'chunk_size' must be in 1..{_MAX_SWEEP_CHUNK}")
        with_cost = bool(doc.get("with_cost"))
        # Admit last, after every validation error had its chance to
        # surface — a rejected body must not leak an admission slot (or
        # claim a half-open breaker's probe slot).
        breaker = route.breaker
        if breaker is not None and not breaker.allow():
            raise _ServiceUnavailable(route.name, breaker.retry_after_s())
        if not route.try_admit():
            if breaker is not None:
                breaker.record_neutral()
            raise _Backpressure(route.name, route.max_queue,
                                self.retry_after_s)
        return self._released_after(
            route, self._iter_sweep(route, inputs, chunk_size, with_cost))

    @staticmethod
    def _released_after(route: ModelRoute, chunks):
        """Hold the route's admission slot (and breaker outcome) for the
        generator's lifetime: completion is an engine success, a
        mid-stream exception an engine failure, and a client hang-up
        (generator closed early) neutral."""
        breaker = route.breaker
        try:
            yield from chunks
        except GeneratorExit:
            if breaker is not None:
                breaker.record_neutral()
            raise
        except BaseException:
            if breaker is not None:
                breaker.record_failure()
            raise
        else:
            if breaker is not None:
                breaker.record_success()
        finally:
            route.release()

    def _iter_sweep(self, route: ModelRoute, inputs: np.ndarray,
                    chunk_size: int, with_cost: bool):
        """Yield the header, one doc per computed chunk, and a summary."""
        total = len(inputs)
        chunks = -(-total // chunk_size)
        yield {"model": route.name, "count": total, "chunk_size": chunk_size,
               "chunks": chunks, "with_cost": with_cost}
        engine = route.sweep_engine()
        oracle = self._ensure_oracle(route.problem) if with_cost else None
        start = time.perf_counter()
        for index, lo in enumerate(range(0, total, chunk_size)):
            chunk = inputs[lo:lo + chunk_size]
            pe_idx, l2_idx = engine.predict_indices(chunk)
            num_pes, l2_kb = route.problem.space.values(pe_idx, l2_idx)
            predictions = [
                {"m": int(r[0]), "n": int(r[1]), "k": int(r[2]),
                 "dataflow": int(r[3]), "pe_idx": int(pe_idx[i]),
                 "l2_idx": int(l2_idx[i]), "num_pes": int(num_pes[i]),
                 "l2_kb": int(l2_kb[i])}
                for i, r in enumerate(chunk)]
            if with_cost:
                costs = oracle.cost_at(chunk, pe_idx, l2_idx)
                for pred, cost in zip(predictions, costs):
                    pred["predicted_cost"] = float(cost)
            yield {"chunk": index, "start": lo, "count": len(chunk),
                   "predictions": predictions}
        elapsed = time.perf_counter() - start
        route.stats.record_sweep(total, chunks)
        yield {"done": True, "model": route.name, "count": total,
               "chunks": chunks, "elapsed_s": elapsed,
               "samples_per_sec": total / max(elapsed, 1e-12)}

    # ------------------------------------------------------------------
    # /stats and /models
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """Aggregate counters plus the per-model breakdown."""
        with self._route_lock:
            routes = dict(self.routes)
        per_model = {name: route.stats_snapshot()
                     for name, route in routes.items()}
        # Merge the *same* per-model snapshots that go out in the
        # response, so the aggregate always equals the breakdown's sum
        # (and every route's stats lock is taken exactly once).
        doc = ServingStats.merge_snapshots(
            list(per_model.values()) + [self._errors.snapshot()],
            uptime_s=time.time() - self.started_at)
        doc["models"] = per_model
        doc["default_model"] = self.default_model
        if self.oracle is not None:
            info = self.oracle.cache_info()
            doc["oracle_cache"] = {"hits": info.hits, "misses": info.misses,
                                   "size": info.size,
                                   "capacity": info.capacity,
                                   "hit_rate": info.hit_rate}
        return doc

    def models_snapshot(self) -> dict:
        """The ``GET /models`` listing: active routes + registry artifacts."""
        with self._route_lock:
            routes = dict(self.routes)
        entries: dict[str, dict] = {}
        for name, route in routes.items():
            entries[name] = {"model_id": name, "loaded": True,
                             "source": route.source,
                             "requests_total": route.stats.requests_total,
                             "head_style": route.model.config.head_style
                             if hasattr(route.model, "config") else None}
        if self.registry is not None:
            for artifact in self.registry.list():
                if self._model_ids is not None \
                        and artifact.model_id not in self._model_ids:
                    continue
                entry = entries.setdefault(
                    artifact.model_id,
                    {"model_id": artifact.model_id, "loaded": False,
                     "source": "registry", "requests_total": 0})
                entry.update(artifact.summary())
                entry["model_id"] = artifact.model_id
        models = sorted(entries.values(), key=lambda e: e["model_id"])
        return {"default_model": self.default_model, "count": len(models),
                "models": models}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "DSEServer":
        """Serve in a background thread (tests / embedded use)."""
        with self._route_lock:
            self._running = True
            for route in self.routes.values():
                route.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="dse-http-server", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        with self._route_lock:
            self._running = True
            for route in self.routes.values():
                route.start()
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None
        with self._route_lock:
            self._running = False
            routes = list(self.routes.values())
        for route in routes:
            route.stop()
        if self.tracer is not None:
            self.tracer.close()
        self.log.info("server stopped",
                      extra={"routes": [r.name for r in routes]})

    def __enter__(self) -> "DSEServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
