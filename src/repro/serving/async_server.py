"""Asyncio HTTP front-end: the same serving bytes, event-loop concurrency.

:class:`AsyncDSEServer` serves exactly the same endpoints — and, modulo
timing fields, the same response bytes — as the threaded
:class:`~repro.serving.DSEServer`, because it reuses every
application-layer handler (``handle_predict``, ``prepare_sweep``,
``stats_snapshot``, ``models_snapshot``) unchanged.  What it replaces is
the transport: instead of one OS thread per connection, a single asyncio
event loop parses HTTP/1.1 requests and bridges the blocking
:class:`~repro.serving.DynamicBatcher`/engine machinery through
``loop.run_in_executor``, which makes tail-latency controls practical:

* **Bounded admission** — each :class:`~repro.serving.ModelRoute` has a
  ``max_queue``-bounded in-flight budget; a full route answers HTTP 429
  with a ``Retry-After`` header instead of queueing unboundedly.
* **Per-request timeouts** — a request that exceeds
  ``request_timeout_s`` answers HTTP 504 (and cancels its unserved
  batcher futures) instead of tying up a connection forever.
* **Graceful drain** — ``shutdown()`` closes the listener, lets every
  in-flight request complete, rejects requests arriving on kept-alive
  connections with HTTP 503, and only then stops the routes.

Streaming ``POST /sweep`` keeps the threaded server's chunked-NDJSON
framing byte for byte: one ndjson line per HTTP chunk, flushed as soon
as the executor thread computes it.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from email.utils import formatdate
from http import HTTPStatus

from .server import (_MAX_BODY_BYTES, _METRICS_CONTENT_TYPE, DSEServer,
                     _Backpressure, _BadRequest, _NotFound, _RequestTimeout,
                     _ServiceUnavailable)

__all__ = ["AsyncDSEServer"]

_DRAIN_POLL_S = 0.02


def _head(status: int, headers) -> bytes:
    """An HTTP/1.1 response head (status line + headers + blank line)."""
    try:
        phrase = HTTPStatus(status).phrase
    except ValueError:                       # pragma: no cover - defensive
        phrase = ""
    lines = [f"HTTP/1.1 {status} {phrase}",
             "Server: repro-dse-async",
             f"Date: {formatdate(usegmt=True)}"]
    lines += [f"{name}: {value}" for name, value in headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


class _Connection:
    """Per-connection drain state: its writer and whether a request is
    currently being served on it."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.busy = False


class AsyncDSEServer(DSEServer):
    """The asyncio front-end over the shared serving application layer.

    Accepts every :class:`DSEServer` parameter plus:

    Parameters
    ----------
    executor_workers:
        Threads in the bridge pool that runs the blocking application
        handlers (default ``min(32, 8 * cpu_count)``).  Admitted requests
        beyond this wait for a free thread — ``max_queue`` bounds how
        many may wait per route.
    drain_timeout_s:
        How long ``shutdown()`` waits for in-flight requests to complete
        before stopping the event loop anyway (default 10s).
    """

    def __init__(self, *args, executor_workers: int | None = None,
                 drain_timeout_s: float = 10.0, **kwargs):
        self._executor_workers = executor_workers or min(
            32, 8 * (os.cpu_count() or 1))
        if self._executor_workers < 1:
            raise ValueError("executor_workers must be >= 1")
        self._drain_timeout_s = drain_timeout_s
        super().__init__(*args, **kwargs)

    # ------------------------------------------------------------------
    # Transport lifecycle
    # ------------------------------------------------------------------
    def _make_transport(self, host: str, port: int) -> None:
        # Bind synchronously so `address` works the moment the server is
        # constructed, exactly like the threaded transport (tests rely
        # on ephemeral-port discovery before start()).
        self._sock = socket.create_server((host, port))
        self._sock.setblocking(False)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._aserver: asyncio.Server | None = None
        self._thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._draining = False
        self._conns: dict[object, _Connection] = {}
        self._started = threading.Event()
        self._loop_error: BaseException | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._sock.getsockname()[:2]

    def start(self) -> "AsyncDSEServer":
        """Serve from a background event-loop thread."""
        with self._route_lock:
            self._running = True
            for route in self.routes.values():
                route.start()
        if self._thread is None:
            self._thread = threading.Thread(target=self._run_loop,
                                            name="dse-async-server",
                                            daemon=True)
            self._thread.start()
            if not self._started.wait(10.0):    # pragma: no cover
                raise RuntimeError("async server event loop did not start")
            if self._loop_error is not None:    # pragma: no cover
                raise RuntimeError("async server failed to start") \
                    from self._loop_error
        return self

    def serve_forever(self) -> None:
        """Serve until interrupted (the CLI path)."""
        self.start()
        while self._thread is not None and self._thread.is_alive():
            time.sleep(0.2)

    def shutdown(self) -> None:
        """Graceful drain: stop accepting, let in-flight requests finish,
        then stop the loop and the routes."""
        thread, loop = self._thread, self._loop
        if thread is not None and thread.is_alive() and loop is not None:
            try:
                future = asyncio.run_coroutine_threadsafe(self._drain(), loop)
                future.result(self._drain_timeout_s + 5.0)
            except Exception:                   # pragma: no cover
                pass                            # the loop stops regardless
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10.0)
        self._thread = None
        try:
            self._sock.close()
        except OSError:                         # pragma: no cover
            pass
        with self._route_lock:
            self._running = False
            routes = list(self.routes.values())
        for route in routes:
            route.stop()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_workers,
            thread_name_prefix="dse-async-worker")
        loop.set_default_executor(self._executor)
        try:
            self._aserver = loop.run_until_complete(
                asyncio.start_server(self._handle_connection,
                                     sock=self._sock))
        except BaseException as exc:            # pragma: no cover
            self._loop_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()
            self._executor.shutdown(wait=False)

    async def _drain(self) -> None:
        self._draining = True
        if self._aserver is not None:
            self._aserver.close()
            await self._aserver.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._drain_timeout_s
        while self._conns and loop.time() < deadline:
            for conn in list(self._conns.values()):
                if not conn.busy:       # idle keep-alive: hang up now
                    conn.writer.close()
            await asyncio.sleep(_DRAIN_POLL_S)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        key = object()
        self._conns[key] = conn
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers = request
                conn.busy = True
                try:
                    keep_alive = await self._dispatch(writer, reader,
                                                      method, path, headers)
                finally:
                    conn.busy = False
                if not keep_alive or self._draining \
                        or headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        finally:
            self._conns.pop(key, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        """One request line + headers, or ``None`` on EOF/garbage."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) < 2:
            return None
        method, path = parts[0], parts[1]
        headers: dict[str, str] = {}
        while True:
            hline = await reader.readline()
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _read_json_body(self, reader: asyncio.StreamReader,
                              headers: dict[str, str]):
        """Mirror the threaded ``_read_body`` (same limits, same errors)."""
        try:
            length = int(headers.get("content-length", 0))
        except (TypeError, ValueError):
            raise _BadRequest("invalid Content-Length header") from None
        if length <= 0 or length > _MAX_BODY_BYTES:
            raise _BadRequest(f"Content-Length required (max "
                              f"{_MAX_BODY_BYTES} bytes)")
        body = await reader.readexactly(length)
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"invalid JSON: {exc}") from None

    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    doc: dict, extra_headers=()) -> bool:
        """Write one JSON response; returns whether to keep the
        connection alive (errors close it, like the threaded server)."""
        body = json.dumps(doc).encode()
        close = status >= 400 or self._draining
        headers = [("Content-Type", "application/json"),
                   ("Content-Length", str(len(body)))]
        headers += list(extra_headers)
        if close:
            headers.append(("Connection", "close"))
        writer.write(_head(status, headers) + body)
        await writer.drain()
        return not close

    async def _dispatch(self, writer, reader, method: str, path: str,
                        headers: dict[str, str]) -> bool:
        loop = asyncio.get_running_loop()
        span = None
        trace_headers: list[tuple[str, str]] = []
        try:
            if method == "GET":
                if path == "/healthz":
                    return await self._send(writer, 200, {
                        "status": "ok",
                        "uptime_s": time.time() - self.started_at})
                if path == "/stats":
                    doc = await loop.run_in_executor(None,
                                                     self.stats_snapshot)
                    return await self._send(writer, 200, doc)
                if path == "/models":
                    doc = await loop.run_in_executor(None,
                                                     self.models_snapshot)
                    return await self._send(writer, 200, doc)
                if path == "/metrics":
                    text = await loop.run_in_executor(None,
                                                      self.metrics_text)
                    return await self._send_raw(writer, text.encode(),
                                                _METRICS_CONTENT_TYPE)
                return await self._send(writer, 404, {
                    "error": f"unknown route {method} {path!r}"})
            if method != "POST" or path not in ("/predict", "/sweep"):
                return await self._send(writer, 404, {
                    "error": f"unknown route {method} {path!r}"})
            span = self.begin_request_span(f"http.{path[1:]}",
                                           headers.get("x-trace-id"))
            if span is not None:
                trace_headers.append(("X-Trace-Id", span.trace_id))
            doc = await self._read_json_body(reader, headers)
            if self._draining:
                return await self._send(writer, 503, {
                    "error": "server is draining; request rejected"},
                    trace_headers)
            if path == "/predict":
                # The inner future wait already enforces
                # request_timeout_s; the outer wait_for is the backstop
                # for blocking work outside a future (oracle, engine).
                trace = span.context if span is not None else None
                result = await asyncio.wait_for(
                    loop.run_in_executor(
                        None, lambda: self.handle_predict(doc, trace=trace)),
                    self.request_timeout_s + 1.0)
                return await self._send(writer, 200, result, trace_headers)
            return await self._stream_sweep(writer, doc, trace_headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            if span is not None:
                span.status = "error"
            return False
        except _NotFound as exc:
            return await self._send(writer, 404, {"error": str(exc)},
                                    trace_headers)
        except _Backpressure as exc:
            return await self._send(
                writer, 429, {"error": str(exc)},
                [("Retry-After", exc.retry_after_header)] + trace_headers)
        except _ServiceUnavailable as exc:
            return await self._send(
                writer, 503, {"error": str(exc)},
                [("Retry-After", exc.retry_after_header)] + trace_headers)
        except _RequestTimeout as exc:
            self.record_error()
            return await self._send(writer, 504, {"error": str(exc)},
                                    trace_headers)
        except asyncio.TimeoutError:
            self.record_error()
            return await self._send(writer, 504, {
                "error": f"request timed out after "
                         f"{self.request_timeout_s:g}s"}, trace_headers)
        except _BadRequest as exc:
            return await self._send(writer, 400, {"error": str(exc)},
                                    trace_headers)
        except Exception as exc:    # pragma: no cover - defensive 500 path
            self.record_error()
            return await self._send(writer, 500, {
                "error": f"{type(exc).__name__}: {exc}"}, trace_headers)
        finally:
            if span is not None:
                span.end()

    async def _send_raw(self, writer: asyncio.StreamWriter, body: bytes,
                        content_type: str) -> bool:
        """Write one non-JSON 200 response (the /metrics exposition)."""
        close = self._draining
        headers = [("Content-Type", content_type),
                   ("Content-Length", str(len(body)))]
        if close:
            headers.append(("Connection", "close"))
        writer.write(_head(200, headers) + body)
        await writer.drain()
        return not close

    async def _stream_sweep(self, writer, doc, trace_headers=()) -> bool:
        """Chunked-NDJSON streaming with the threaded server's framing."""
        loop = asyncio.get_running_loop()
        # Validation (and admission) happen before the response commits:
        # _BadRequest/_NotFound/_Backpressure surface as clean statuses
        # through _dispatch's handlers.
        chunks = await asyncio.wait_for(
            loop.run_in_executor(None, self.prepare_sweep, doc),
            self.request_timeout_s + 1.0)
        writer.write(_head(200, [("Content-Type", "application/x-ndjson"),
                                 ("Transfer-Encoding", "chunked"),
                                 *trace_headers]))
        sentinel = object()
        try:
            while True:
                item = await asyncio.wait_for(
                    loop.run_in_executor(None, next, chunks, sentinel),
                    self.request_timeout_s + 1.0)
                if item is sentinel:
                    break
                self._write_chunk(writer, item)
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
            return not self._draining
        except (ConnectionError, asyncio.IncompleteReadError):
            return False
        except Exception as exc:    # mid-stream failure: error line + close
            self.record_error()
            try:
                self._write_chunk(
                    writer, {"error": f"{type(exc).__name__}: {exc}"})
                writer.write(b"0\r\n\r\n")
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            return False
        finally:
            await loop.run_in_executor(None, chunks.close)

    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, doc: dict) -> None:
        data = json.dumps(doc).encode() + b"\n"
        writer.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
