"""Thread-safe serving counters shared by the batcher and the HTTP server.

Each served model owns one :class:`ServingStats`: its
:class:`~repro.serving.DynamicBatcher` records per-request queue waits and
per-batch sizes, the engine's ``on_batch`` hook
(:class:`repro.core.BatchedDSEPredictor`) records raw forward passes, the
streaming sweep endpoint records per-sweep row/chunk counts, and the HTTP
front-ends record whole-request service latency into a
:class:`LatencyHistogram` (p50/p95/p99 per route).
``GET /stats`` serialises one snapshot per model plus an aggregate built
with :meth:`ServingStats.merge_snapshots`.  An optional attached oracle
contributes its label-cache hit rate.
"""

from __future__ import annotations

import bisect
import threading
import time

from ..dse import ExhaustiveOracle

__all__ = ["LatencyHistogram", "ServingStats"]


def _geometric_bounds(min_s: float, growth: float, count: int) -> list[float]:
    bounds, edge = [], min_s
    for _ in range(count):
        bounds.append(edge)
        edge *= growth
    return bounds


class LatencyHistogram:
    """Fixed geometric-bucket latency histogram with O(1) records.

    64 buckets spanning 50 microseconds to ~64 seconds (ratio 1.25), plus
    an overflow bucket: enough resolution for p50/p95/p99 under serving
    load without per-request allocation or unbounded sample storage.
    Percentiles report the upper edge of the bucket holding the target
    rank (clamped to the maximum observed sample), so they are
    conservative estimates within one bucket ratio of the true value.

    Not thread-safe on its own: :class:`ServingStats` serialises access
    under its lock.  Snapshots carry the raw bucket counts so
    :meth:`merge_snapshots` can recompute aggregate percentiles from
    summed counts instead of averaging averages.
    """

    _BOUNDS = _geometric_bounds(5e-5, 1.25, 64)     # upper bucket edges, s

    def __init__(self):
        self._counts = [0] * (len(self._BOUNDS) + 1)    # +1: overflow
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        self._counts[bisect.bisect_left(self._BOUNDS, seconds)] += 1
        self.count += 1
        self.total_s += seconds
        self.max_s = max(self.max_s, seconds)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q`` in [0, 100] percentile estimate in seconds."""
        return self._percentile_of(self._counts, q, self.max_s)

    @classmethod
    def _percentile_of(cls, counts, q: float, max_s: float) -> float:
        total = sum(counts)
        if not total:
            return 0.0
        target = max(1, -(-int(total * q) // 100))      # ceil(total*q/100)
        seen = 0
        for i, bucket in enumerate(counts):
            seen += bucket
            if seen >= target:
                edge = cls._BOUNDS[i] if i < len(cls._BOUNDS) else max_s
                return min(edge, max_s)
        return max_s

    def snapshot(self) -> dict:
        """JSON-ready percentiles plus the raw buckets (for merging)."""
        return self._render(list(self._counts), self.count, self.total_s,
                            self.max_s)

    @classmethod
    def _render(cls, counts, count, total_s, max_s) -> dict:
        return {"count": count,
                "mean_ms": (total_s / count if count else 0.0) * 1e3,
                "p50_ms": cls._percentile_of(counts, 50, max_s) * 1e3,
                "p95_ms": cls._percentile_of(counts, 95, max_s) * 1e3,
                "p99_ms": cls._percentile_of(counts, 99, max_s) * 1e3,
                "max_ms": max_s * 1e3,
                "buckets": counts}

    @classmethod
    def merge_snapshots(cls, docs) -> dict:
        """Aggregate snapshot dicts: sum buckets, recompute percentiles."""
        docs = [d for d in docs if d and d.get("buckets")]
        counts = [0] * (len(cls._BOUNDS) + 1)
        for doc in docs:
            for i, bucket in enumerate(doc["buckets"][:len(counts)]):
                counts[i] += bucket
        return cls._render(counts,
                           sum(d["count"] for d in docs),
                           sum(d["mean_ms"] / 1e3 * d["count"] for d in docs),
                           max((d["max_ms"] / 1e3 for d in docs),
                               default=0.0))


class ServingStats:
    """Aggregate serving counters (all methods thread-safe)."""

    def __init__(self, oracle: ExhaustiveOracle | None = None):
        self._lock = threading.Lock()
        self.oracle = oracle
        self.started_at = time.time()
        self.requests_total = 0
        self.batches_total = 0
        self.samples_total = 0
        self.queued_samples = 0     # rows that waited in the queue (the
                                    # denominator of the mean queue wait;
                                    # bulk fast-path rows never queue)
        self.forward_passes = 0
        self.forward_rows = 0
        self.forward_time_s = 0.0
        self.queue_wait_total_s = 0.0
        self.queue_wait_max_s = 0.0
        self.sweeps_total = 0
        self.sweep_rows_total = 0
        self.sweep_chunks_total = 0
        self.errors_total = 0
        self.latency = LatencyHistogram()

    # ------------------------------------------------------------------
    def record_request(self, count: int = 1) -> None:
        with self._lock:
            self.requests_total += count

    def record_batch(self, size: int, queue_waits_s) -> None:
        """One served batch: its size and the waits of its *queued* rows
        (empty for the bulk fast path, which never queues)."""
        with self._lock:
            self.batches_total += 1
            self.samples_total += size
            for wait in queue_waits_s:
                self.queued_samples += 1
                self.queue_wait_total_s += wait
                self.queue_wait_max_s = max(self.queue_wait_max_s, wait)

    def record_forward(self, rows: int, elapsed_s: float) -> None:
        """``on_batch`` hook: one engine forward pass completed."""
        with self._lock:
            self.forward_passes += 1
            self.forward_rows += rows
            self.forward_time_s += elapsed_s

    def record_sweep(self, rows: int, chunks: int) -> None:
        """One completed streaming sweep: its row and chunk counts."""
        with self._lock:
            self.sweeps_total += 1
            self.sweep_rows_total += rows
            self.sweep_chunks_total += chunks

    def record_error(self) -> None:
        with self._lock:
            self.errors_total += 1

    def record_latency(self, seconds: float) -> None:
        """One served request's whole-service latency (HTTP front-ends)."""
        with self._lock:
            self.latency.record(seconds)

    # ------------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        return self.samples_total / self.batches_total if self.batches_total \
            else 0.0

    @property
    def mean_queue_wait_s(self) -> float:
        return self.queue_wait_total_s / self.queued_samples \
            if self.queued_samples else 0.0

    def snapshot(self) -> dict:
        """A JSON-ready copy of every counter (plus derived rates)."""
        with self._lock:
            doc = {
                "uptime_s": time.time() - self.started_at,
                "requests_total": self.requests_total,
                "batches_total": self.batches_total,
                "samples_total": self.samples_total,
                "queued_samples": self.queued_samples,
                "mean_batch_size": self.mean_batch_size,
                "forward_passes": self.forward_passes,
                "forward_rows": self.forward_rows,
                "forward_time_s": self.forward_time_s,
                "mean_queue_wait_ms": self.mean_queue_wait_s * 1e3,
                "max_queue_wait_ms": self.queue_wait_max_s * 1e3,
                "queue_wait_total_s": self.queue_wait_total_s,
                "sweeps_total": self.sweeps_total,
                "sweep_rows_total": self.sweep_rows_total,
                "sweep_chunks_total": self.sweep_chunks_total,
                "errors_total": self.errors_total,
                "latency": self.latency.snapshot(),
            }
        if self.oracle is not None:
            info = self.oracle.cache_info()
            doc["oracle_cache"] = {"hits": info.hits, "misses": info.misses,
                                   "size": info.size,
                                   "capacity": info.capacity,
                                   "hit_rate": info.hit_rate}
        return doc

    @staticmethod
    def merge_snapshots(snapshots, uptime_s: float) -> dict:
        """Aggregate per-model snapshots into one fleet-level view.

        Counters sum; means are recomputed from the summed numerators and
        denominators (never averaged-of-averages); maxima take the max.
        """
        merged = {"uptime_s": uptime_s}
        for key in ("requests_total", "batches_total", "samples_total",
                    "queued_samples", "forward_passes", "forward_rows",
                    "forward_time_s", "queue_wait_total_s", "sweeps_total",
                    "sweep_rows_total", "sweep_chunks_total", "errors_total"):
            merged[key] = sum(s[key] for s in snapshots)
        merged["mean_batch_size"] = (
            merged["samples_total"] / merged["batches_total"]
            if merged["batches_total"] else 0.0)
        merged["mean_queue_wait_ms"] = (
            1e3 * merged["queue_wait_total_s"] / merged["queued_samples"]
            if merged["queued_samples"] else 0.0)
        merged["max_queue_wait_ms"] = max(
            (s["max_queue_wait_ms"] for s in snapshots), default=0.0)
        merged["latency"] = LatencyHistogram.merge_snapshots(
            s.get("latency") for s in snapshots)
        return merged
