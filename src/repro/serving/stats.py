"""Thread-safe serving counters shared by the batcher and the HTTP server.

Each served model owns one :class:`ServingStats`: its
:class:`~repro.serving.DynamicBatcher` records per-request queue waits and
per-batch sizes, the engine's ``on_batch`` hook
(:class:`repro.core.BatchedDSEPredictor`) records raw forward passes, the
streaming sweep endpoint records per-sweep row/chunk counts, and the HTTP
front-ends record whole-request service latency into a
:class:`LatencyHistogram` (p50/p95/p99 per route).

Since the unified telemetry layer landed, ``ServingStats`` is a *view*
over :mod:`repro.obs` metrics: every counter/gauge/histogram lives in a
:class:`~repro.obs.MetricsRegistry` (the server's, labelled by model;
a private one for standalone use), so ``GET /metrics`` and ``GET /stats``
are two renderings of the same numbers.  :meth:`snapshot` keeps the
pre-telemetry JSON document unchanged — same keys, same types — so
existing ``/stats`` consumers never notice.  An optional attached oracle
contributes its label-cache hit rate.
"""

from __future__ import annotations

import threading
import time

from ..dse import ExhaustiveOracle
from ..obs import LatencyHistogram, MetricsRegistry

__all__ = ["LatencyHistogram", "ServingStats"]


class ServingStats:
    """Aggregate serving counters (all methods thread-safe).

    Parameters
    ----------
    oracle:
        Optional :class:`ExhaustiveOracle` whose label-cache hit rate the
        snapshot reports.
    registry:
        The :class:`~repro.obs.MetricsRegistry` to publish into; a
        private registry is created when omitted (standalone batchers,
        tests).
    labels:
        Label names/values attached to every series (the server passes
        ``{"model": <route name>}`` so per-route series stay distinct in
        one shared registry).
    """

    _COUNTERS = (
        ("_requests", "repro_requests_total",
         "Prediction requests received."),
        ("_batches", "repro_batches_total",
         "Coalesced batches served."),
        ("_samples", "repro_samples_total",
         "Rows served across all batches."),
        ("_queued_samples", "repro_queued_samples_total",
         "Rows that waited in the batcher queue."),
        ("_forward_passes", "repro_forward_passes_total",
         "Engine forward passes completed."),
        ("_forward_rows", "repro_forward_rows_total",
         "Rows pushed through engine forward passes."),
        ("_forward_seconds", "repro_forward_seconds_total",
         "Seconds spent inside engine forward passes."),
        ("_queue_wait_seconds", "repro_queue_wait_seconds_total",
         "Seconds queued rows spent waiting for their batch."),
        ("_sweeps", "repro_sweeps_total",
         "Streaming sweeps completed."),
        ("_sweep_rows", "repro_sweep_rows_total",
         "Rows served across streaming sweeps."),
        ("_sweep_chunks", "repro_sweep_chunks_total",
         "Chunks streamed across sweeps."),
        ("_errors", "repro_errors_total",
         "Requests that failed with an error."),
    )

    def __init__(self, oracle: ExhaustiveOracle | None = None,
                 registry: MetricsRegistry | None = None,
                 labels: dict | None = None):
        self._lock = threading.Lock()
        self.oracle = oracle
        self.started_at = time.time()
        self.registry = MetricsRegistry() if registry is None else registry
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}
        names = tuple(self.labels)
        for attr, metric, help in self._COUNTERS:
            family = self.registry.counter(metric, help, names)
            setattr(self, attr, family.labels(**self.labels)
                    if names else family.labels())
        gauge = self.registry.gauge("repro_queue_wait_max_seconds",
                                    "Longest observed batcher queue wait.",
                                    names)
        self._queue_wait_max = gauge.labels(**self.labels) if names \
            else gauge.labels()
        hist = self.registry.histogram(
            "repro_request_latency_seconds",
            "Whole-request service latency at the HTTP front-end.", names)
        self._latency = hist.labels(**self.labels) if names \
            else hist.labels()

    # ------------------------------------------------------------------
    def record_request(self, count: int = 1) -> None:
        with self._lock:
            self._requests.inc(count)

    def record_batch(self, size: int, queue_waits_s) -> None:
        """One served batch: its size and the waits of its *queued* rows
        (empty for the bulk fast path, which never queues)."""
        with self._lock:
            self._batches.inc()
            self._samples.inc(size)
            for wait in queue_waits_s:
                self._queued_samples.inc()
                self._queue_wait_seconds.inc(wait)
                self._queue_wait_max.set_max(wait)

    def record_forward(self, rows: int, elapsed_s: float) -> None:
        """``on_batch`` hook: one engine forward pass completed."""
        with self._lock:
            self._forward_passes.inc()
            self._forward_rows.inc(rows)
            self._forward_seconds.inc(elapsed_s)

    def record_sweep(self, rows: int, chunks: int) -> None:
        """One completed streaming sweep: its row and chunk counts."""
        with self._lock:
            self._sweeps.inc()
            self._sweep_rows.inc(rows)
            self._sweep_chunks.inc(chunks)

    def record_error(self) -> None:
        with self._lock:
            self._errors.inc()

    def record_latency(self, seconds: float) -> None:
        """One served request's whole-service latency (HTTP front-ends)."""
        with self._lock:
            self._latency.observe(seconds)

    # ------------------------------------------------------------------
    # Back-compat accessors (the pre-telemetry attribute surface)
    # ------------------------------------------------------------------
    @property
    def requests_total(self) -> int:
        return self._requests.value

    @property
    def batches_total(self) -> int:
        return self._batches.value

    @property
    def samples_total(self) -> int:
        return self._samples.value

    @property
    def queued_samples(self) -> int:
        return self._queued_samples.value

    @property
    def forward_passes(self) -> int:
        return self._forward_passes.value

    @property
    def forward_rows(self) -> int:
        return self._forward_rows.value

    @property
    def forward_time_s(self) -> float:
        return float(self._forward_seconds.value)

    @property
    def queue_wait_total_s(self) -> float:
        return float(self._queue_wait_seconds.value)

    @property
    def queue_wait_max_s(self) -> float:
        return float(self._queue_wait_max.value)

    @property
    def sweeps_total(self) -> int:
        return self._sweeps.value

    @property
    def sweep_rows_total(self) -> int:
        return self._sweep_rows.value

    @property
    def sweep_chunks_total(self) -> int:
        return self._sweep_chunks.value

    @property
    def errors_total(self) -> int:
        return self._errors.value

    @property
    def latency(self) -> LatencyHistogram:
        """The raw request-latency histogram (read-side back-compat)."""
        return self._latency.raw

    @property
    def mean_batch_size(self) -> float:
        batches = self.batches_total
        return self.samples_total / batches if batches else 0.0

    @property
    def mean_queue_wait_s(self) -> float:
        queued = self.queued_samples
        return self.queue_wait_total_s / queued if queued else 0.0

    def snapshot(self) -> dict:
        """A JSON-ready copy of every counter (plus derived rates).

        The document is key-for-key and type-for-type identical to the
        pre-telemetry ``ServingStats`` — it is now *derived* from the
        metrics registry rather than from private attributes.
        """
        with self._lock:
            doc = {
                "uptime_s": time.time() - self.started_at,
                "requests_total": self._requests.value,
                "batches_total": self._batches.value,
                "samples_total": self._samples.value,
                "queued_samples": self._queued_samples.value,
                "mean_batch_size": self.mean_batch_size,
                "forward_passes": self._forward_passes.value,
                "forward_rows": self._forward_rows.value,
                "forward_time_s": float(self._forward_seconds.value),
                "mean_queue_wait_ms": self.mean_queue_wait_s * 1e3,
                "max_queue_wait_ms": float(self._queue_wait_max.value) * 1e3,
                "queue_wait_total_s": float(self._queue_wait_seconds.value),
                "sweeps_total": self._sweeps.value,
                "sweep_rows_total": self._sweep_rows.value,
                "sweep_chunks_total": self._sweep_chunks.value,
                "errors_total": self._errors.value,
                "latency": self._latency.snapshot(),
            }
        if self.oracle is not None:
            info = self.oracle.cache_info()
            doc["oracle_cache"] = {"hits": info.hits, "misses": info.misses,
                                   "size": info.size,
                                   "capacity": info.capacity,
                                   "hit_rate": info.hit_rate}
        return doc

    @staticmethod
    def merge_snapshots(snapshots, uptime_s: float) -> dict:
        """Aggregate per-model snapshots into one fleet-level view.

        Counters sum; means are recomputed from the summed numerators and
        denominators (never averaged-of-averages); maxima take the max.
        Heterogeneous snapshots are tolerated: a route whose snapshot
        predates a newly-added counter (e.g. after a route hot-add
        mid-flight) contributes zero for the missing key instead of
        raising ``KeyError`` out of the aggregate ``/stats``.
        """
        snapshots = list(snapshots)
        merged = {"uptime_s": uptime_s}
        for key in ("requests_total", "batches_total", "samples_total",
                    "queued_samples", "forward_passes", "forward_rows",
                    "forward_time_s", "queue_wait_total_s", "sweeps_total",
                    "sweep_rows_total", "sweep_chunks_total", "errors_total"):
            merged[key] = sum(s.get(key, 0) for s in snapshots)
        merged["mean_batch_size"] = (
            merged["samples_total"] / merged["batches_total"]
            if merged["batches_total"] else 0.0)
        merged["mean_queue_wait_ms"] = (
            1e3 * merged["queue_wait_total_s"] / merged["queued_samples"]
            if merged["queued_samples"] else 0.0)
        merged["max_queue_wait_ms"] = max(
            (s.get("max_queue_wait_ms", 0.0) for s in snapshots),
            default=0.0)
        merged["latency"] = LatencyHistogram.merge_snapshots(
            s.get("latency") for s in snapshots)
        return merged
