"""Dynamic request batching: many concurrent clients, one batched engine.

Single-workload prediction requests arrive from arbitrary threads (the
HTTP front-end runs one thread per connection) and are coalesced into
micro-batches for :class:`repro.core.BatchedDSEPredictor`:

* :class:`RequestQueue` — a condition-variable queue whose ``get_batch``
  blocks for the first request, then keeps collecting until the batch is
  full or ``max_wait`` has elapsed (the classic size-or-deadline flush
  policy of serving systems).
* :class:`DynamicBatcher` — a background thread draining the queue: one
  engine forward pass per coalesced batch, results fanned back out
  through per-request :class:`~concurrent.futures.Future`\\ s.

Predictions are bit-identical to calling :class:`repro.core.DSEPredictor`
per request — batching only changes *when* rows reach the model, never
what the model computes for a row.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..core import BatchedDSEPredictor
from ..obs import SpanContext, engine_trace_scope

__all__ = ["ServedPrediction", "RequestQueue", "DynamicBatcher"]


@dataclass(frozen=True)
class ServedPrediction:
    """What a client's future resolves to: one workload's design point."""

    m: int
    n: int
    k: int
    dataflow: int
    pe_idx: int
    l2_idx: int
    num_pes: int
    l2_kb: int
    queue_wait_s: float
    batch_size: int             # how many requests shared the forward pass

    def as_dict(self) -> dict:
        return {"m": self.m, "n": self.n, "k": self.k,
                "dataflow": self.dataflow, "num_pes": self.num_pes,
                "l2_kb": self.l2_kb, "pe_idx": self.pe_idx,
                "l2_idx": self.l2_idx,
                "queue_wait_ms": self.queue_wait_s * 1e3,
                "batch_size": self.batch_size}


class _Pending:
    """One enqueued request: its input row, future, and arrival time.

    ``trace`` carries the request's :class:`~repro.obs.SpanContext`
    across the thread boundary into the batcher worker, which emits the
    ``queue.wait`` span on the request's behalf once its batch is served.
    """

    __slots__ = ("row", "future", "enqueued_at", "trace")

    def __init__(self, row: np.ndarray, trace: SpanContext | None = None):
        self.row = row
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()
        self.trace = trace


class RequestQueue:
    """Unbounded thread-safe queue with batch-draining semantics."""

    def __init__(self):
        self._items: deque[_Pending] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: _Pending) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("request queue is closed")
            self._items.append(item)
            self._cond.notify()

    def get_batch(self, max_size: int, max_wait_s: float) -> list[_Pending] | None:
        """Next coalesced batch, or ``None`` once closed and drained.

        Blocks indefinitely for the first request; after that, collects
        until ``max_size`` requests are in hand or ``max_wait_s`` has
        passed — whichever comes first.
        """
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                self._cond.wait()
            batch = [self._items.popleft()]
            deadline = time.perf_counter() + max_wait_s
            while len(batch) < max_size:
                while self._items and len(batch) < max_size:
                    batch.append(self._items.popleft())
                if len(batch) >= max_size or self._closed:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return batch

    def close(self) -> None:
        """Reject new requests; pending ones may still be drained."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class DynamicBatcher:
    """Coalesce concurrent prediction requests into engine micro-batches.

    Parameters
    ----------
    engine:
        The shared :class:`~repro.core.BatchedDSEPredictor`.  Its
        ``micro_batch_size`` should be >= ``max_batch_size`` so each
        coalesced batch is a single forward pass.
    max_batch_size:
        Flush as soon as this many requests are waiting.
    max_wait_ms:
        Flush a partial batch this long after its first request arrived.
        Low values favour latency, high values throughput.
    stats:
        Optional shared :class:`ServingStats`; one is created otherwise.
    start:
        Pass ``False`` to enqueue without serving (tests use this to make
        coalescing deterministic), then call :meth:`start`.
    """

    def __init__(self, engine: BatchedDSEPredictor, max_batch_size: int = 64,
                 max_wait_ms: float = 2.0, stats=None, start: bool = True):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        from .stats import ServingStats
        self.engine = engine
        self.problem = engine.problem
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.stats = stats if stats is not None else ServingStats()
        self.queue = RequestQueue()
        self._thread: threading.Thread | None = None
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "DynamicBatcher":
        if self._thread is None:
            self._thread = threading.Thread(target=self._serve_loop,
                                            name="dse-dynamic-batcher",
                                            daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Close the queue, drain pending requests, join the worker.

        Raises :class:`TimeoutError` if the worker is still draining when
        ``timeout`` expires.  The thread handle is kept in that case, so
        :attr:`running` stays truthful and a later :meth:`start` can
        never race a second worker onto the same queue — call ``stop()``
        again once the engine catches up.
        """
        self.queue.close()
        thread = self._thread
        if thread is None:
            return
        thread.join(timeout)
        if thread.is_alive():
            raise TimeoutError(
                f"batcher worker still draining after {timeout:g}s; "
                f"call stop() again once the engine catches up")
        self._thread = None

    def __enter__(self) -> "DynamicBatcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API (any thread)
    # ------------------------------------------------------------------
    def _validated_row(self, m: int, n: int, k: int,
                       dataflow: int) -> np.ndarray:
        m_c, n_c, k_c = self.problem.clamp_inputs(m, n, k)
        if not 0 <= int(dataflow) < self.problem.bounds.n_dataflows:
            raise ValueError(
                f"dataflow must be in 0.."
                f"{self.problem.bounds.n_dataflows - 1}, got {dataflow}")
        return np.array([int(m_c), int(n_c), int(k_c), int(dataflow)],
                        dtype=np.int64)

    def submit(self, m: int, n: int, k: int, dataflow: int = 0,
               trace: SpanContext | None = None) -> Future:
        """Enqueue one workload; the future resolves to a
        :class:`ServedPrediction` once its batch has been served.

        ``trace`` (optional) is the caller's span context: the worker
        will emit a ``queue.wait`` child span and attribute the engine's
        forward pass to the trace."""
        pending = _Pending(self._validated_row(m, n, k, dataflow), trace)
        # Enqueue first: a put on a closed queue raises, and a request
        # that never entered the queue must not skew /stats accounting.
        self.queue.put(pending)
        self.stats.record_request()
        return pending.future

    def predict(self, m: int, n: int, k: int, dataflow: int = 0,
                timeout: float | None = 30.0,
                trace: SpanContext | None = None) -> ServedPrediction:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(m, n, k, dataflow, trace=trace).result(timeout)

    def predict_batch(self, workloads,
                      trace: SpanContext | None = None) -> list[ServedPrediction]:
        """Serve a pre-assembled bulk batch in one vectorised engine call.

        Bulk requests bypass the queue: re-chunking a thousand-row body
        into ``max_batch_size`` coalesced batches (and a future per row)
        would stall the single-row path behind it for no benefit — the
        engine already micro-batches internally.  Validation, clamping,
        and stats accounting match :meth:`submit`; the caller's thread
        does the forward pass.
        """
        rows = [self._validated_row(m, n, k, df)
                for m, n, k, df in workloads]
        if not rows:
            raise ValueError("'workloads' must be a non-empty list")
        self.stats.record_request(len(rows))
        inputs = np.stack(rows)
        try:
            with engine_trace_scope((trace,) if trace is not None else ()):
                pe_idx, l2_idx = self.engine.predict_indices(inputs)
            num_pes, l2_kb = self.problem.space.values(pe_idx, l2_idx)
        except Exception:
            self.stats.record_error()
            raise
        # An empty waits tuple is deliberate: bulk rows never queue, so
        # they add to the batch counters without touching queued_samples
        # (the wait-percentile denominator).
        self.stats.record_batch(len(rows), ())
        return [ServedPrediction(
                    m=int(row[0]), n=int(row[1]), k=int(row[2]),
                    dataflow=int(row[3]), pe_idx=int(pe_idx[i]),
                    l2_idx=int(l2_idx[i]), num_pes=int(num_pes[i]),
                    l2_kb=int(l2_kb[i]), queue_wait_s=0.0,
                    batch_size=len(rows))
                for i, row in enumerate(rows)]

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _serve_loop(self) -> None:
        while True:
            batch = self.queue.get_batch(self.max_batch_size,
                                         self.max_wait_ms / 1e3)
            if batch is None:
                return
            self._serve_batch(batch)

    def _serve_batch(self, batch: list[_Pending]) -> None:
        # Claim every future before touching the engine: a client that
        # timed out and cancelled must neither burn an engine row nor —
        # via set_result on a cancelled future — raise InvalidStateError
        # and kill this worker (hanging every later request).  Once
        # claimed, a future can no longer be cancelled, so the
        # set_result/set_exception below are race-free.
        batch = [p for p in batch
                 if p.future.set_running_or_notify_cancel()]
        if not batch:
            return
        served_at = time.perf_counter()
        inputs = np.stack([p.row for p in batch])
        # Deduplicate: a multi-workload request enqueues one pending per
        # row, all sharing one trace — one engine.forward span each.
        contexts = tuple(dict.fromkeys(
            p.trace for p in batch if p.trace is not None))
        try:
            with engine_trace_scope(contexts):
                pe_idx, l2_idx = self.engine.predict_indices(inputs)
            num_pes, l2_kb = self.problem.space.values(pe_idx, l2_idx)
        except Exception as exc:  # pragma: no cover - engine failure path
            self.stats.record_error()
            for pending in batch:
                pending.future.set_exception(exc)
            return
        waits = [served_at - p.enqueued_at for p in batch]
        self.stats.record_batch(len(batch), waits)
        for i, pending in enumerate(batch):
            row = pending.row
            pending.future.set_result(ServedPrediction(
                m=int(row[0]), n=int(row[1]), k=int(row[2]),
                dataflow=int(row[3]), pe_idx=int(pe_idx[i]),
                l2_idx=int(l2_idx[i]), num_pes=int(num_pes[i]),
                l2_kb=int(l2_kb[i]), queue_wait_s=waits[i],
                batch_size=len(batch)))
        # Spans go out *after* the futures resolve: emission is off the
        # response critical path, so clients never wait on the tracer.
        for pending, wait in zip(batch, waits):
            if pending.trace is not None and pending.trace.tracer is not None:
                span = pending.trace.tracer.span("queue.wait",
                                                 parent=pending.trace)
                span.start_time -= wait     # span began at enqueue time
                span.set_attribute("batch_size", len(batch))
                span.end(duration_s=wait)
