"""Model-level deployment: fold per-layer DSE into one configuration (§III-E).

AIRCHITECT v2 predicts per-layer, so deploying a whole network needs a
single hardware choice.  The paper gives two methods:

* **Method 1** — for every layer's recommended configuration, estimate the
  *model-wide* latency (all layers, MAESTRO-evaluated) and pick the
  configuration with the minimum.
* **Method 2** — find the bottleneck layer (largest latency on its own
  recommended configuration) and adopt its configuration.

Both apply to any per-layer DSE technique, which is how the Fig. 7
comparison puts every baseline on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dse import DSEProblem
from ..maestro import CostModel, Dataflow
from ..workloads import ModelWorkload

__all__ = ["DeploymentResult", "DeploymentEvaluator"]


@dataclass
class DeploymentResult:
    """Chosen configuration and its model-level cost."""

    pe_idx: int
    l2_idx: int
    num_pes: int
    l2_kb: int
    total_latency: float
    per_layer_latency: np.ndarray


class DeploymentEvaluator:
    """Evaluates model-level latency of configurations and applies
    deployment Methods 1 / 2."""

    def __init__(self, problem: DSEProblem, cost_model: CostModel | None = None,
                 dataflow: int | str | Dataflow | None = None):
        """``dataflow=None`` lets every layer use its best dataflow on the
        candidate hardware (flexible-mapping accelerator, MAESTRO-style);
        passing a specific dataflow pins the mapping."""
        self.problem = problem
        self.cost_model = cost_model or CostModel()
        self.dataflow = None if dataflow is None else Dataflow.from_any(dataflow)

    # ------------------------------------------------------------------
    def layer_inputs(self, workload: ModelWorkload,
                     dataflow: int = 0) -> np.ndarray:
        """Per-unique-layer input tuples (clamped to Table-I feature ranges)."""
        layers = workload.layer_array()
        m, n, k = self.problem.clamp_inputs(layers[:, 0], layers[:, 1],
                                            layers[:, 2])
        df = np.full(len(layers), int(dataflow), dtype=np.int64)
        return np.stack([m, n, k, df], axis=1)

    def layer_latencies(self, workload: ModelWorkload, num_pes: int,
                        l2_kb: int) -> np.ndarray:
        """Latency of every unique layer on the given hardware (true dims,
        not clamped — the feature clamp only affects model inputs)."""
        return self.config_latencies(workload, num_pes, l2_kb)

    def config_latencies(self, workload: ModelWorkload, num_pes,
                         l2_kb) -> np.ndarray:
        """Per-layer latency on a *batch* of candidate configurations.

        ``num_pes``/``l2_kb`` broadcast against a trailing configuration
        axis: scalars give shape ``(L,)``, length-C arrays ``(L, C)`` — one
        vectorised cost-model pass per dataflow instead of a Python loop
        over candidates.
        """
        layers = workload.layer_array()
        pes = np.asarray(num_pes)
        l2 = np.asarray(l2_kb)
        scalar_config = pes.ndim == 0 and l2.ndim == 0
        m = layers[:, 0].reshape(-1, 1)
        n = layers[:, 1].reshape(-1, 1)
        k = layers[:, 2].reshape(-1, 1)
        pes = np.atleast_1d(pes).reshape(1, -1)
        l2 = np.atleast_1d(l2).reshape(1, -1)
        if self.dataflow is not None:
            lat = self.cost_model.evaluate(m, n, k, self.dataflow,
                                           pes, l2).latency_cycles
        else:
            per_df = [self.cost_model.evaluate(m, n, k, df, pes, l2)
                      .latency_cycles for df in Dataflow]
            lat = np.min(np.stack(per_df), axis=0)
        return lat[:, 0] if scalar_config else lat

    def model_latency(self, workload: ModelWorkload, num_pes: int,
                      l2_kb: int) -> float:
        """Count-weighted total latency of the workload on one configuration."""
        lat = self.layer_latencies(workload, num_pes, l2_kb)
        return float((lat * workload.count_array()).sum())

    # ------------------------------------------------------------------
    def _pick_config(self, workload: ModelWorkload,
                     candidates: np.ndarray) -> DeploymentResult:
        """Evaluate (C, 2) candidate index pairs on the whole model in one
        vectorised pass and return the minimum-latency configuration
        (earliest candidate wins ties, matching the scan order of the
        original per-candidate loop)."""
        space = self.problem.space
        counts = workload.count_array()
        pes = space.pe_choices[candidates[:, 0]]
        l2 = space.l2_choices[candidates[:, 1]]
        lat = self.config_latencies(workload, pes, l2)   # (L, C)
        totals = (lat * counts[:, None]).sum(axis=0)
        winner = int(np.argmin(totals))
        return DeploymentResult(pe_idx=int(candidates[winner, 0]),
                                l2_idx=int(candidates[winner, 1]),
                                num_pes=int(pes[winner]),
                                l2_kb=int(l2[winner]),
                                total_latency=float(totals[winner]),
                                per_layer_latency=lat[:, winner])

    def method1(self, workload: ModelWorkload, pe_idx: np.ndarray,
                l2_idx: np.ndarray) -> DeploymentResult:
        """Paper Method 1: evaluate each candidate on the whole model."""
        candidates = sorted({(int(p), int(l))
                             for p, l in zip(np.asarray(pe_idx),
                                             np.asarray(l2_idx))})
        return self._pick_config(workload, np.array(candidates, dtype=np.int64))

    def method2(self, workload: ModelWorkload, pe_idx: np.ndarray,
                l2_idx: np.ndarray) -> DeploymentResult:
        """Paper Method 2: adopt the bottleneck layer's configuration."""
        pe_idx = np.asarray(pe_idx)
        l2_idx = np.asarray(l2_idx)
        space = self.problem.space
        counts = workload.count_array()
        layers = workload.layer_array()

        # Latency of each layer on its own recommendation (count-weighted),
        # one elementwise cost-model pass per dataflow.
        pes, l2 = space.values(pe_idx, l2_idx)
        if self.dataflow is not None:
            own = self.cost_model.evaluate(
                layers[:, 0], layers[:, 1], layers[:, 2],
                self.dataflow, pes, l2).latency_cycles
        else:
            own = np.min(np.stack(
                [self.cost_model.evaluate(layers[:, 0], layers[:, 1],
                                          layers[:, 2], df, pes, l2)
                 .latency_cycles for df in Dataflow]), axis=0)

        bottleneck = int(np.argmax(own * counts))
        candidate = np.array([[int(pe_idx[bottleneck]),
                               int(l2_idx[bottleneck])]], dtype=np.int64)
        return self._pick_config(workload, candidate)

    # ------------------------------------------------------------------
    def oracle_deployment(self, workload: ModelWorkload) -> DeploymentResult:
        """Best single configuration by brute force (deployment upper bound).

        The full 768-point grid is evaluated in one vectorised pass rather
        than a per-configuration Python loop.
        """
        space = self.problem.space
        pe_grid, l2_grid = np.meshgrid(np.arange(space.n_pe),
                                       np.arange(space.n_l2), indexing="ij")
        candidates = np.stack([pe_grid.ravel(), l2_grid.ravel()], axis=1)
        return self._pick_config(workload, candidates)
