"""Model-level deployment: fold per-layer DSE into one configuration (§III-E).

AIRCHITECT v2 predicts per-layer, so deploying a whole network needs a
single hardware choice.  The paper gives two methods:

* **Method 1** — for every layer's recommended configuration, estimate the
  *model-wide* latency (all layers, MAESTRO-evaluated) and pick the
  configuration with the minimum.
* **Method 2** — find the bottleneck layer (largest latency on its own
  recommended configuration) and adopt its configuration.

Both apply to any per-layer DSE technique, which is how the Fig. 7
comparison puts every baseline on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dse import DSEProblem
from ..maestro import CostModel, Dataflow
from ..workloads import ModelWorkload

__all__ = ["DeploymentResult", "DeploymentEvaluator"]


@dataclass
class DeploymentResult:
    """Chosen configuration and its model-level cost."""

    pe_idx: int
    l2_idx: int
    num_pes: int
    l2_kb: int
    total_latency: float
    per_layer_latency: np.ndarray


class DeploymentEvaluator:
    """Evaluates model-level latency of configurations and applies
    deployment Methods 1 / 2."""

    def __init__(self, problem: DSEProblem, cost_model: CostModel | None = None,
                 dataflow: int | str | Dataflow | None = None):
        """``dataflow=None`` lets every layer use its best dataflow on the
        candidate hardware (flexible-mapping accelerator, MAESTRO-style);
        passing a specific dataflow pins the mapping."""
        self.problem = problem
        self.cost_model = cost_model or CostModel()
        self.dataflow = None if dataflow is None else Dataflow.from_any(dataflow)

    # ------------------------------------------------------------------
    def layer_inputs(self, workload: ModelWorkload,
                     dataflow: int = 0) -> np.ndarray:
        """Per-unique-layer input tuples (clamped to Table-I feature ranges)."""
        layers = workload.layer_array()
        m, n, k = self.problem.clamp_inputs(layers[:, 0], layers[:, 1],
                                            layers[:, 2])
        df = np.full(len(layers), int(dataflow), dtype=np.int64)
        return np.stack([m, n, k, df], axis=1)

    def layer_latencies(self, workload: ModelWorkload, num_pes: int,
                        l2_kb: int) -> np.ndarray:
        """Latency of every unique layer on the given hardware (true dims,
        not clamped — the feature clamp only affects model inputs)."""
        layers = workload.layer_array()
        if self.dataflow is not None:
            result = self.cost_model.evaluate(
                layers[:, 0], layers[:, 1], layers[:, 2],
                self.dataflow, num_pes, l2_kb)
            return result.latency_cycles
        per_df = [self.cost_model.evaluate(layers[:, 0], layers[:, 1],
                                           layers[:, 2], df, num_pes, l2_kb)
                  .latency_cycles for df in Dataflow]
        return np.min(np.stack(per_df), axis=0)

    def model_latency(self, workload: ModelWorkload, num_pes: int,
                      l2_kb: int) -> float:
        """Count-weighted total latency of the workload on one configuration."""
        lat = self.layer_latencies(workload, num_pes, l2_kb)
        return float((lat * workload.count_array()).sum())

    # ------------------------------------------------------------------
    def method1(self, workload: ModelWorkload, pe_idx: np.ndarray,
                l2_idx: np.ndarray) -> DeploymentResult:
        """Paper Method 1: evaluate each candidate on the whole model."""
        pe_idx = np.asarray(pe_idx)
        l2_idx = np.asarray(l2_idx)
        candidates = {(int(p), int(l)) for p, l in zip(pe_idx, l2_idx)}
        space = self.problem.space

        best: DeploymentResult | None = None
        for p, l in sorted(candidates):
            pes, l2 = int(space.pe_choices[p]), int(space.l2_choices[l])
            lat = self.layer_latencies(workload, pes, l2)
            total = float((lat * workload.count_array()).sum())
            if best is None or total < best.total_latency:
                best = DeploymentResult(pe_idx=p, l2_idx=l, num_pes=pes,
                                        l2_kb=l2, total_latency=total,
                                        per_layer_latency=lat)
        return best

    def method2(self, workload: ModelWorkload, pe_idx: np.ndarray,
                l2_idx: np.ndarray) -> DeploymentResult:
        """Paper Method 2: adopt the bottleneck layer's configuration."""
        pe_idx = np.asarray(pe_idx)
        l2_idx = np.asarray(l2_idx)
        space = self.problem.space
        counts = workload.count_array()

        # Latency of each layer on its own recommendation (count-weighted).
        own = np.empty(len(pe_idx))
        for i, (p, l) in enumerate(zip(pe_idx, l2_idx)):
            layer = workload.layers[i]
            pes, l2 = int(space.pe_choices[p]), int(space.l2_choices[l])
            if self.dataflow is not None:
                lat = float(self.cost_model.evaluate(
                    layer.m, layer.n, layer.k, self.dataflow, pes, l2)
                    .latency_cycles)
            else:
                lat = min(float(self.cost_model.evaluate(
                    layer.m, layer.n, layer.k, df, pes, l2).latency_cycles)
                    for df in Dataflow)
            own[i] = lat * counts[i]

        bottleneck = int(np.argmax(own))
        p, l = int(pe_idx[bottleneck]), int(l2_idx[bottleneck])
        pes, l2 = int(space.pe_choices[p]), int(space.l2_choices[l])
        lat = self.layer_latencies(workload, pes, l2)
        return DeploymentResult(pe_idx=p, l2_idx=l, num_pes=pes, l2_kb=l2,
                                total_latency=float((lat * counts).sum()),
                                per_layer_latency=lat)

    # ------------------------------------------------------------------
    def oracle_deployment(self, workload: ModelWorkload) -> DeploymentResult:
        """Best single configuration by brute force (deployment upper bound)."""
        space = self.problem.space
        best: DeploymentResult | None = None
        layers = workload.layer_array()
        counts = workload.count_array()
        for p in range(space.n_pe):
            for l in range(space.n_l2):
                pes, l2 = int(space.pe_choices[p]), int(space.l2_choices[l])
                lat = self.layer_latencies(workload, pes, l2)
                total = float((lat * counts).sum())
                if best is None or total < best.total_latency:
                    best = DeploymentResult(pe_idx=p, l2_idx=l, num_pes=pes,
                                            l2_kb=l2, total_latency=total,
                                            per_layer_latency=lat)
        return best
