"""One-shot DSE inference and prediction-quality metrics.

The paper's headline metric is *prediction accuracy*: the fraction of test
samples whose predicted design point matches the oracle optimum.  We report
it per head and jointly, plus two relaxed diagnostics (bucket-level match
and latency regret) that the ablation benches use.

Serving happens through two predictors sharing one decode path
(:meth:`AirchitectV2.decode_logits`):

* :class:`DSEPredictor` — the simple per-call API;
* :class:`BatchedDSEPredictor` — the batched engine: one vectorised
  encoder→heads pass per micro-batch under ``no_grad``, plus an optional
  cost-annotated sweep.  Predictions are identical to the per-sample path
  by construction; only the throughput differs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..dse import DSEDataset, DSEProblem, ExhaustiveOracle
from ..obs import current_engine_contexts
from .model import AirchitectV2

__all__ = ["PredictionMetrics", "evaluate_predictions", "evaluate_model",
           "DSEPredictor", "BatchedDSEPredictor", "BatchPrediction"]


@dataclass
class PredictionMetrics:
    """Quality of predicted design points against oracle labels."""

    accuracy: float          # both heads exactly right (the paper's metric)
    pe_accuracy: float
    l2_accuracy: float
    bucket_accuracy: float   # both heads land in the right UOV bucket
    mean_regret: float       # mean (predicted metric / optimal metric) - 1

    def as_dict(self) -> dict:
        return {"accuracy": self.accuracy, "pe_accuracy": self.pe_accuracy,
                "l2_accuracy": self.l2_accuracy,
                "bucket_accuracy": self.bucket_accuracy,
                "mean_regret": self.mean_regret}


def evaluate_predictions(problem: DSEProblem, dataset: DSEDataset,
                         pe_pred: np.ndarray, l2_pred: np.ndarray,
                         pe_codec=None, l2_codec=None,
                         oracle: ExhaustiveOracle | None = None,
                         compute_regret: bool = True) -> PredictionMetrics:
    """Score arbitrary (pe_idx, l2_idx) predictions against a dataset."""
    pe_ok = pe_pred == dataset.pe_idx
    l2_ok = l2_pred == dataset.l2_idx
    both = pe_ok & l2_ok

    if pe_codec is not None and l2_codec is not None:
        bucket_ok = ((pe_codec.bucket_labels(pe_pred)
                      == pe_codec.bucket_labels(dataset.pe_idx))
                     & (l2_codec.bucket_labels(l2_pred)
                        == l2_codec.bucket_labels(dataset.l2_idx)))
        bucket_accuracy = float(bucket_ok.mean())
    else:
        bucket_accuracy = float(both.mean())

    if compute_regret:
        oracle = oracle or ExhaustiveOracle(problem)
        achieved = oracle.cost_at(dataset.inputs, pe_pred, l2_pred)
        regret = achieved / np.maximum(dataset.best_cost, 1e-12) - 1.0
        mean_regret = float(regret.mean())
    else:
        mean_regret = float("nan")

    return PredictionMetrics(accuracy=float(both.mean()),
                             pe_accuracy=float(pe_ok.mean()),
                             l2_accuracy=float(l2_ok.mean()),
                             bucket_accuracy=bucket_accuracy,
                             mean_regret=mean_regret)


def evaluate_model(model: AirchitectV2, dataset: DSEDataset,
                   oracle: ExhaustiveOracle | None = None,
                   compute_regret: bool = True,
                   micro_batch_size: int = 1024) -> PredictionMetrics:
    """Run one-shot inference on a dataset (batched engine) and score it."""
    engine = BatchedDSEPredictor(model, micro_batch_size=micro_batch_size)
    pe_pred, l2_pred = engine.predict_indices(dataset.inputs)
    return evaluate_predictions(model.problem, dataset, pe_pred, l2_pred,
                                pe_codec=model.pe_codec, l2_codec=model.l2_codec,
                                oracle=oracle, compute_regret=compute_regret)


def _build_inputs(problem: DSEProblem, m, n, k, dataflow) -> np.ndarray:
    """Assemble (batch, 4) input tuples from workload dims (broadcasting)."""
    m, n, k = problem.clamp_inputs(m, n, k)
    dataflow = np.broadcast_to(np.asarray(dataflow, dtype=np.int64), m.shape)
    return np.stack([np.atleast_1d(m), np.atleast_1d(n),
                     np.atleast_1d(k), np.atleast_1d(dataflow)], axis=1)


class DSEPredictor:
    """User-facing one-shot DSE API: inputs in, hardware configs out."""

    def __init__(self, model: AirchitectV2):
        self.model = model
        self.problem = model.problem

    def predict(self, m, n, k, dataflow) -> tuple[np.ndarray, np.ndarray]:
        """Predict (num_pes, l2_kb) for workload(s); scalars broadcast."""
        inputs = _build_inputs(self.problem, m, n, k, dataflow)
        pe_idx, l2_idx = self.model.predict_indices(inputs)
        return self.problem.space.values(pe_idx, l2_idx)

    def predict_indices(self, inputs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Predict raw design-choice indices for pre-built input tuples."""
        return self.model.predict_indices(inputs)


@dataclass
class BatchPrediction:
    """Result of a batched design-space sweep.

    ``elapsed_s`` covers the whole sweep — prediction *and*, when
    ``with_cost`` was requested, the oracle cost evaluation —
    while ``predict_elapsed_s`` isolates the forward-pass phase.
    ``samples_per_sec`` is derived from the total.
    """

    inputs: np.ndarray          # (B, 4) the swept input tuples
    pe_idx: np.ndarray          # (B,) predicted PE-choice index
    l2_idx: np.ndarray          # (B,) predicted buffer-choice index
    num_pes: np.ndarray         # (B,) physical PE count
    l2_kb: np.ndarray           # (B,) physical buffer size (KB)
    predicted_cost: np.ndarray | None   # (B,) metric at the prediction
    elapsed_s: float
    samples_per_sec: float
    predict_elapsed_s: float = 0.0

    def __len__(self) -> int:
        return len(self.inputs)


class BatchedDSEPredictor:
    """Batched one-shot DSE serving engine.

    Runs the full encoder→heads pipeline over arbitrary-size workload
    batches in vectorised micro-batches under ``no_grad``.  Decoding goes
    through :meth:`AirchitectV2.decode_logits` — the same code the
    per-sample :class:`DSEPredictor` uses — so predictions are identical
    to the per-sample loop; only the throughput differs (see
    ``benchmarks/bench_batched_inference.py``).

    Parameters
    ----------
    model:
        A (trained) :class:`AirchitectV2`.
    micro_batch_size:
        Rows per forward pass.  Larger batches amortise per-call overhead
        but peak-allocate ``O(micro_batch * seq_len * d_model)`` floats;
        1024 is a good default on CPU.
    on_batch:
        Optional ``callback(rows, elapsed_s)`` invoked after every
        completed forward pass (one call per micro-batch).  The serving
        layer hangs its throughput accounting off this hook
        (:meth:`repro.serving.ServingStats.record_forward`).
    """

    def __init__(self, model: AirchitectV2, micro_batch_size: int = 1024,
                 on_batch=None):
        if micro_batch_size < 1:
            raise ValueError("micro_batch_size must be >= 1")
        self.model = model
        self.problem = model.problem
        self.micro_batch_size = micro_batch_size
        self.on_batch = on_batch
        self._default_oracle: ExhaustiveOracle | None = None

    # ------------------------------------------------------------------
    def predict_indices(self, inputs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised one-shot DSE over pre-built (batch, 4) input tuples."""
        contexts = current_engine_contexts()
        if self.on_batch is None and not contexts:
            return self.model.predict_indices(inputs,
                                              batch_size=self.micro_batch_size)
        # Micro-batch here so every forward pass reports to the hook and
        # the active traces; chunking per row range is deterministic, so
        # predictions are unchanged from the single delegated call above.
        inputs = np.atleast_2d(np.asarray(inputs))
        pe_out = np.empty(len(inputs), dtype=np.int64)
        l2_out = np.empty(len(inputs), dtype=np.int64)
        for start in range(0, len(inputs), self.micro_batch_size):
            chunk = inputs[start:start + self.micro_batch_size]
            tick = time.perf_counter()
            pe, l2 = self.model.predict_indices(chunk,
                                                batch_size=self.micro_batch_size)
            elapsed = time.perf_counter() - tick
            if self.on_batch is not None:
                self.on_batch(len(chunk), elapsed)
            # One engine.forward span per trace sharing this coalesced
            # pass: that is how a request served in a batch of 64 still
            # sees "its" forward-pass time in its trace tree.
            for ctx in contexts:
                if ctx.tracer is not None:
                    span = ctx.tracer.span("engine.forward", parent=ctx,
                                           attributes={"rows": len(chunk)})
                    span.start_time -= elapsed
                    span.end(duration_s=elapsed)
            sl = slice(start, start + len(chunk))
            pe_out[sl], l2_out[sl] = pe, l2
        return pe_out, l2_out

    def predict(self, m, n, k, dataflow) -> tuple[np.ndarray, np.ndarray]:
        """Predict (num_pes, l2_kb) for workload(s); scalars broadcast."""
        inputs = _build_inputs(self.problem, m, n, k, dataflow)
        pe_idx, l2_idx = self.predict_indices(inputs)
        return self.problem.space.values(pe_idx, l2_idx)

    def sweep(self, inputs: np.ndarray, with_cost: bool = False,
              oracle: ExhaustiveOracle | None = None) -> BatchPrediction:
        """Full design-space sweep: predictions, physical configs, timing.

        ``with_cost=True`` also evaluates the optimisation metric at each
        predicted design point (via the — possibly cached — oracle); that
        evaluation is part of ``elapsed_s`` (the serving-visible latency),
        with the forward-pass share reported as ``predict_elapsed_s``.
        """
        inputs = np.atleast_2d(np.asarray(inputs))
        start = time.perf_counter()
        pe_idx, l2_idx = self.predict_indices(inputs)
        predict_elapsed = time.perf_counter() - start
        num_pes, l2_kb = self.problem.space.values(pe_idx, l2_idx)
        cost = None
        if with_cost:
            if oracle is None:
                # Keep one oracle per engine so its LRU label cache
                # persists across repeated sweeps.
                if self._default_oracle is None:
                    self._default_oracle = ExhaustiveOracle(self.problem)
                oracle = self._default_oracle
            cost = oracle.cost_at(inputs, pe_idx, l2_idx)
        elapsed = time.perf_counter() - start
        return BatchPrediction(inputs=inputs, pe_idx=pe_idx, l2_idx=l2_idx,
                               num_pes=num_pes, l2_kb=l2_kb,
                               predicted_cost=cost, elapsed_s=elapsed,
                               samples_per_sec=len(inputs) / max(elapsed, 1e-12),
                               predict_elapsed_s=predict_elapsed)
