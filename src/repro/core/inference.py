"""One-shot DSE inference and prediction-quality metrics.

The paper's headline metric is *prediction accuracy*: the fraction of test
samples whose predicted design point matches the oracle optimum.  We report
it per head and jointly, plus two relaxed diagnostics (bucket-level match
and latency regret) that the ablation benches use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dse import DSEDataset, DSEProblem, ExhaustiveOracle
from .model import AirchitectV2

__all__ = ["PredictionMetrics", "evaluate_predictions", "evaluate_model",
           "DSEPredictor"]


@dataclass
class PredictionMetrics:
    """Quality of predicted design points against oracle labels."""

    accuracy: float          # both heads exactly right (the paper's metric)
    pe_accuracy: float
    l2_accuracy: float
    bucket_accuracy: float   # both heads land in the right UOV bucket
    mean_regret: float       # mean (predicted metric / optimal metric) - 1

    def as_dict(self) -> dict:
        return {"accuracy": self.accuracy, "pe_accuracy": self.pe_accuracy,
                "l2_accuracy": self.l2_accuracy,
                "bucket_accuracy": self.bucket_accuracy,
                "mean_regret": self.mean_regret}


def evaluate_predictions(problem: DSEProblem, dataset: DSEDataset,
                         pe_pred: np.ndarray, l2_pred: np.ndarray,
                         pe_codec=None, l2_codec=None,
                         oracle: ExhaustiveOracle | None = None,
                         compute_regret: bool = True) -> PredictionMetrics:
    """Score arbitrary (pe_idx, l2_idx) predictions against a dataset."""
    pe_ok = pe_pred == dataset.pe_idx
    l2_ok = l2_pred == dataset.l2_idx
    both = pe_ok & l2_ok

    if pe_codec is not None and l2_codec is not None:
        bucket_ok = ((pe_codec.bucket_labels(pe_pred)
                      == pe_codec.bucket_labels(dataset.pe_idx))
                     & (l2_codec.bucket_labels(l2_pred)
                        == l2_codec.bucket_labels(dataset.l2_idx)))
        bucket_accuracy = float(bucket_ok.mean())
    else:
        bucket_accuracy = float(both.mean())

    if compute_regret:
        oracle = oracle or ExhaustiveOracle(problem)
        achieved = oracle.cost_at(dataset.inputs, pe_pred, l2_pred)
        regret = achieved / np.maximum(dataset.best_cost, 1e-12) - 1.0
        mean_regret = float(regret.mean())
    else:
        mean_regret = float("nan")

    return PredictionMetrics(accuracy=float(both.mean()),
                             pe_accuracy=float(pe_ok.mean()),
                             l2_accuracy=float(l2_ok.mean()),
                             bucket_accuracy=bucket_accuracy,
                             mean_regret=mean_regret)


def evaluate_model(model: AirchitectV2, dataset: DSEDataset,
                   oracle: ExhaustiveOracle | None = None,
                   compute_regret: bool = True) -> PredictionMetrics:
    """Run one-shot inference on a dataset and score it."""
    pe_pred, l2_pred = model.predict_indices(dataset.inputs)
    return evaluate_predictions(model.problem, dataset, pe_pred, l2_pred,
                                pe_codec=model.pe_codec, l2_codec=model.l2_codec,
                                oracle=oracle, compute_regret=compute_regret)


class DSEPredictor:
    """User-facing one-shot DSE API: inputs in, hardware configs out."""

    def __init__(self, model: AirchitectV2):
        self.model = model
        self.problem = model.problem

    def predict(self, m, n, k, dataflow) -> tuple[np.ndarray, np.ndarray]:
        """Predict (num_pes, l2_kb) for workload(s); scalars broadcast."""
        m, n, k = self.problem.clamp_inputs(m, n, k)
        dataflow = np.broadcast_to(np.asarray(dataflow, dtype=np.int64), m.shape)
        inputs = np.stack([np.atleast_1d(m), np.atleast_1d(n),
                           np.atleast_1d(k), np.atleast_1d(dataflow)], axis=1)
        pe_idx, l2_idx = self.model.predict_indices(inputs)
        return self.problem.space.values(pe_idx, l2_idx)

    def predict_indices(self, inputs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Predict raw design-choice indices for pre-built input tuples."""
        return self.model.predict_indices(inputs)
