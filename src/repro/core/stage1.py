"""Stage-1 training: shaping the encoder's embedding space (§III-C).

The encoder (plus the performance head) is trained with::

    L_stage1 = L_C + L_perf

* ``L_C``     — the balanced InfoNCE contrastive loss (Eq. 1).  Positive
  pairs are batch samples whose optimal design points fall in the *same
  UOV buckets* (for both heads); negatives differ.  tau = 0.4.
* ``L_perf``  — L1 loss of the performance head against the z-scored log
  optimisation metric, which injects semantic (performance) structure into
  the embedding space.

The Table-II ablation axes are exposed directly: disabling both terms
falls back to a plain L2 performance-regression objective, matching the
paper's "(and using only an L2-loss term)" baseline row.

The epoch/batch driving lives in the unified :class:`repro.train.TrainLoop`
runtime; this module only describes the stage-1 batch step.  The z-scoring
statistics of the performance target are persisted as model buffers
(``perf_mean``/``perf_std``), so a loaded model can de-normalise
performance predictions without retraining.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..dse import DSEDataset
from ..train import OptimSpec, TrainLoop, TrainTask
from .model import AirchitectV2

__all__ = ["Stage1Config", "Stage1Trainer", "contrastive_labels"]


@dataclass
class Stage1Config:
    """Stage-1 optimisation hyper-parameters (paper: 500 epochs, tau 0.4)."""

    epochs: int = 30
    batch_size: int = 256
    lr: float = 1e-3
    temperature: float = 0.4
    use_contrastive: bool = True
    use_perf: bool = True
    grad_clip: float = 5.0
    seed: int = 0


def contrastive_labels(model: AirchitectV2, dataset: DSEDataset) -> np.ndarray:
    """Joint UOV-bucket labels: samples sharing both buckets are positives."""
    pe_buckets = model.pe_codec.bucket_labels(dataset.pe_idx)
    l2_buckets = model.l2_codec.bucket_labels(dataset.l2_idx)
    return pe_buckets * model.l2_codec.num_buckets + l2_buckets


class _Stage1Task(TrainTask):
    """Contrastive + performance shaping of encoder and perf head."""

    name = "stage1"
    history_keys = ("loss", "contrastive", "perf")

    def __init__(self, trainer: "Stage1Trainer", dataset: DSEDataset):
        self.trainer = trainer
        self.model = trainer.model
        self.dataset = dataset
        config = trainer.config
        self.epochs = config.epochs
        self.seed = config.seed

    def loader(self, rng: np.random.Generator) -> nn.DataLoader:
        cfg = self.trainer.config
        labels = contrastive_labels(self.model, self.dataset)
        perf, mean, std = self.dataset.perf_targets()
        self.model.perf_mean = mean    # buffers: persist with the weights
        self.model.perf_std = std
        data = nn.ArrayDataset(self.dataset.inputs, labels, perf)
        return nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng,
                             drop_last=len(data) > cfg.batch_size)

    def optim_specs(self) -> dict[str, OptimSpec]:
        cfg = self.trainer.config
        params = self.model.encoder.parameters() \
            + self.model.perf_head.parameters()
        return {"main": OptimSpec(params, cfg.lr,
                                  schedule=nn.cosine_schedule(cfg.epochs),
                                  grad_clip=cfg.grad_clip)}

    def batch_step(self, batch, step, rng) -> dict[str, float]:
        cfg = self.trainer.config
        xb, yb, pb = batch
        embedding = self.model.embed(xb)
        pred_perf = self.model.perf_head(embedding)

        terms = []
        lc_val = lp_val = 0.0
        if cfg.use_contrastive:
            lc = self.trainer.contrastive(embedding, yb)
            terms.append(lc)
            lc_val = lc.item()
        if cfg.use_perf:
            lp = nn.l1_loss(pred_perf, pb)
            terms.append(lp)
            lp_val = lp.item()
        if not terms:
            # Ablation baseline: plain L2 performance regression.
            lp = nn.mse_loss(pred_perf, pb)
            terms.append(lp)
            lp_val = lp.item()

        loss = terms[0]
        for term in terms[1:]:
            loss = loss + term
        step.apply(loss)
        return {"loss": loss.item(), "contrastive": lc_val, "perf": lp_val}

    def epoch_message(self, history) -> str:
        return f"loss={history['loss'][-1]:.4f}"


class Stage1Trainer:
    """Trains encoder + performance head; the decoder is untouched."""

    def __init__(self, model: AirchitectV2, config: Stage1Config | None = None):
        self.model = model
        self.config = config or Stage1Config()
        self.contrastive = nn.InfoNCELoss(self.config.temperature)

    # The normalisation statistics live on the model (buffers), so they
    # persist with the weights; these properties are the historical
    # trainer-side view of the same values.
    @property
    def perf_mean(self) -> float:
        return float(self.model.perf_mean)

    @perf_mean.setter
    def perf_mean(self, value: float) -> None:
        self.model.perf_mean = value

    @property
    def perf_std(self) -> float:
        return float(self.model.perf_std)

    @perf_std.setter
    def perf_std(self, value: float) -> None:
        self.model.perf_std = value

    def train(self, dataset: DSEDataset, verbose: bool = False,
              callbacks=(), checkpoint_path=None, checkpoint_every: int = 1,
              resume: bool = True) -> dict:
        """Run stage-1 training; returns a history dict of per-epoch losses.

        ``checkpoint_path`` enables resumable training: a snapshot is
        written every ``checkpoint_every`` epochs, and an existing snapshot
        (same config/seed) is continued instead of restarting.
        """
        loop = TrainLoop(_Stage1Task(self, dataset), callbacks=callbacks)
        return loop.fit(verbose=verbose, checkpoint_path=checkpoint_path,
                        checkpoint_every=checkpoint_every, resume=resume)
