"""Stage-1 training: shaping the encoder's embedding space (§III-C).

The encoder (plus the performance head) is trained with::

    L_stage1 = L_C + L_perf

* ``L_C``     — the balanced InfoNCE contrastive loss (Eq. 1).  Positive
  pairs are batch samples whose optimal design points fall in the *same
  UOV buckets* (for both heads); negatives differ.  tau = 0.4.
* ``L_perf``  — L1 loss of the performance head against the z-scored log
  optimisation metric, which injects semantic (performance) structure into
  the embedding space.

The Table-II ablation axes are exposed directly: disabling both terms
falls back to a plain L2 performance-regression objective, matching the
paper's "(and using only an L2-loss term)" baseline row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..dse import DSEDataset
from .model import AirchitectV2

__all__ = ["Stage1Config", "Stage1Trainer", "contrastive_labels"]


@dataclass
class Stage1Config:
    """Stage-1 optimisation hyper-parameters (paper: 500 epochs, tau 0.4)."""

    epochs: int = 30
    batch_size: int = 256
    lr: float = 1e-3
    temperature: float = 0.4
    use_contrastive: bool = True
    use_perf: bool = True
    grad_clip: float = 5.0
    seed: int = 0


def contrastive_labels(model: AirchitectV2, dataset: DSEDataset) -> np.ndarray:
    """Joint UOV-bucket labels: samples sharing both buckets are positives."""
    pe_buckets = model.pe_codec.bucket_labels(dataset.pe_idx)
    l2_buckets = model.l2_codec.bucket_labels(dataset.l2_idx)
    return pe_buckets * model.l2_codec.num_buckets + l2_buckets


class Stage1Trainer:
    """Trains encoder + performance head; the decoder is untouched."""

    def __init__(self, model: AirchitectV2, config: Stage1Config | None = None):
        self.model = model
        self.config = config or Stage1Config()
        self.contrastive = nn.InfoNCELoss(self.config.temperature)
        self.perf_mean: float = 0.0
        self.perf_std: float = 1.0

    def train(self, dataset: DSEDataset, verbose: bool = False) -> dict:
        """Run stage-1 training; returns a history dict of per-epoch losses."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        model = self.model
        model.train()

        labels = contrastive_labels(model, dataset)
        perf, self.perf_mean, self.perf_std = dataset.perf_targets()
        data = nn.ArrayDataset(dataset.inputs, labels, perf)
        loader = nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng,
                               drop_last=len(data) > cfg.batch_size)

        params = model.encoder.parameters() + model.perf_head.parameters()
        optimizer = nn.Adam(params, lr=cfg.lr)
        scheduler = nn.LRScheduler(optimizer, nn.cosine_schedule(cfg.epochs))

        history = {"loss": [], "contrastive": [], "perf": []}
        for epoch in range(cfg.epochs):
            sums = {"loss": 0.0, "contrastive": 0.0, "perf": 0.0}
            batches = 0
            for xb, yb, pb in loader:
                embedding = model.embed(xb)
                pred_perf = model.perf_head(embedding)

                terms = []
                lc_val = lp_val = 0.0
                if cfg.use_contrastive:
                    lc = self.contrastive(embedding, yb)
                    terms.append(lc)
                    lc_val = lc.item()
                if cfg.use_perf:
                    lp = nn.l1_loss(pred_perf, pb)
                    terms.append(lp)
                    lp_val = lp.item()
                if not terms:
                    # Ablation baseline: plain L2 performance regression.
                    lp = nn.mse_loss(pred_perf, pb)
                    terms.append(lp)
                    lp_val = lp.item()

                loss = terms[0]
                for term in terms[1:]:
                    loss = loss + term

                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, cfg.grad_clip)
                optimizer.step()

                sums["loss"] += loss.item()
                sums["contrastive"] += lc_val
                sums["perf"] += lp_val
                batches += 1
            scheduler.step()
            for key in history:
                history[key].append(sums[key] / max(batches, 1))
            if verbose:
                print(f"[stage1] epoch {epoch + 1}/{cfg.epochs} "
                      f"loss={history['loss'][-1]:.4f}")
        model.eval()
        return history
