"""``repro.core`` — the AIRCHITECT v2 contribution.

Encoder-decoder transformer model (Fig. 2), stage-1 contrastive +
performance training (§III-C), stage-2 UOV decoder training (§III-D),
one-shot inference metrics, and the model-level deployment pipeline
(§III-E).
"""

from .deployment import DeploymentEvaluator, DeploymentResult
from .inference import (BatchedDSEPredictor, BatchPrediction, DSEPredictor,
                        PredictionMetrics, evaluate_model,
                        evaluate_predictions)
from .model import (HEAD_STYLES, AirchitectDecoder, AirchitectEncoder,
                    AirchitectV2, ModelConfig, PerformanceHead)
from .stage1 import Stage1Config, Stage1Trainer, contrastive_labels
from .stage2 import Stage2Config, Stage2Trainer

__all__ = [
    "ModelConfig", "AirchitectV2", "AirchitectEncoder", "AirchitectDecoder",
    "PerformanceHead", "HEAD_STYLES",
    "Stage1Config", "Stage1Trainer", "contrastive_labels",
    "Stage2Config", "Stage2Trainer",
    "DSEPredictor", "BatchedDSEPredictor", "BatchPrediction",
    "PredictionMetrics", "evaluate_model", "evaluate_predictions",
    "DeploymentEvaluator", "DeploymentResult",
]
