"""Stage-2 training: decoder + UOV heads over the frozen encoder (§III-D).

The encoder's weights are frozen ("to prevent the backpropagation of
gradients") and the decoder learns to map latent points to hardware
configurations.  The loss depends on the head style:

* ``uov``            — Unification Loss (Eq. 3) per head, summed.
* ``classification`` — cross-entropy per head, summed.
* ``joint``          — one cross-entropy over the 768-way label.
* ``regression``     — MSE against the normalised choice index.

Epoch/batch driving is the unified :class:`repro.train.TrainLoop`; the
freeze/unfreeze protocol lives in the task's fit hooks.

Because the encoder is frozen for the entire fit, the fused fast path
(:func:`repro.nn.fused_enabled`) precomputes every sample's embedding
once (lazily, after any checkpoint resume) and fancy-indexes it per
batch — bit-identical to re-running the encoder every step, and the
single biggest win in ``benchmarks/bench_train_step.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..dse import DSEDataset
from ..train import OptimSpec, TrainLoop, TrainTask
from .model import AirchitectV2

__all__ = ["Stage2Config", "Stage2Trainer"]


@dataclass
class Stage2Config:
    """Stage-2 optimisation hyper-parameters (paper: 100 epochs, a=0.75, g=1)."""

    epochs: int = 20
    batch_size: int = 256
    lr: float = 1e-3
    alpha: float = 0.75
    gamma: float = 1.0
    grad_clip: float = 5.0
    seed: int = 1


class _Stage2Task(TrainTask):
    """Decoder training over frozen encoder embeddings."""

    name = "stage2"
    history_keys = ("loss",)

    # Rows per forward pass when precomputing the frozen-encoder embedding
    # cache (bounds peak memory; the encoder is row-wise, so chunking does
    # not change a single bit of any embedding).
    EMBED_CHUNK = 8192

    def __init__(self, trainer: "Stage2Trainer", dataset: DSEDataset):
        self.trainer = trainer
        self.model = trainer.model
        self.dataset = dataset
        config = trainer.config
        self.epochs = config.epochs
        self.seed = config.seed
        self._embed_cache: np.ndarray | None = None
        # The one-shot cache is only valid when the frozen encoder is
        # deterministic: active dropout redraws its mask every forward
        # (train mode fires it regardless of requires_grad), so caching
        # would freeze one noise realisation and skip the rng draws.
        self._embed_cacheable = not any(
            isinstance(m, nn.Dropout) and m.p > 0
            for m in self.model.encoder.modules())

    def on_fit_begin(self) -> None:
        self.model.encoder.requires_grad_(False)   # the paper's frozen encoder
        self.model.perf_head.requires_grad_(False)

    def loader(self, rng: np.random.Generator) -> nn.DataLoader:
        cfg = self.trainer.config
        pe_t, l2_t = self.trainer._targets(self.dataset)
        # Row indices ride along so the fast path can slice the embedding
        # cache; the extra array does not touch the rng stream.
        data = nn.ArrayDataset(self.dataset.inputs, pe_t, l2_t,
                               np.arange(len(self.dataset)))
        return nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng)

    def _embeddings(self, idx: np.ndarray) -> nn.Tensor:
        """Batch embeddings from the one-shot frozen-encoder cache.

        Stage 2 trains the decoder against a *frozen* encoder, so every
        sample's embedding is constant for the whole fit; computing them
        once (lazily, after any checkpoint resume has restored the weights)
        and fancy-indexing per batch is bit-identical to re-running the
        encoder every step — the encoder is row-wise, so neither chunking
        nor batch composition changes any value.
        """
        if self._embed_cache is None:
            inputs = self.dataset.inputs
            with nn.no_grad():
                chunks = [self.model.embed(inputs[i:i + self.EMBED_CHUNK]).numpy()
                          for i in range(0, len(inputs), self.EMBED_CHUNK)]
            self._embed_cache = (chunks[0] if len(chunks) == 1
                                 else np.concatenate(chunks, axis=0))
        return nn.Tensor(self._embed_cache[idx])

    def on_fit_end(self) -> None:
        self.model.encoder.requires_grad_(True)
        self.model.perf_head.requires_grad_(True)
        self._embed_cache = None

    def optim_specs(self) -> dict[str, OptimSpec]:
        cfg = self.trainer.config
        return {"main": OptimSpec(self.model.decoder.parameters(), cfg.lr,
                                  schedule=nn.cosine_schedule(cfg.epochs),
                                  grad_clip=cfg.grad_clip)}

    def batch_step(self, batch, step, rng) -> dict[str, float]:
        xb, pb, lb, idx = batch
        if nn.fused_enabled() and self._embed_cacheable:
            embedding = self._embeddings(idx)
        else:
            embedding = self.model.embed(xb)
        pe_logits, l2_logits = self.model.decoder(embedding.detach())
        loss = self.trainer._loss(pe_logits, l2_logits, pb, lb)
        step.apply(loss)
        return {"loss": loss.item()}

    def graph_step(self, batch):
        """Graph-capture plan: decoder + loss over cached embeddings.

        Only the fused fast path is capturable: there the whole step is
        a fixed function of three per-batch arrays (embeddings, pe/l2
        targets), computed identically to ``batch_step`` — the frozen
        encoder has already been folded into the embedding cache, and
        decoder dropout (if any) disqualifies the trace at capture time
        via the tracer's rng-op check.  The slow path re-runs the
        encoder per batch (possibly with train-mode dropout inside), so
        it stays eager.
        """
        if not (nn.fused_enabled() and self._embed_cacheable):
            return None
        xb, pb, lb, idx = batch
        emb = self._embeddings(idx).data
        trainer = self.trainer
        decoder = self.model.decoder

        def fn(emb_arr, pe_t, l2_t):
            embedding = nn.Tensor(emb_arr)
            pe_logits, l2_logits = decoder(embedding.detach())
            return trainer._loss(pe_logits, l2_logits, pe_t, l2_t)

        return (emb, pb, lb), fn


class Stage2Trainer:
    """Trains the decoder (and heads) with the encoder frozen."""

    def __init__(self, model: AirchitectV2, config: Stage2Config | None = None):
        self.model = model
        self.config = config or Stage2Config()
        self.unification = nn.UnificationLoss(self.config.alpha, self.config.gamma)

    # ------------------------------------------------------------------
    def _targets(self, dataset: DSEDataset) -> tuple[np.ndarray, np.ndarray]:
        """Per-head training targets for the configured head style."""
        model = self.model
        style = model.config.head_style
        space = model.problem.space
        if style == "uov":
            return (model.pe_codec.encode(dataset.pe_idx),
                    model.l2_codec.encode(dataset.l2_idx))
        if style == "classification":
            return dataset.pe_idx, dataset.l2_idx
        if style == "joint":
            return dataset.joint_labels(space.n_l2), np.zeros(len(dataset))
        # regression: normalised indices in [0, 1]
        return (dataset.pe_idx / max(space.n_pe - 1, 1),
                dataset.l2_idx / max(space.n_l2 - 1, 1))

    def _loss(self, pe_logits, l2_logits, pe_target, l2_target):
        style = self.model.config.head_style
        if style == "uov":
            return (self.unification(pe_logits, pe_target)
                    + self.unification(l2_logits, l2_target))
        if style == "classification":
            return (nn.cross_entropy(pe_logits, pe_target)
                    + nn.cross_entropy(l2_logits, l2_target))
        if style == "joint":
            return nn.cross_entropy(pe_logits, pe_target)
        pe_pred = pe_logits.sigmoid().squeeze(-1)
        l2_pred = l2_logits.sigmoid().squeeze(-1)
        return nn.mse_loss(pe_pred, pe_target) + nn.mse_loss(l2_pred, l2_target)

    # ------------------------------------------------------------------
    def train(self, dataset: DSEDataset, verbose: bool = False,
              callbacks=(), checkpoint_path=None, checkpoint_every: int = 1,
              resume: bool = True) -> dict:
        """Run stage-2 training; returns a history dict of per-epoch losses."""
        loop = TrainLoop(_Stage2Task(self, dataset), callbacks=callbacks)
        return loop.fit(verbose=verbose, checkpoint_path=checkpoint_path,
                        checkpoint_every=checkpoint_every, resume=resume)
