"""Stage-2 training: decoder + UOV heads over the frozen encoder (§III-D).

The encoder's weights are frozen ("to prevent the backpropagation of
gradients") and the decoder learns to map latent points to hardware
configurations.  The loss depends on the head style:

* ``uov``            — Unification Loss (Eq. 3) per head, summed.
* ``classification`` — cross-entropy per head, summed.
* ``joint``          — one cross-entropy over the 768-way label.
* ``regression``     — MSE against the normalised choice index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..dse import DSEDataset
from .model import AirchitectV2

__all__ = ["Stage2Config", "Stage2Trainer"]


@dataclass
class Stage2Config:
    """Stage-2 optimisation hyper-parameters (paper: 100 epochs, a=0.75, g=1)."""

    epochs: int = 20
    batch_size: int = 256
    lr: float = 1e-3
    alpha: float = 0.75
    gamma: float = 1.0
    grad_clip: float = 5.0
    seed: int = 1


class Stage2Trainer:
    """Trains the decoder (and heads) with the encoder frozen."""

    def __init__(self, model: AirchitectV2, config: Stage2Config | None = None):
        self.model = model
        self.config = config or Stage2Config()
        self.unification = nn.UnificationLoss(self.config.alpha, self.config.gamma)

    # ------------------------------------------------------------------
    def _targets(self, dataset: DSEDataset) -> tuple[np.ndarray, np.ndarray]:
        """Per-head training targets for the configured head style."""
        model = self.model
        style = model.config.head_style
        space = model.problem.space
        if style == "uov":
            return (model.pe_codec.encode(dataset.pe_idx),
                    model.l2_codec.encode(dataset.l2_idx))
        if style == "classification":
            return dataset.pe_idx, dataset.l2_idx
        if style == "joint":
            return dataset.joint_labels(space.n_l2), np.zeros(len(dataset))
        # regression: normalised indices in [0, 1]
        return (dataset.pe_idx / max(space.n_pe - 1, 1),
                dataset.l2_idx / max(space.n_l2 - 1, 1))

    def _loss(self, pe_logits, l2_logits, pe_target, l2_target):
        style = self.model.config.head_style
        if style == "uov":
            return (self.unification(pe_logits, pe_target)
                    + self.unification(l2_logits, l2_target))
        if style == "classification":
            return (nn.cross_entropy(pe_logits, pe_target)
                    + nn.cross_entropy(l2_logits, l2_target))
        if style == "joint":
            return nn.cross_entropy(pe_logits, pe_target)
        pe_pred = pe_logits.sigmoid().squeeze(-1)
        l2_pred = l2_logits.sigmoid().squeeze(-1)
        return nn.mse_loss(pe_pred, pe_target) + nn.mse_loss(l2_pred, l2_target)

    # ------------------------------------------------------------------
    def train(self, dataset: DSEDataset, verbose: bool = False) -> dict:
        """Run stage-2 training; returns a history dict of per-epoch losses."""
        cfg = self.config
        model = self.model
        rng = np.random.default_rng(cfg.seed)

        model.train()
        model.encoder.requires_grad_(False)   # the paper's frozen encoder
        model.perf_head.requires_grad_(False)

        pe_t, l2_t = self._targets(dataset)
        data = nn.ArrayDataset(dataset.inputs, pe_t, l2_t)
        loader = nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng)

        params = model.decoder.parameters()
        optimizer = nn.Adam(params, lr=cfg.lr)
        scheduler = nn.LRScheduler(optimizer, nn.cosine_schedule(cfg.epochs))

        history = {"loss": []}
        for epoch in range(cfg.epochs):
            total, batches = 0.0, 0
            for xb, pb, lb in loader:
                embedding = model.embed(xb)
                pe_logits, l2_logits = model.decoder(embedding.detach())
                loss = self._loss(pe_logits, l2_logits, pb, lb)

                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, cfg.grad_clip)
                optimizer.step()
                total += loss.item()
                batches += 1
            scheduler.step()
            history["loss"].append(total / max(batches, 1))
            if verbose:
                print(f"[stage2] epoch {epoch + 1}/{cfg.epochs} "
                      f"loss={history['loss'][-1]:.4f}")

        model.encoder.requires_grad_(True)
        model.perf_head.requires_grad_(True)
        model.eval()
        return history
