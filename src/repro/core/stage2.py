"""Stage-2 training: decoder + UOV heads over the frozen encoder (§III-D).

The encoder's weights are frozen ("to prevent the backpropagation of
gradients") and the decoder learns to map latent points to hardware
configurations.  The loss depends on the head style:

* ``uov``            — Unification Loss (Eq. 3) per head, summed.
* ``classification`` — cross-entropy per head, summed.
* ``joint``          — one cross-entropy over the 768-way label.
* ``regression``     — MSE against the normalised choice index.

Epoch/batch driving is the unified :class:`repro.train.TrainLoop`; the
freeze/unfreeze protocol lives in the task's fit hooks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..dse import DSEDataset
from ..train import OptimSpec, TrainLoop, TrainTask
from .model import AirchitectV2

__all__ = ["Stage2Config", "Stage2Trainer"]


@dataclass
class Stage2Config:
    """Stage-2 optimisation hyper-parameters (paper: 100 epochs, a=0.75, g=1)."""

    epochs: int = 20
    batch_size: int = 256
    lr: float = 1e-3
    alpha: float = 0.75
    gamma: float = 1.0
    grad_clip: float = 5.0
    seed: int = 1


class _Stage2Task(TrainTask):
    """Decoder training over frozen encoder embeddings."""

    name = "stage2"
    history_keys = ("loss",)

    def __init__(self, trainer: "Stage2Trainer", dataset: DSEDataset):
        self.trainer = trainer
        self.model = trainer.model
        self.dataset = dataset
        config = trainer.config
        self.epochs = config.epochs
        self.seed = config.seed

    def on_fit_begin(self) -> None:
        self.model.encoder.requires_grad_(False)   # the paper's frozen encoder
        self.model.perf_head.requires_grad_(False)

    def on_fit_end(self) -> None:
        self.model.encoder.requires_grad_(True)
        self.model.perf_head.requires_grad_(True)

    def loader(self, rng: np.random.Generator) -> nn.DataLoader:
        cfg = self.trainer.config
        pe_t, l2_t = self.trainer._targets(self.dataset)
        data = nn.ArrayDataset(self.dataset.inputs, pe_t, l2_t)
        return nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng)

    def optim_specs(self) -> dict[str, OptimSpec]:
        cfg = self.trainer.config
        return {"main": OptimSpec(self.model.decoder.parameters(), cfg.lr,
                                  schedule=nn.cosine_schedule(cfg.epochs),
                                  grad_clip=cfg.grad_clip)}

    def batch_step(self, batch, step, rng) -> dict[str, float]:
        xb, pb, lb = batch
        embedding = self.model.embed(xb)
        pe_logits, l2_logits = self.model.decoder(embedding.detach())
        loss = self.trainer._loss(pe_logits, l2_logits, pb, lb)
        step.apply(loss)
        return {"loss": loss.item()}


class Stage2Trainer:
    """Trains the decoder (and heads) with the encoder frozen."""

    def __init__(self, model: AirchitectV2, config: Stage2Config | None = None):
        self.model = model
        self.config = config or Stage2Config()
        self.unification = nn.UnificationLoss(self.config.alpha, self.config.gamma)

    # ------------------------------------------------------------------
    def _targets(self, dataset: DSEDataset) -> tuple[np.ndarray, np.ndarray]:
        """Per-head training targets for the configured head style."""
        model = self.model
        style = model.config.head_style
        space = model.problem.space
        if style == "uov":
            return (model.pe_codec.encode(dataset.pe_idx),
                    model.l2_codec.encode(dataset.l2_idx))
        if style == "classification":
            return dataset.pe_idx, dataset.l2_idx
        if style == "joint":
            return dataset.joint_labels(space.n_l2), np.zeros(len(dataset))
        # regression: normalised indices in [0, 1]
        return (dataset.pe_idx / max(space.n_pe - 1, 1),
                dataset.l2_idx / max(space.n_l2 - 1, 1))

    def _loss(self, pe_logits, l2_logits, pe_target, l2_target):
        style = self.model.config.head_style
        if style == "uov":
            return (self.unification(pe_logits, pe_target)
                    + self.unification(l2_logits, l2_target))
        if style == "classification":
            return (nn.cross_entropy(pe_logits, pe_target)
                    + nn.cross_entropy(l2_logits, l2_target))
        if style == "joint":
            return nn.cross_entropy(pe_logits, pe_target)
        pe_pred = pe_logits.sigmoid().squeeze(-1)
        l2_pred = l2_logits.sigmoid().squeeze(-1)
        return nn.mse_loss(pe_pred, pe_target) + nn.mse_loss(l2_pred, l2_target)

    # ------------------------------------------------------------------
    def train(self, dataset: DSEDataset, verbose: bool = False,
              callbacks=(), checkpoint_path=None, checkpoint_every: int = 1,
              resume: bool = True) -> dict:
        """Run stage-2 training; returns a history dict of per-epoch losses."""
        loop = TrainLoop(_Stage2Task(self, dataset), callbacks=callbacks)
        return loop.fit(verbose=verbose, checkpoint_path=checkpoint_path,
                        checkpoint_every=checkpoint_every, resume=resume)
