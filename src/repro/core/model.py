"""The AIRCHITECT v2 encoder-decoder model (Fig. 2).

Architecture (paper §III-B):

* **Encoder** — the 4 input parameters (M, N, K, dataflow) are embedded as a
  4-token sequence, processed by L stacked {self-attention, add & norm,
  feed-forward} blocks, then *downsampled* into the latent embedding space
  that stage-1 contrastive learning shapes.
* **Performance head** — a small MLP over the embedding that regresses the
  (log-normalised) optimisation metric; its L1 loss adds semantic meaning
  to the embedding (§III-C).
* **Decoder** — *upsamples* a latent point back into a token sequence,
  applies L identical transformer blocks, and feeds two output heads —
  one per hardware configuration (number of PEs, buffer size).

Head styles (the paper's Fig. 9 / Fig. 8(b) ablation axes):

* ``"uov"``             — K-dim Unified Ordinal Vector per head (the paper).
* ``"classification"``  — per-head softmax over the raw design choices.
* ``"joint"``           — single softmax over all 768 design points
                          (AIRCHITECT v1's encoding, for comparison).
* ``"regression"``      — scalar per head (normalised choice index).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..dse import DSEProblem
from ..uov import UOVCodec

__all__ = ["ModelConfig", "AirchitectEncoder", "AirchitectDecoder",
           "PerformanceHead", "AirchitectV2", "HEAD_STYLES"]

HEAD_STYLES = ("uov", "classification", "joint", "regression")


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of the AIRCHITECT v2 model.

    Defaults are the reproduction's scaled-down shape (the paper trains a
    GPU-scale model; orderings between techniques are preserved — see
    DESIGN.md §2).
    """

    d_model: int = 32
    n_layers: int = 2
    n_heads: int = 4
    embed_dim: int = 16
    head_hidden: int = 64
    num_buckets: int = 16
    head_style: str = "uov"
    dropout: float = 0.0
    seq_len: int = 4          # tokens: M, N, K, dataflow
    token_channels: int = 2   # per-token [value, type-id]

    def __post_init__(self):
        if self.head_style not in HEAD_STYLES:
            raise ValueError(f"head_style must be one of {HEAD_STYLES}")


class AirchitectEncoder(nn.Module):
    """Token embedding + L transformer blocks + downsampling unit."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.token_embed = nn.Linear(config.token_channels, config.d_model, rng)
        self.pos_embed = nn.Parameter(
            nn.init.normal((config.seq_len, config.d_model), rng, std=0.02))
        self.blocks = nn.TransformerStack(config.n_layers, config.d_model,
                                          config.n_heads, rng,
                                          dropout=config.dropout)
        self.downsample = nn.DownsampleUnit(config.seq_len, config.d_model,
                                            config.embed_dim, rng)

    def forward(self, tokens) -> nn.Tensor:
        """tokens: (batch, seq_len, token_channels) array or Tensor."""
        x = nn.as_tensor(tokens)
        h = self.token_embed(x) + self.pos_embed
        h = self.blocks(h)
        return self.downsample(h)


class PerformanceHead(nn.Module):
    """Embedding -> scalar performance prediction (stage-1 L_perf)."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator):
        super().__init__()
        self.net = nn.Sequential(
            nn.Linear(config.embed_dim, config.head_hidden, rng),
            nn.GELU(),
            nn.Linear(config.head_hidden, 1, rng),
        )

    def forward(self, embedding: nn.Tensor) -> nn.Tensor:
        return self.net(embedding).squeeze(-1)


class _OutputHead(nn.Module):
    """One decoder output head (shape depends on the head style)."""

    def __init__(self, in_dim: int, hidden: int, out_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.net = nn.Sequential(
            nn.Linear(in_dim, hidden, rng),
            nn.GELU(),
            nn.Linear(hidden, out_dim, rng),
        )

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.net(x)


class AirchitectDecoder(nn.Module):
    """Upsampling unit + L transformer blocks + per-configuration heads."""

    def __init__(self, config: ModelConfig, problem: DSEProblem,
                 rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.upsample = nn.UpsampleUnit(config.embed_dim, config.seq_len,
                                        config.d_model, rng)
        self.blocks = nn.TransformerStack(config.n_layers, config.d_model,
                                          config.n_heads, rng,
                                          dropout=config.dropout)
        flat_dim = config.seq_len * config.d_model
        n_pe, n_l2 = problem.space.n_pe, problem.space.n_l2

        if config.head_style == "uov":
            out_pe = out_l2 = config.num_buckets
        elif config.head_style == "classification":
            out_pe, out_l2 = n_pe, n_l2
        elif config.head_style == "regression":
            out_pe = out_l2 = 1
        else:  # joint: a single 768-way head (the v1 label encoding)
            out_pe, out_l2 = n_pe * n_l2, 0

        self.pe_head = _OutputHead(flat_dim, config.head_hidden, out_pe, rng)
        self.l2_head = (_OutputHead(flat_dim, config.head_hidden, out_l2, rng)
                        if out_l2 else None)

    def forward(self, embedding: nn.Tensor):
        """embedding (batch, embed_dim) -> head logits.

        Returns (pe_logits, l2_logits); ``l2_logits`` is None for the joint
        head style (the single head covers both configurations).
        """
        h = self.upsample(embedding)
        h = self.blocks(h)
        batch = h.shape[0]
        flat = h.reshape(batch, self.config.seq_len * self.config.d_model)
        pe = self.pe_head(flat)
        l2 = self.l2_head(flat) if self.l2_head is not None else None
        return pe, l2


class AirchitectV2(nn.Module):
    """Full AIRCHITECT v2: encoder, performance head and decoder."""

    def __init__(self, config: ModelConfig, problem: DSEProblem,
                 rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.problem = problem
        self.encoder = AirchitectEncoder(config, rng)
        self.perf_head = PerformanceHead(config, rng)
        self.decoder = AirchitectDecoder(config, problem, rng)
        self.pe_codec = UOVCodec(problem.space.n_pe, config.num_buckets)
        self.l2_codec = UOVCodec(problem.space.n_l2, config.num_buckets)
        # Stage-1 performance-normalisation statistics travel with the
        # weights (buffers), so a loaded model can de-normalise performance
        # predictions without retraining.
        self.register_buffer("perf_mean", np.float64(0.0))
        self.register_buffer("perf_std", np.float64(1.0))

    # ------------------------------------------------------------------
    def embed(self, inputs: np.ndarray) -> nn.Tensor:
        """Raw input tuples -> latent embeddings (tokenising internally)."""
        tokens = self.problem.tokenize(inputs)
        return self.encoder(tokens)

    def forward(self, inputs: np.ndarray):
        """Raw input tuples -> (embedding, perf prediction, head logits)."""
        embedding = self.embed(inputs)
        perf = self.perf_head(embedding)
        pe_logits, l2_logits = self.decoder(embedding)
        return embedding, perf, (pe_logits, l2_logits)

    # ------------------------------------------------------------------
    def decode_logits(self, pe_logits, l2_logits) -> tuple[np.ndarray, np.ndarray]:
        """Head logits (as returned by :meth:`forward`) -> choice indices.

        The single decode path shared by :meth:`predict_indices` and the
        batched serving engine (:class:`repro.core.BatchedDSEPredictor`),
        so the two are identical by construction.
        """
        space = self.problem.space
        style = self.config.head_style
        if style == "uov":
            pe = self.pe_codec.decode_to_choice(pe_logits.sigmoid().numpy())
            l2 = self.l2_codec.decode_to_choice(l2_logits.sigmoid().numpy())
        elif style == "classification":
            pe = pe_logits.numpy().argmax(axis=-1)
            l2 = l2_logits.numpy().argmax(axis=-1)
        elif style == "regression":
            pe_val = pe_logits.sigmoid().numpy()[:, 0] * (space.n_pe - 1)
            l2_val = l2_logits.sigmoid().numpy()[:, 0] * (space.n_l2 - 1)
            pe = np.clip(np.rint(pe_val), 0, space.n_pe - 1)
            l2 = np.clip(np.rint(l2_val), 0, space.n_l2 - 1)
        else:  # joint
            flat = pe_logits.numpy().argmax(axis=-1)
            pe, l2 = space.unflatten(flat)
        return (np.asarray(pe, dtype=np.int64),
                np.asarray(l2, dtype=np.int64))

    def predict_indices(self, inputs: np.ndarray,
                        batch_size: int = 1024) -> tuple[np.ndarray, np.ndarray]:
        """One-shot DSE: inputs -> (pe_idx, l2_idx) design-choice indices."""
        self.eval()
        inputs = np.atleast_2d(np.asarray(inputs))
        pe_out = np.empty(len(inputs), dtype=np.int64)
        l2_out = np.empty(len(inputs), dtype=np.int64)
        with nn.no_grad():
            for start in range(0, len(inputs), batch_size):
                chunk = inputs[start:start + batch_size]
                _, _, (pe_logits, l2_logits) = self.forward(chunk)
                sl = slice(start, start + len(chunk))
                pe_out[sl], l2_out[sl] = self.decode_logits(pe_logits, l2_logits)
        return pe_out, l2_out

    def predict_performance(self, inputs: np.ndarray, batch_size: int = 1024,
                            denormalise: bool = True) -> np.ndarray:
        """Performance-head predictions for raw input tuples.

        With ``denormalise`` (the default) the z-scored log-metric output
        is mapped back to metric units (e.g. latency cycles) using the
        stage-1 statistics persisted in the ``perf_mean``/``perf_std``
        buffers; pass ``denormalise=False`` for the raw normalised score.
        """
        self.eval()
        inputs = np.atleast_2d(np.asarray(inputs))
        out = np.empty(len(inputs), dtype=np.float64)
        with nn.no_grad():
            for start in range(0, len(inputs), batch_size):
                chunk = inputs[start:start + batch_size]
                pred = self.perf_head(self.embed(chunk)).numpy()
                out[start:start + len(chunk)] = pred
        if denormalise:
            out = np.exp(out * float(self.perf_std) + float(self.perf_mean))
        return out

    def head_parameter_count(self) -> int:
        """Parameters in the output heads only (Fig. 9's model-size axis)."""
        count = self.decoder.pe_head.num_parameters()
        if self.decoder.l2_head is not None:
            count += self.decoder.l2_head.num_parameters()
        return count
