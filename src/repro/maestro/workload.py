"""GEMM workload description used throughout the DSE problem (Table I).

The paper's DSE task assumes a GEMM operation ``(M, K) x (K, N) = (M, N)``
per layer; convolutions and attention projections are lowered to this form
by :mod:`repro.workloads.lowering`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GemmWorkload"]


@dataclass(frozen=True)
class GemmWorkload:
    """A single GEMM layer: ``C[M, N] = A[M, K] @ B[K, N]``.

    Attributes
    ----------
    m, n, k:
        Matrix dimensions.  In the paper's feature encoding (Table I) these
        are bounded by M <= 256, N <= 1677, K <= 1185.
    name:
        Optional layer label (e.g. ``"resnet50.layer3.conv2"``).
    """

    m: int
    n: int
    k: int
    name: str = ""

    def __post_init__(self):
        for dim, value in (("m", self.m), ("n", self.n), ("k", self.k)):
            if value < 1:
                raise ValueError(f"GEMM dimension {dim} must be >= 1, got {value}")

    @property
    def macs(self) -> int:
        """Multiply-accumulate count."""
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        """Floating-point operations (2 per MAC)."""
        return 2 * self.macs

    def operand_bytes(self, element_bytes: int = 1) -> tuple[int, int, int]:
        """Sizes in bytes of (A, B, C)."""
        return (self.m * self.k * element_bytes,
                self.k * self.n * element_bytes,
                self.m * self.n * element_bytes)

    def total_bytes(self, element_bytes: int = 1) -> int:
        """Total unique bytes touched by the GEMM."""
        a, b, c = self.operand_bytes(element_bytes)
        return a + b + c

    def arithmetic_intensity(self, element_bytes: int = 1) -> float:
        """MACs per unique byte — the classic roofline x-axis."""
        return self.macs / self.total_bytes(element_bytes)

    def __str__(self) -> str:
        tag = f" '{self.name}'" if self.name else ""
        return f"GEMM{tag}(M={self.m}, N={self.n}, K={self.k})"
