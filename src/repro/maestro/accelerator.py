"""Accelerator configuration: resources under DSE plus technology constants.

The DSE variables (``num_pes`` and ``l2_kb``) follow Table I of the paper:
64 PE choices and 12 L2 buffer-size choices, with the per-PE L1 size fixed
(as in the ConfuciuX search assumptions the paper adopts).  The remaining
fields are technology constants shared by every design point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["Technology", "AcceleratorConfig"]


@dataclass(frozen=True)
class Technology:
    """Fixed platform/technology parameters for the analytical model.

    Bandwidths are in bytes/cycle; energies in pJ.  The SRAM latency/energy
    scaling exponents model the physical cost of larger L2 buffers (longer
    wordlines, deeper decoders), which is what makes over-provisioned
    buffers *not* free and gives the latency landscape an interior optimum
    in the buffer dimension.
    """

    element_bytes: int = 1           # int8 operands
    l1_bytes: int = 512              # fixed per-PE scratchpad (ConfuciuX)
    noc_bandwidth: float = 64.0      # L2 <-> PE array, bytes/cycle
    dram_bandwidth: float = 16.0     # DRAM <-> L2, bytes/cycle
    frequency_ghz: float = 1.0
    # L2 access pipeline latency: base + slope * log2(l2_kb / 16) cycles,
    # paid on every stationary-set swap (tile switch).
    l2_latency_base: float = 2.0
    l2_latency_slope: float = 1.5
    # Energy per event (pJ): MAC, L1 access, NoC hop-byte, L2 access-byte
    # (at the 16 KB reference size), DRAM access-byte.
    e_mac: float = 0.2
    e_l1: float = 0.15
    e_noc: float = 0.3
    e_l2_base: float = 1.2
    e_l2_slope: float = 0.35         # growth per doubling of L2 size
    e_dram: float = 16.0
    # Area (arbitrary units) for constrained-DSE extensions.
    area_per_pe: float = 1.0
    area_per_l2_kb: float = 0.6

    def l2_access_latency(self, l2_kb: float) -> float:
        """Pipeline cycles per L2 tile access for a buffer of ``l2_kb`` KB."""
        import math
        return self.l2_latency_base + self.l2_latency_slope * math.log2(max(l2_kb / 16.0, 1.0))

    def l2_access_energy(self, l2_kb: float) -> float:
        """pJ per byte read from an L2 of ``l2_kb`` KB."""
        import math
        return self.e_l2_base + self.e_l2_slope * math.log2(max(l2_kb / 16.0, 1.0))


@dataclass(frozen=True)
class AcceleratorConfig:
    """One point in the hardware design space."""

    num_pes: int
    l2_kb: int
    technology: Technology = field(default_factory=Technology)

    def __post_init__(self):
        if self.num_pes < 1:
            raise ValueError("num_pes must be >= 1")
        if self.l2_kb < 1:
            raise ValueError("l2_kb must be >= 1")

    @property
    def l2_bytes(self) -> int:
        return self.l2_kb * 1024

    @property
    def area(self) -> float:
        """Area estimate in arbitrary units (PEs + L2 SRAM)."""
        t = self.technology
        return self.num_pes * t.area_per_pe + self.l2_kb * t.area_per_l2_kb

    def with_resources(self, num_pes: int | None = None,
                       l2_kb: int | None = None) -> "AcceleratorConfig":
        """Copy with replaced DSE variables."""
        return replace(self,
                       num_pes=self.num_pes if num_pes is None else num_pes,
                       l2_kb=self.l2_kb if l2_kb is None else l2_kb)

    def __str__(self) -> str:
        return f"Accelerator(PEs={self.num_pes}, L2={self.l2_kb}KB)"
