"""Dataflow definitions and spatial-mapping analysis.

The paper's input feature ``dataflow`` is a choice among three canonical
styles (Table I):

* **Weight stationary** (WS, NVDLA [6]):     the ``B`` operand (weights,
  K x N) is pinned in PE-local storage; the ``M`` dimension streams through.
* **Output stationary** (OS, ShiDianNao [8]): the ``C`` operand (outputs,
  M x N) is pinned; the ``K`` (reduction) dimension streams through.
* **Row stationary** (RS, Eyeriss [7]):       input rows (``A``, M x K) are
  pinned; the ``N`` dimension streams through.  (For GEMM this captures
  RS's property of maximising input-operand reuse.)

Each dataflow therefore spatially tiles a different pair of GEMM dimensions
across the PE array and streams the third — which is what makes the optimal
hardware configuration depend on the *shape* of the layer, the core
phenomenon AIRCHITECT v2 learns.
"""

from __future__ import annotations

import enum
import math
from functools import lru_cache

import numpy as np

__all__ = ["Dataflow", "array_dims", "spatial_analysis", "SpatialAnalysis"]


class Dataflow(enum.IntEnum):
    """The three dataflow choices of Table I (encoded 0/1/2 as features)."""

    WEIGHT_STATIONARY = 0
    OUTPUT_STATIONARY = 1
    ROW_STATIONARY = 2

    @property
    def short_name(self) -> str:
        return {Dataflow.WEIGHT_STATIONARY: "ws",
                Dataflow.OUTPUT_STATIONARY: "os",
                Dataflow.ROW_STATIONARY: "rs"}[self]

    @classmethod
    def from_any(cls, value) -> "Dataflow":
        """Accept a Dataflow, int, or name string ('ws'/'os'/'rs')."""
        if isinstance(value, cls):
            return value
        if isinstance(value, (int, np.integer)):
            return cls(int(value))
        key = str(value).lower()
        for df in cls:
            if key in (df.short_name, df.name.lower()):
                return df
        raise ValueError(f"unknown dataflow: {value!r}")


@lru_cache(maxsize=4096)
def array_dims(num_pes: int) -> tuple[int, int]:
    """Factor ``num_pes`` into the most square (rows, cols) PE array.

    Returns the largest divisor pair ``(a1, a2)`` with ``a1 <= a2`` and
    ``a1 * a2 == num_pes``.  Near-square arrays minimise the NoC diameter
    (fill/drain latency grows with a1 + a2).
    """
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    a1 = int(math.isqrt(num_pes))
    while a1 > 1 and num_pes % a1 != 0:
        a1 -= 1
    return a1, num_pes // a1


class SpatialAnalysis:
    """Vectorised spatial-mapping statistics for one dataflow.

    MAESTRO models a *flexible* accelerator: a flat pool of P PEs connected
    by a NoC (not a rigid 2-D grid), so a stationary set occupies up to P
    work units regardless of how the spatial dims factor.  For a dataflow
    that spatially maps GEMM dims ``(d1, d2)`` and streams dimension ``s``:

    * ``work``             — total spatial work units, d1 * d2
    * ``steps``            — stationary-set swaps: ceil(work / P)
    * ``stream``           — cycles of streaming per stationary set (s)
    * ``fill``             — NoC fill/drain per set: 2 * (ceil(sqrt(P)) - 1),
                             the network diameter of a P-PE mesh
    * ``compute_cycles``   — steps * (stream + fill)
    * ``utilization``      — work / (steps * P)

    All attributes are numpy arrays broadcast over the inputs.
    """

    #: dataflow -> (spatial dims, streamed dim) as index into (M, N, K)
    _MAPPING = {
        Dataflow.WEIGHT_STATIONARY: ((2, 1), 0),   # spatial (K, N), stream M
        Dataflow.OUTPUT_STATIONARY: ((0, 1), 2),   # spatial (M, N), stream K
        Dataflow.ROW_STATIONARY: ((0, 2), 1),      # spatial (M, K), stream N
    }

    def __init__(self, dataflow: Dataflow, m, n, k, pes):
        dims = np.stack(np.broadcast_arrays(
            np.asarray(m, dtype=np.int64),
            np.asarray(n, dtype=np.int64),
            np.asarray(k, dtype=np.int64)))
        pes = np.asarray(pes, dtype=np.int64)

        (i1, i2), i_s = self._MAPPING[Dataflow.from_any(dataflow)]
        d1, d2 = dims[i1], dims[i2]
        stream = dims[i_s]

        d1, d2, stream, pes = np.broadcast_arrays(d1, d2, stream, pes)
        side = np.ceil(np.sqrt(pes.astype(np.float64))).astype(np.int64)

        self.work = d1 * d2
        self.steps = -(-self.work // pes)  # ceil division
        self.stream = stream
        self.rows = side
        self.cols = side
        # NoC fill/drain: operands ripple across the mesh diameter.
        self.fill = 2 * (side - 1)
        self.compute_cycles = self.steps * (stream + self.fill)
        self.utilization = self.work / (self.steps * pes)


def spatial_analysis(dataflow, m, n, k, pes) -> SpatialAnalysis:
    """Convenience constructor accepting any dataflow designator."""
    return SpatialAnalysis(Dataflow.from_any(dataflow), m, n, k, pes)


def _vectorized_array_dims(pes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Apply :func:`array_dims` elementwise (cached per unique PE count)."""
    flat = np.atleast_1d(pes)
    a1 = np.empty(flat.shape, dtype=np.int64)
    a2 = np.empty(flat.shape, dtype=np.int64)
    for value in np.unique(flat):
        r, c = array_dims(int(value))
        mask = flat == value
        a1[mask] = r
        a2[mask] = c
    if np.isscalar(pes) or np.ndim(pes) == 0:
        return a1.reshape(()), a2.reshape(())
    return a1.reshape(np.shape(pes)), a2.reshape(np.shape(pes))
