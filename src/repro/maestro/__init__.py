"""``repro.maestro`` — MAESTRO-style analytical accelerator cost model.

Re-derives (for GEMM) the data-reuse/traffic analysis that MAESTRO [19]
performs for the three canonical dataflows of Table I, producing latency,
energy and utilisation estimates for any (PEs, L2 buffer) design point.
See DESIGN.md for the substitution rationale.
"""

from .accelerator import AcceleratorConfig, Technology
from .cost import CostBreakdown, CostModel
from .dataflow import Dataflow, SpatialAnalysis, array_dims, spatial_analysis
from .tiling import TilingAnalysis, analyze_tiling
from .workload import GemmWorkload

__all__ = [
    "AcceleratorConfig", "Technology",
    "CostBreakdown", "CostModel",
    "Dataflow", "SpatialAnalysis", "array_dims", "spatial_analysis",
    "TilingAnalysis", "analyze_tiling",
    "GemmWorkload",
]
