"""The MAESTRO-style analytical cost model: latency, energy, utilisation.

Latency is a roofline over three engines plus tile-phase overhead::

    latency = max(compute_cycles, noc_cycles, dram_cycles)
              + switches * l2_access_latency(l2_kb) + fill

* ``compute_cycles`` comes from the dataflow's spatial analysis
  (:mod:`repro.maestro.dataflow`): stationary-set swaps, streaming length
  and systolic fill/drain.
* ``noc_cycles`` counts elements crossing the L2 <-> PE-array NoC:
  ``steps * (P + stream * (rows + cols))`` elements.
* ``dram_cycles`` comes from the tiling analysis
  (:mod:`repro.maestro.tiling`).
* the L2 pipeline term grows logarithmically with buffer size, so
  over-provisioned buffers are (mildly) harmful — this yields the interior
  optima and long-tailed label distribution the paper observes (Fig. 3).

Everything broadcasts: the oracle evaluates the full 64 x 12 design grid
for batches of layers in a single numpy pass (``evaluate_grid``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .accelerator import AcceleratorConfig, Technology
from .dataflow import Dataflow, SpatialAnalysis
from .tiling import analyze_tiling
from .workload import GemmWorkload

__all__ = ["CostBreakdown", "CostModel"]


@dataclass
class CostBreakdown:
    """Vectorised cost-model outputs (broadcast numpy arrays)."""

    latency_cycles: np.ndarray
    compute_cycles: np.ndarray
    noc_cycles: np.ndarray
    dram_cycles: np.ndarray
    overhead_cycles: np.ndarray
    energy_pj: np.ndarray
    utilization: np.ndarray

    @property
    def edp(self) -> np.ndarray:
        """Energy-delay product (pJ * cycles)."""
        return self.energy_pj * self.latency_cycles

    def bound_by(self) -> np.ndarray:
        """Which engine dominates: 0=compute, 1=noc, 2=dram."""
        stacked = np.stack([self.compute_cycles, self.noc_cycles, self.dram_cycles])
        return np.argmax(stacked, axis=0)


class CostModel:
    """Analytical latency/energy model for GEMM on the Table-I accelerator."""

    def __init__(self, technology: Technology | None = None):
        self.technology = technology or Technology()

    # ------------------------------------------------------------------
    # Vectorised core
    # ------------------------------------------------------------------
    def evaluate(self, m, n, k, dataflow, pes, l2_kb) -> CostBreakdown:
        """Evaluate the model with full broadcasting over all arguments.

        ``dataflow`` must be a single :class:`Dataflow` designator (use
        :meth:`evaluate_mixed` for per-sample dataflow arrays).
        """
        tech = self.technology
        dataflow = Dataflow.from_any(dataflow)

        m = np.asarray(m, dtype=np.int64)
        n = np.asarray(n, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        pes = np.asarray(pes, dtype=np.int64)
        l2_kb = np.asarray(l2_kb, dtype=np.float64)
        m, n, k, pes, l2_kb = np.broadcast_arrays(m, n, k, pes, l2_kb)

        spatial = SpatialAnalysis(dataflow, m, n, k, pes)
        capacity = l2_kb * 1024.0 / tech.element_bytes
        tiles = analyze_tiling(dataflow, m, n, k, capacity)

        compute = spatial.compute_cycles.astype(np.float64)

        # NoC traffic: every stationary element crosses once (total = work),
        # plus per-set streaming through the array boundary (~2 * sqrt(P)
        # lanes in/out).
        noc_elems = (spatial.work
                     + spatial.steps * spatial.stream * (spatial.rows + spatial.cols))
        noc_cycles = noc_elems * tech.element_bytes / tech.noc_bandwidth

        dram_bytes = tiles.dram_elems * tech.element_bytes
        dram_cycles = dram_bytes / tech.dram_bandwidth

        l2_latency = (tech.l2_latency_base
                      + tech.l2_latency_slope * np.log2(np.maximum(l2_kb / 16.0, 1.0)))
        overhead = tiles.switches * l2_latency + spatial.fill

        latency = np.maximum(np.maximum(compute, noc_cycles), dram_cycles) + overhead

        macs = (m * n * k).astype(np.float64)
        l2_energy_rate = (tech.e_l2_base
                          + tech.e_l2_slope * np.log2(np.maximum(l2_kb / 16.0, 1.0)))
        noc_bytes = noc_elems * tech.element_bytes
        energy = (macs * tech.e_mac
                  + 3.0 * macs * tech.e_l1
                  + noc_bytes * tech.e_noc
                  + (noc_bytes + dram_bytes) * l2_energy_rate
                  + dram_bytes * tech.e_dram)

        return CostBreakdown(latency_cycles=latency,
                             compute_cycles=compute,
                             noc_cycles=noc_cycles,
                             dram_cycles=dram_cycles,
                             overhead_cycles=overhead,
                             energy_pj=energy,
                             utilization=spatial.utilization)

    def evaluate_mixed(self, m, n, k, dataflow_idx, pes, l2_kb) -> CostBreakdown:
        """Like :meth:`evaluate` but ``dataflow_idx`` is a per-sample array.

        Internally evaluates all three dataflows and selects per sample.
        """
        dataflow_idx = np.asarray(dataflow_idx, dtype=np.int64)
        results = [self.evaluate(m, n, k, df, pes, l2_kb) for df in Dataflow]
        out = {}
        for field in ("latency_cycles", "compute_cycles", "noc_cycles",
                      "dram_cycles", "overhead_cycles", "energy_pj", "utilization"):
            stacked = np.stack([np.broadcast_arrays(
                getattr(r, field), dataflow_idx)[0] for r in results])
            out[field] = np.take_along_axis(
                stacked,
                np.broadcast_to(dataflow_idx, stacked.shape[1:])[None], axis=0)[0]
        return CostBreakdown(**out)

    # ------------------------------------------------------------------
    # Convenience scalar / grid APIs
    # ------------------------------------------------------------------
    def latency(self, workload: GemmWorkload, dataflow,
                config: AcceleratorConfig) -> float:
        """Scalar latency in cycles for one (layer, dataflow, config)."""
        result = self.evaluate(workload.m, workload.n, workload.k, dataflow,
                               config.num_pes, config.l2_kb)
        return float(result.latency_cycles)

    def energy(self, workload: GemmWorkload, dataflow,
               config: AcceleratorConfig) -> float:
        """Scalar energy in pJ for one (layer, dataflow, config)."""
        result = self.evaluate(workload.m, workload.n, workload.k, dataflow,
                               config.num_pes, config.l2_kb)
        return float(result.energy_pj)

    def evaluate_grid(self, m, n, k, dataflow, pe_choices: np.ndarray,
                      l2_choices: np.ndarray) -> CostBreakdown:
        """Evaluate a batch of layers over the full design grid.

        Parameters
        ----------
        m, n, k:
            Arrays of shape ``(batch,)``.
        dataflow:
            A single dataflow designator.
        pe_choices, l2_choices:
            1-D arrays of the discrete design choices.

        Returns
        -------
        CostBreakdown with arrays of shape ``(batch, len(pe_choices),
        len(l2_choices))``.
        """
        m = np.asarray(m).reshape(-1, 1, 1)
        n = np.asarray(n).reshape(-1, 1, 1)
        k = np.asarray(k).reshape(-1, 1, 1)
        pes = np.asarray(pe_choices).reshape(1, -1, 1)
        l2 = np.asarray(l2_choices).reshape(1, 1, -1)
        return self.evaluate(m, n, k, dataflow, pes, l2)
