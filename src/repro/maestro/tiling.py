"""L2 tiling analysis: DRAM traffic and tile-switch counts per dataflow.

The L2 buffer is partitioned between the dataflow's *stationary* operand
tile (kept as large as possible) and double-buffered stream blocks for the
other two operands.  All functions are vectorised: ``m, n, k`` and
``capacity_elems`` broadcast together, so the oracle can evaluate the whole
(64 PE x 12 buffer) grid for a batch of layers in one numpy pass.

Traffic formulas follow the classic tiled-GEMM reload counts:

* the stationary operand is read from DRAM exactly once;
* a streamed operand is re-read once per stationary-tile sweep over the
  dimension it does not share with the stationary operand;
* partial sums cost a C read+write per extra reduction (K) tile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataflow import Dataflow

__all__ = ["TilingAnalysis", "analyze_tiling"]


@dataclass
class TilingAnalysis:
    """Vectorised tiling result (all fields broadcast numpy arrays).

    ``dram_elems``  — total DRAM traffic in elements (A + B + C).
    ``switches``    — number of L2 tile phases (drives L2 pipeline overhead).
    ``traffic_a/b/c`` — per-operand DRAM traffic in elements.
    """

    traffic_a: np.ndarray
    traffic_b: np.ndarray
    traffic_c: np.ndarray
    switches: np.ndarray

    @property
    def dram_elems(self) -> np.ndarray:
        return self.traffic_a + self.traffic_b + self.traffic_c


def _ceil_div(a, b):
    return -(-np.asarray(a, dtype=np.int64) // np.asarray(b, dtype=np.int64))


def _partial_sum_traffic(m, n, k, tile_k):
    """C traffic: write-once if K fits in one tile, else read+write per extra
    K tile (partials spill to DRAM)."""
    k_tiles = _ceil_div(k, tile_k)
    return m * n * (2 * k_tiles - 1)


def analyze_tiling(dataflow: Dataflow, m, n, k, capacity_elems) -> TilingAnalysis:
    """Compute DRAM traffic and switch counts for one dataflow.

    Parameters
    ----------
    dataflow:
        Which operand is stationary (decides tile priorities / loop order).
    m, n, k:
        GEMM dimensions (broadcastable arrays).
    capacity_elems:
        L2 capacity in *elements* (broadcastable array).
    """
    m = np.asarray(m, dtype=np.int64)
    n = np.asarray(n, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    cap = np.maximum(np.asarray(capacity_elems, dtype=np.int64), 4)
    m, n, k, cap = np.broadcast_arrays(m, n, k, cap)

    half = np.maximum(cap // 2, 1)
    dataflow = Dataflow.from_any(dataflow)

    if dataflow is Dataflow.WEIGHT_STATIONARY:
        # Stationary B (K x N): keep full K columns if possible.
        tile_k = np.minimum(k, np.maximum(half, 1))
        tile_n = np.clip(half // np.maximum(tile_k, 1), 1, n)
        # Stream A/C in blocks of tile_m rows, double buffered.
        row_cost = 2 * (tile_k + tile_n)
        tile_m = np.clip(half // np.maximum(row_cost, 1), 1, m)
        traffic_a = m * k * _ceil_div(n, tile_n)
        traffic_b = k * n
        traffic_c = _partial_sum_traffic(m, n, k, tile_k)
        switches = _ceil_div(k, tile_k) * _ceil_div(n, tile_n) * _ceil_div(m, tile_m)

    elif dataflow is Dataflow.OUTPUT_STATIONARY:
        # Stationary C (M x N): near-square output tile.
        side = np.maximum(np.sqrt(half.astype(np.float64)).astype(np.int64), 1)
        tile_m = np.clip(side, 1, m)
        tile_n = np.clip(half // np.maximum(tile_m, 1), 1, n)
        row_cost = 2 * (tile_m + tile_n)
        tile_kk = np.clip(half // np.maximum(row_cost, 1), 1, k)
        traffic_a = m * k * _ceil_div(n, tile_n)
        traffic_b = k * n * _ceil_div(m, tile_m)
        traffic_c = m * n  # accumulated in place, written once
        switches = _ceil_div(m, tile_m) * _ceil_div(n, tile_n) * _ceil_div(k, tile_kk)

    elif dataflow is Dataflow.ROW_STATIONARY:
        # Stationary A (M x K): keep full rows if possible.
        tile_m = np.minimum(m, np.maximum(half, 1))
        tile_k = np.clip(half // np.maximum(tile_m, 1), 1, k)
        row_cost = 2 * (tile_m + tile_k)
        tile_n = np.clip(half // np.maximum(row_cost, 1), 1, n)
        traffic_a = m * k
        traffic_b = k * n * _ceil_div(m, tile_m)
        traffic_c = _partial_sum_traffic(m, n, k, tile_k)
        switches = _ceil_div(m, tile_m) * _ceil_div(k, tile_k) * _ceil_div(n, tile_n)

    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unhandled dataflow {dataflow}")

    return TilingAnalysis(traffic_a=traffic_a.astype(np.float64),
                          traffic_b=traffic_b.astype(np.float64),
                          traffic_c=traffic_c.astype(np.float64),
                          switches=switches.astype(np.float64))
