"""``repro.uov`` — Unified Ordinal Vectors (§III-D, Algorithm 1).

SID bucketisation plus the ordinal encode/decode that blends classification
(which bucket) with regression (where in the bucket).
"""

from .codec import ORDINAL_THRESHOLD, UOVCodec
from .discretization import SpaceIncreasingDiscretization

__all__ = ["UOVCodec", "ORDINAL_THRESHOLD", "SpaceIncreasingDiscretization"]
