"""Space Increasing Discretization (SID) for UOV bucketisation.

The paper employs Space Increasing Discretization [30] to split a DSE
output range into K buckets whose widths *increase* with the index —
fine resolution where design points are dense (small configurations) and
coarse where the metric is flat (large configurations).

Following the OccDepth formulation, the bucket boundaries over a range
``[0, extent)`` are::

    r_i = extent * i * (i + 1) / (K * (K + 1)),   i = 0 .. K

so bucket ``i`` spans ``[r_i, r_{i+1})`` with width proportional to
``i + 1``.  The discretisation here operates in *choice-index space*
(e.g. [0, 64) for the PE head): design choices themselves are already a
non-linear (hardware-meaningful) quantisation of the physical range, and
index space is what the decoder's heads predict.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SpaceIncreasingDiscretization"]


class SpaceIncreasingDiscretization:
    """SID bucketisation of the half-open range ``[0, extent)``.

    Parameters
    ----------
    extent:
        Size of the value range (number of design choices for that head).
    num_buckets:
        K, the number of buckets.  ``K = 1`` degenerates to pure regression
        over the whole range; ``K = extent`` approaches pure classification
        (one value per bucket) — exactly the spectrum Fig. 8(b) sweeps.
    """

    def __init__(self, extent: float, num_buckets: int):
        if extent <= 0:
            raise ValueError("extent must be positive")
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self.extent = float(extent)
        self.num_buckets = int(num_buckets)
        i = np.arange(self.num_buckets + 1, dtype=np.float64)
        self.boundaries = self.extent * i * (i + 1) / (self.num_buckets * (self.num_buckets + 1))
        self.widths = np.diff(self.boundaries)

    # ------------------------------------------------------------------
    def bucket_of(self, values) -> np.ndarray:
        """Bucket index for each value (values clipped into range)."""
        values = np.clip(np.asarray(values, dtype=np.float64), 0.0, np.nextafter(self.extent, 0))
        idx = np.searchsorted(self.boundaries, values, side="right") - 1
        return np.clip(idx, 0, self.num_buckets - 1)

    def to_coordinate(self, values) -> np.ndarray:
        """Map values to normalised bucket coordinates ``u in [0, K)``.

        ``u = n + (v - r_n) / w_n`` where ``n`` is the containing bucket.
        Within-bucket position is linear regardless of the physical bucket
        width, which keeps the ordinal encoding's ``1 - exp(-.)`` term
        well-resolved (see DESIGN.md §5).
        """
        values = np.clip(np.asarray(values, dtype=np.float64), 0.0, np.nextafter(self.extent, 0))
        n = self.bucket_of(values)
        offset = (values - self.boundaries[n]) / self.widths[n]
        return n + np.clip(offset, 0.0, np.nextafter(1.0, 0))

    def from_coordinate(self, u) -> np.ndarray:
        """Inverse of :meth:`to_coordinate`."""
        u = np.clip(np.asarray(u, dtype=np.float64), 0.0, np.nextafter(self.num_buckets, 0))
        n = np.clip(u.astype(np.int64), 0, self.num_buckets - 1)
        return self.boundaries[n] + (u - n) * self.widths[n]
