"""Unified Ordinal Vector encoding and decoding (Algorithm 1 / Eq. 2).

A UOV embeds a scalar design choice ``D`` into a K-length vector that is
simultaneously a classification target (which bucket contains D — the
non-zero prefix length) and a regression target (where inside the bucket —
the value of the last non-zero component)::

    O_i = 1 - exp(-(u - i))    if u >= i
          0                    otherwise

where ``u`` is the SID bucket coordinate of D (integer part = bucket index,
fractional part = within-bucket position).  Components strictly below the
containing bucket saturate towards 1 (the monotone ordinal prefix of the
paper's Algorithm 1); the component at the containing bucket carries the
within-bucket regression in ``[0, 1 - 1/e)``.

Decoding is the exact reverse: the bucket index is the number of components
at or above ``1 - 1/e`` (the value a component reaches exactly one bucket
past its anchor), and the offset is ``-log(1 - O_n)``.  On clean encodings
the round-trip is exact; on noisy model predictions the same rule is a
robust estimator (property-tested in ``tests/uov``).
"""

from __future__ import annotations

import numpy as np

from .discretization import SpaceIncreasingDiscretization

__all__ = ["UOVCodec", "ORDINAL_THRESHOLD"]

#: value O_i takes when u - i == 1, separating "past this bucket" from "in it".
ORDINAL_THRESHOLD = 1.0 - np.exp(-1.0)


class UOVCodec:
    """Encode/decode scalar design-choice indices as Unified Ordinal Vectors.

    Parameters
    ----------
    num_values:
        Number of discrete design choices for this head (64 for PE, 12 for
        buffer in the Table-I space).
    num_buckets:
        K — UOV length.  The paper uses K = 16.
    """

    def __init__(self, num_values: int, num_buckets: int = 16):
        if num_values < 1:
            raise ValueError("num_values must be >= 1")
        self.num_values = int(num_values)
        self.num_buckets = int(num_buckets)
        self.sid = SpaceIncreasingDiscretization(float(num_values), num_buckets)
        self._anchors = np.arange(num_buckets, dtype=np.float64)

    # ------------------------------------------------------------------
    def encode(self, value_idx) -> np.ndarray:
        """Algorithm 1: design-choice indices -> UOV matrix (batch, K).

        ``value_idx`` may be fractional (continuous interpolation between
        choices); integers cover the standard case.
        """
        values = np.asarray(value_idx, dtype=np.float64)
        scalar = values.ndim == 0
        u = self.sid.to_coordinate(values.reshape(-1))
        delta = u[:, None] - self._anchors[None, :]
        uov = np.where(delta >= 0.0, 1.0 - np.exp(-delta), 0.0)
        return uov[0] if scalar else uov.reshape(values.shape + (self.num_buckets,))

    def decode(self, uov) -> np.ndarray:
        """Reverse of Algorithm 1 -> continuous design-choice indices.

        Accepts clean encodings or sigmoid model outputs.  The bucket index
        is the ordinal prefix length (#components >= 1 - 1/e); the
        within-bucket offset fuses the inversions of the two informative
        components (at the bucket, ``u = n - log(1 - O_n)``, and one below,
        ``u = (n-1) - log(1 - O_{n-1})``), each clipped to its valid range —
        exact on clean encodings, noise-tolerant on model outputs.
        """
        uov = np.asarray(uov, dtype=np.float64)
        scalar = uov.ndim == 1
        mat = np.clip(uov.reshape(-1, self.num_buckets), 0.0, np.nextafter(1.0, 0))
        rows = np.arange(len(mat))

        past = mat >= ORDINAL_THRESHOLD
        n = np.minimum(past.sum(axis=1), self.num_buckets - 1)

        # Estimate 1: the containing bucket's component, O_n in [0, 1-1/e).
        at_bucket = np.clip(mat[rows, n], 0.0, ORDINAL_THRESHOLD)
        offset_n = np.clip(-np.log1p(-at_bucket), 0.0, np.nextafter(1.0, 0))
        estimates = n + offset_n
        weights = np.ones(len(mat))

        # Estimate 2: the component one below, O_{n-1} in [1-1/e, 1-1/e^2),
        # only defined when n >= 1.
        has_below = n >= 1
        below_idx = np.maximum(n - 1, 0)
        upper = 1.0 - np.exp(-2.0)
        below = np.clip(mat[rows, below_idx], ORDINAL_THRESHOLD,
                        np.nextafter(upper, 0))
        est_below = below_idx + np.clip(-np.log1p(-below), 1.0,
                                        np.nextafter(2.0, 0))
        estimates = estimates + np.where(has_below, est_below, 0.0)
        weights = weights + has_below.astype(np.float64)

        u = estimates / weights
        values = self.sid.from_coordinate(np.clip(u, 0.0,
                                                  np.nextafter(self.num_buckets, 0)))
        values = np.clip(values, 0.0, self.num_values - 1e-9)
        return values[0] if scalar else values.reshape(uov.shape[:-1])

    def decode_to_choice(self, uov) -> np.ndarray:
        """Decode and snap to the nearest integer design-choice index."""
        values = np.rint(self.decode(uov)).astype(np.int64)
        return np.clip(values, 0, self.num_values - 1)

    def bucket_labels(self, value_idx) -> np.ndarray:
        """Bucket index per value — the contrastive class labels of stage 1."""
        return self.sid.bucket_of(np.asarray(value_idx, dtype=np.float64))
