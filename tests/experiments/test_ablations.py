"""Extension ablations: deployment methods, metrics, oracle tolerance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import (run_deployment_ablation,
                                         run_metric_ablation,
                                         run_tolerance_ablation)


class TestDeploymentAblation:
    def test_method1_dominates_method2(self, session_workspace):
        out = run_deployment_ablation("tiny", session_workspace)
        for name, entry in out["results"].items():
            assert entry["method1"].total_latency <= \
                entry["method2"].total_latency + 1e-9, name
            assert entry["oracle"].total_latency <= \
                entry["method1"].total_latency + 1e-9, name


class TestMetricAblation:
    def test_energy_prefers_smaller_configs(self):
        out = run_metric_ablation("tiny", samples=600)
        stats = out["stats"]
        # Energy optima avoid over-provisioning: fewer PEs on average than
        # the latency-optimal designs.
        assert stats["energy"]["mean_pes"] <= stats["latency"]["mean_pes"]

    def test_all_metrics_have_diverse_optima(self):
        out = run_metric_ablation("tiny", samples=600)
        for metric, entry in out["stats"].items():
            assert entry["distinct_optima"] > 5, metric

    def test_edp_between_latency_and_energy(self):
        out = run_metric_ablation("tiny", samples=600)
        stats = out["stats"]
        lo = min(stats["latency"]["mean_pes"], stats["energy"]["mean_pes"])
        hi = max(stats["latency"]["mean_pes"], stats["energy"]["mean_pes"])
        assert lo - 16 <= stats["edp"]["mean_pes"] <= hi + 16


class TestToleranceAblation:
    def test_cost_ratio_bounded_by_tolerance(self):
        tolerances = (0.0, 0.02, 0.05)
        out = run_tolerance_ablation("tiny", samples=500,
                                     tolerances=tolerances)
        for tol in tolerances:
            ratio = out["stats"][tol]["mean_cost_ratio"]
            assert ratio <= 1.0 + tol + 1e-9

    def test_looser_tolerance_saves_resources(self):
        out = run_tolerance_ablation("tiny", samples=500,
                                     tolerances=(0.0, 0.10))
        assert out["stats"][0.10]["mean_pes"] <= \
            out["stats"][0.0]["mean_pes"]

    def test_strict_tolerance_is_reference(self):
        out = run_tolerance_ablation("tiny", samples=300,
                                     tolerances=(0.0,))
        assert out["stats"][0.0]["mean_cost_ratio"] == pytest.approx(1.0)


class TestCLI:
    def test_cli_runs_ablation(self, capsys, tmp_path):
        from repro.cli import main
        code = main(["ablation-tolerance", "--scale", "tiny",
                     "--cache", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "tolerance" in captured.out

    def test_cli_rejects_unknown_experiment(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["fig99", "--cache", str(tmp_path)])
