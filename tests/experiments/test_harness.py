"""Experiment harness: scales, workspace caching, table rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (SCALES, ExperimentScale, Workspace, get_scale,
                               render_table)
from repro.experiments.common import get_datasets


class TestScales:
    def test_presets_exist(self):
        assert {"tiny", "small", "full"} <= set(SCALES)

    def test_get_scale_by_name(self):
        assert get_scale("tiny").name == "tiny"

    def test_get_scale_passthrough(self):
        scale = SCALES["tiny"]
        assert get_scale(scale) is scale

    def test_get_scale_unknown(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_get_scale_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert get_scale(None).name == "tiny"

    def test_model_config_override(self):
        config = SCALES["tiny"].model_config(head_style="joint")
        assert config.head_style == "joint"
        assert config.d_model == SCALES["tiny"].d_model

    def test_with_seed(self):
        scale = SCALES["tiny"].with_seed(99)
        assert scale.seed == 99 and scale.name == "tiny"

    def test_full_scale_matches_paper_split(self):
        full = SCALES["full"]
        assert full.train_samples == 80000
        assert full.test_samples == 20000


class TestWorkspaceCaching:
    def test_dataset_cached_across_calls(self, tmp_path):
        workspace = Workspace(tmp_path)
        scale = SCALES["tiny"]
        train1, test1 = get_datasets(scale, workspace)
        train2, test2 = get_datasets(scale, workspace)
        np.testing.assert_array_equal(train1.inputs, train2.inputs)
        np.testing.assert_array_equal(test1.inputs, test2.inputs)

    def test_dataset_sizes_match_scale(self, tmp_path):
        workspace = Workspace(tmp_path)
        scale = SCALES["tiny"]
        train, test = get_datasets(scale, workspace)
        assert len(train) == scale.train_samples
        assert len(test) == scale.test_samples

    def test_different_seeds_different_dirs(self, tmp_path):
        workspace = Workspace(tmp_path)
        a = workspace.dataset_key(SCALES["tiny"], "train")
        b = workspace.dataset_key(SCALES["tiny"].with_seed(1), "train")
        assert a != b


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        assert "T" in text and "a" in text
        assert "2.50" in text and "x" in text

    def test_column_alignment(self):
        text = render_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len({len(l) for l in lines if "|" not in l or True}) >= 1
