"""Tiny-scale smoke + structure tests of every table/figure runner.

These validate the *structure* each experiment must produce (keys, shapes,
invariants that hold at any scale).  Quantitative orderings are asserted at
the 'small' benchmark scale in EXPERIMENTS.md, not here — tiny-scale
training is too noisy for strict ordering assertions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (DEFAULT_BUCKET_SWEEP, run_fig3, run_fig4,
                               run_fig5, run_fig7, run_fig8a, run_fig8b,
                               run_fig9, run_table2, run_table3)


class TestTable2:
    def test_structure(self, session_workspace):
        out = run_table2("tiny", session_workspace)
        assert set(out["results"]) == {"none", "perf", "contrastive", "both"}
        assert len(out["rows"]) == 4
        for metrics in out["results"].values():
            assert 0.0 <= metrics.accuracy <= 1.0


class TestTable3:
    def test_structure(self, session_workspace):
        out = run_table3("tiny", session_workspace)
        assert set(out["results"]) == {"gandse", "airchitect_v1",
                                       "airchitect_v2"}
        for metrics in out["results"].values():
            assert 0.0 <= metrics.accuracy <= 1.0
        assert "accuracy" in out["table"]


class TestFig3:
    def test_structure_and_claims(self, session_workspace):
        out = run_fig3("tiny", session_workspace)
        n = len(out["pca_coords"])
        assert out["pca_coords"].shape == (n, 2)
        assert out["normalized_latency"].shape == (n,)
        assert 0 <= out["normalized_latency"].min()
        assert out["normalized_latency"].max() <= 1.0
        # Non-convexity: local minima exist on average.
        assert out["landscape"]["mean_local_minima"] >= 1.0
        # Long tail: few classes dominate.
        assert out["longtail"].gini > 0.5


class TestFig4:
    def test_structure(self, session_workspace):
        out = run_fig4("tiny", session_workspace)
        assert out["output_buckets"].max() < 16 * 16
        assert out["num_distinct_buckets"] > 5
        assert 0.0 <= out["nn_label_disagreement"] <= 1.0
        assert out["input_space_complexity"] > 1e9
        assert out["output_space_size"] == 768


class TestFig5:
    def test_structure_and_uniformity_claim(self, session_workspace):
        out = run_fig5("tiny", session_workspace)
        with_c = out["with_contrastive"]["stats"]
        without_c = out["without_contrastive"]["stats"]
        # The robust part of the Fig. 5 claim, visible even at tiny scale:
        # contrastive embeddings are more uniform and better separated.
        assert with_c.uniformity < without_c.uniformity
        assert with_c.separation > without_c.separation


class TestFig7:
    def test_structure(self, session_workspace):
        out = run_fig7("tiny", session_workspace)
        for model, entry in out["latencies"].items():
            assert set(entry) == {"airchitect_v2", "airchitect_v1", "gandse",
                                  "vaesa_bo", "oracle"}
            assert all(v > 0 for v in entry.values())
            # The oracle lower-bounds every technique (folded view).
            assert entry["oracle"] <= min(v for k, v in entry.items()
                                          if k != "oracle") + 1e-6
        for entry in out["normalized"].values():
            assert entry["airchitect_v2"] == pytest.approx(1.0)

    def test_per_layer_view(self, session_workspace):
        out = run_fig7("tiny", session_workspace)
        for model, entry in out["per_layer_latencies"].items():
            # Per-layer oracle lower-bounds per-layer deployments too.
            assert entry["oracle"] <= min(v for k, v in entry.items()
                                          if k != "oracle") * 1.001
        assert out["mean_baseline_ratio_per_layer"] > 0


class TestFig8a:
    def test_structure(self, session_workspace):
        out = run_fig8a("tiny", session_workspace)
        assert set(out["curves"]) == {"contrastive_bo", "vaesa_bo"}
        for curve in out["curves"].values():
            assert (np.diff(curve) <= 1e-9).all()   # best-so-far monotone
            assert curve[-1] >= 1.0 - 1e-9           # bounded by the optimum


class TestFig8b:
    def test_structure(self, session_workspace):
        out = run_fig8b("tiny", session_workspace, sweep=(1, 8, 16))
        assert set(out["results"]) == {1, 8, 16}
        sizes = [out["results"][k]["head_params"] for k in (1, 8, 16)]
        assert sizes == sorted(sizes)  # model size grows with K
        for entry in out["results"].values():
            assert 0.0 <= entry["metrics"].accuracy <= 1.0


class TestFig9:
    def test_structure_and_size_claim(self, session_workspace):
        out = run_fig9("tiny", session_workspace)
        assert set(out["results"]) == {"v1_classification", "v1_uov",
                                       "v2_classification", "v2_uov"}
        # UOV heads must be smaller than classification heads (both models).
        assert out["results"]["v1_uov"]["head_params"] < \
            out["results"]["v1_classification"]["head_params"]
        assert out["results"]["v2_uov"]["head_params"] < \
            out["results"]["v2_classification"]["head_params"]
