"""Search-based DSE methods: objective accounting, GA/RL/BO behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.search import (BOConfig, ConfuciuXConfig, DesignObjective,
                          GammaConfig, GaussianProcess, bayesian_optimization,
                          confuciux_search, exhaustive_search,
                          expected_improvement, gamma_search, random_search)


@pytest.fixture
def objective(problem, oracle):
    return DesignObjective(problem, [64, 512, 256, 1], oracle=oracle)


class TestDesignObjective:
    def test_counts_evaluations(self, objective):
        objective(0, 0)
        objective(5, 5)
        assert objective.n_evals == 2
        assert len(objective.history) == 2

    def test_history_is_best_so_far(self, objective):
        costs = [objective(pe, l2) for pe, l2 in [(0, 0), (30, 6), (63, 11)]]
        assert objective.history == list(np.minimum.accumulate(costs))

    def test_clips_out_of_range(self, objective):
        cost = objective(10 ** 6, -5)
        assert np.isfinite(cost)

    def test_result_matches_best(self, objective):
        objective(0, 0)
        objective(32, 6)
        result = objective.result()
        assert result.best_cost == min(objective.history)
        assert result.n_evals == 2


class TestRandomAndExhaustive:
    def test_exhaustive_finds_true_optimum(self, problem, oracle):
        obj = DesignObjective(problem, [64, 512, 256, 1], oracle=oracle)
        result = exhaustive_search(obj)
        assert result.n_evals == 768
        truth = oracle.solve(np.array([[64, 512, 256, 1]]))
        # The exhaustive sweep's minimum can't exceed the labelled cost.
        assert result.best_cost <= float(truth.best_cost[0]) + 1e-9

    def test_random_search_respects_budget(self, problem, oracle, rng):
        obj = DesignObjective(problem, [64, 512, 256, 1], oracle=oracle)
        result = random_search(obj, 50, rng)
        assert result.n_evals == 50

    def test_more_budget_no_worse(self, problem, oracle):
        costs = []
        for budget in (10, 200):
            obj = DesignObjective(problem, [64, 512, 256, 0], oracle=oracle)
            rng = np.random.default_rng(5)
            costs.append(random_search(obj, budget, rng).best_cost)
        assert costs[1] <= costs[0]


class TestGamma:
    def test_beats_random_at_equal_budget(self, problem, oracle):
        """GA should usually beat pure random sampling at matched budgets."""
        wins = 0
        for seed in range(5):
            inp = [32 * (seed + 1), 200 + 100 * seed, 300, seed % 3]
            ga_obj = DesignObjective(problem, inp, oracle=oracle)
            ga = gamma_search(ga_obj, np.random.default_rng(seed),
                              GammaConfig(population=12, generations=8))
            rnd_obj = DesignObjective(problem, inp, oracle=oracle)
            rnd = random_search(rnd_obj, ga.n_evals,
                                np.random.default_rng(seed))
            wins += ga.best_cost <= rnd.best_cost
        assert wins >= 3

    def test_seed_population_used(self, problem, oracle):
        """Seeding the GA at the optimum keeps it there (elitism)."""
        inp = [64, 512, 256, 1]
        truth = oracle.solve(np.array([inp]))
        obj = DesignObjective(problem, inp, oracle=oracle)
        result = gamma_search(obj, np.random.default_rng(0),
                              GammaConfig(population=8, generations=3),
                              seed_population=[(int(truth.pe_idx[0]),
                                                int(truth.l2_idx[0]))])
        assert result.best_cost <= float(truth.best_cost[0]) + 1e-9


class TestConfuciuX:
    def test_two_phase_runs_and_improves(self, problem, oracle):
        obj = DesignObjective(problem, [100, 800, 400, 0], oracle=oracle)
        result = confuciux_search(obj, np.random.default_rng(0),
                                  ConfuciuXConfig(episodes=24,
                                                  batch_episodes=8))
        assert result.n_evals > 24  # RL phase + GA phase
        assert result.history[-1] <= result.history[0]

    def test_near_oracle_on_easy_workload(self, problem, oracle):
        """ConfuciuX (the paper's labeller) should land within a small
        factor of the exhaustive optimum."""
        inp = [64, 512, 256, 1]
        obj = DesignObjective(problem, inp, oracle=oracle)
        result = confuciux_search(obj, np.random.default_rng(1))
        optimum = obj.true_optimum()
        assert result.best_cost <= optimum * 1.25


class TestGaussianProcess:
    def test_interpolates_training_points(self, rng):
        x = rng.uniform(-2, 2, size=(12, 2))
        y = np.sin(x[:, 0]) + x[:, 1] ** 2
        gp = GaussianProcess(length_scale=1.0).fit(x, y)
        mu, _ = gp.predict(x)
        np.testing.assert_allclose(mu, y, atol=1e-3)

    def test_uncertainty_higher_away_from_data(self, rng):
        x = rng.uniform(-1, 1, size=(10, 1))
        y = x[:, 0] ** 2
        gp = GaussianProcess(length_scale=0.3).fit(x, y)
        _, std_near = gp.predict(np.array([[0.0]]))
        _, std_far = gp.predict(np.array([[5.0]]))
        assert std_far > std_near

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 2)))


class TestExpectedImprovement:
    def test_zero_when_mean_far_worse(self):
        ei = expected_improvement(np.array([10.0]), np.array([0.01]), best=0.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-12)

    def test_positive_when_mean_better(self):
        ei = expected_improvement(np.array([-1.0]), np.array([0.1]), best=0.0)
        assert ei[0] > 0.9

    def test_uncertainty_adds_value(self):
        low = expected_improvement(np.array([0.5]), np.array([0.01]), best=0.0)
        high = expected_improvement(np.array([0.5]), np.array([2.0]), best=0.0)
        assert high[0] > low[0]


class TestBayesianOptimization:
    def test_minimises_quadratic(self, rng):
        result = bayesian_optimization(
            lambda x: float(((x - 0.3) ** 2).sum()),
            np.array([[-1.0, 1.0], [-1.0, 1.0]]), rng,
            BOConfig(init_points=6, iterations=25))
        assert result.cost < 0.05

    def test_history_monotone(self, rng):
        result = bayesian_optimization(
            lambda x: float(np.sin(3 * x[0]) + x[0] ** 2),
            np.array([[-2.0, 2.0]]), rng, BOConfig(init_points=4,
                                                   iterations=10))
        assert (np.diff(result.history) <= 1e-12).all()

    def test_beats_random_on_smooth_function(self, rng):
        bounds = np.array([[-3.0, 3.0]] * 2)
        func = lambda x: float((x ** 2).sum() + np.sin(5 * x[0]))
        bo = bayesian_optimization(func, bounds, np.random.default_rng(3),
                                   BOConfig(init_points=5, iterations=20))
        rand_rng = np.random.default_rng(3)
        rand_best = min(func(rand_rng.uniform(-3, 3, 2)) for _ in range(25))
        assert bo.cost <= rand_best
