"""Property-based (hypothesis) invariants of the cost model."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maestro import CostModel, Dataflow, analyze_tiling, spatial_analysis

_model = CostModel()

dims = st.integers(min_value=1, max_value=1677)
pes = st.sampled_from([8, 16, 64, 128, 333, 512])
l2s = st.sampled_from([16, 64, 512, 4096, 32768])
dataflows = st.sampled_from(list(Dataflow))


@settings(max_examples=60, deadline=None)
@given(m=dims, n=dims, k=dims, p=pes, l2=l2s, df=dataflows)
def test_latency_finite_positive(m, n, k, p, l2, df):
    out = _model.evaluate(m, n, k, df, p, l2)
    assert np.isfinite(out.latency_cycles)
    assert out.latency_cycles > 0


@settings(max_examples=60, deadline=None)
@given(m=dims, n=dims, k=dims, p=pes, l2=l2s, df=dataflows)
def test_utilization_in_unit_interval(m, n, k, p, l2, df):
    out = _model.evaluate(m, n, k, df, p, l2)
    assert 0 < out.utilization <= 1.0 + 1e-12


@settings(max_examples=60, deadline=None)
@given(m=dims, n=dims, k=dims, l2=l2s, df=dataflows)
def test_dram_traffic_at_least_compulsory(m, n, k, l2, df):
    t = analyze_tiling(df, m, n, k, l2 * 1024)
    assert t.dram_elems >= m * k + k * n + m * n - 1e-9


@settings(max_examples=60, deadline=None)
@given(m=dims, n=dims, k=dims, p=pes, df=dataflows)
def test_compute_cycles_at_least_ideal(m, n, k, p, df):
    """Cycles can never beat perfectly-utilised PEs on the spatial work."""
    s = spatial_analysis(df, m, n, k, p)
    ideal = s.work * s.stream / p
    assert s.compute_cycles >= ideal - 1e-9


@settings(max_examples=40, deadline=None)
@given(m=dims, n=dims, k=dims, df=dataflows)
def test_latency_monotone_nonincreasing_in_dram_bandwidth(m, n, k, df):
    from repro.maestro import Technology
    slow = CostModel(Technology(dram_bandwidth=2.0)).evaluate(m, n, k, df, 64, 256)
    fast = CostModel(Technology(dram_bandwidth=32.0)).evaluate(m, n, k, df, 64, 256)
    assert fast.latency_cycles <= slow.latency_cycles + 1e-9


@settings(max_examples=40, deadline=None)
@given(m=dims, n=dims, k=dims, p=pes, l2=l2s)
def test_dataflow_symmetry_under_dimension_swap(m, n, k, p, l2):
    """WS on (M,N,K) streams M; OS streams K: swapping the streamed dims
    maps one dataflow's compute analysis onto the other's."""
    ws = spatial_analysis("ws", m, n, k, p)     # spatial (K,N), stream M
    os_ = spatial_analysis("os", k, n, m, p)    # spatial (K,N), stream M
    assert float(ws.compute_cycles) == float(os_.compute_cycles)
