"""Cost model: roofline structure, landscape properties, vectorised APIs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.maestro import (AcceleratorConfig, CostModel, Dataflow,
                           GemmWorkload, Technology)


@pytest.fixture(scope="module")
def cost_model():
    return CostModel()


class TestBasicProperties:
    def test_latency_positive(self, cost_model, rng):
        m = rng.integers(1, 300, 50)
        n = rng.integers(1, 300, 50)
        k = rng.integers(1, 300, 50)
        for df in Dataflow:
            out = cost_model.evaluate(m, n, k, df, 64, 256)
            assert (out.latency_cycles > 0).all()
            assert (out.energy_pj > 0).all()

    def test_latency_at_least_roofline_terms(self, cost_model):
        out = cost_model.evaluate(64, 128, 96, "os", 64, 256)
        lat = float(out.latency_cycles)
        assert lat >= float(out.compute_cycles)
        assert lat >= float(out.noc_cycles)
        assert lat >= float(out.dram_cycles)

    def test_bigger_workload_costs_more(self, cost_model):
        small = cost_model.latency(GemmWorkload(16, 16, 16), "os",
                                   AcceleratorConfig(64, 256))
        large = cost_model.latency(GemmWorkload(256, 256, 256), "os",
                                   AcceleratorConfig(64, 256))
        assert large > small

    def test_energy_grows_with_macs(self, cost_model):
        small = cost_model.energy(GemmWorkload(16, 16, 16), "ws",
                                  AcceleratorConfig(64, 256))
        large = cost_model.energy(GemmWorkload(128, 128, 128), "ws",
                                  AcceleratorConfig(64, 256))
        assert large > small

    def test_utilization_bounded(self, cost_model, rng):
        m = rng.integers(1, 300, 30)
        out = cost_model.evaluate(m, 64, 64, "os", 128, 256)
        assert (out.utilization <= 1.0 + 1e-12).all()

    def test_edp_is_product(self, cost_model):
        out = cost_model.evaluate(64, 64, 64, "rs", 64, 256)
        np.testing.assert_allclose(out.edp,
                                   out.energy_pj * out.latency_cycles)


class TestLandscapeStructure:
    """The properties that make this DSE problem non-trivial."""

    def test_interior_pe_optimum_for_small_layers(self, cost_model, problem):
        """A tiny layer must not want the maximum PE count."""
        space = problem.space
        out = cost_model.evaluate_grid(np.array([4]), np.array([8]),
                                       np.array([16]), "os",
                                       space.pe_choices, space.l2_choices)
        lat = out.latency_cycles[0]
        best_pe = np.unravel_index(np.argmin(lat), lat.shape)[0]
        assert best_pe < space.n_pe - 1

    def test_large_layers_want_more_pes(self, cost_model, problem):
        space = problem.space
        out = cost_model.evaluate_grid(
            np.array([4, 256]), np.array([8, 1024]), np.array([16, 1024]),
            "os", space.pe_choices, space.l2_choices)
        best = [np.unravel_index(np.argmin(out.latency_cycles[i]),
                                 out.latency_cycles[i].shape)[0]
                for i in range(2)]
        assert best[1] > best[0]

    def test_oversized_buffer_hurts(self, cost_model):
        """Beyond the working set, larger L2 strictly increases latency
        (log-growing access latency) — the interior buffer optimum."""
        lat_small = cost_model.latency(GemmWorkload(32, 32, 32), "os",
                                       AcceleratorConfig(64, 64))
        lat_huge = cost_model.latency(GemmWorkload(32, 32, 32), "os",
                                      AcceleratorConfig(64, 32768))
        assert lat_huge > lat_small

    def test_undersized_buffer_hurts(self, cost_model):
        """Below the working set, small L2 increases DRAM traffic/latency."""
        lat_tiny = cost_model.latency(GemmWorkload(256, 1024, 1024), "os",
                                      AcceleratorConfig(256, 16))
        lat_fit = cost_model.latency(GemmWorkload(256, 1024, 1024), "os",
                                     AcceleratorConfig(256, 2048))
        assert lat_tiny > lat_fit

    def test_dataflow_choice_matters(self, cost_model):
        """Different shapes favour different dataflows (Fig. 1 motivation)."""
        config = AcceleratorConfig(128, 512)
        winners = set()
        for m, n, k in [(256, 8, 8), (8, 8, 1024), (8, 1024, 8)]:
            w = GemmWorkload(m, n, k)
            lats = {df: cost_model.latency(w, df, config) for df in Dataflow}
            winners.add(min(lats, key=lats.get))
        assert len(winners) >= 2

    def test_nonconvex_along_pe_axis(self, cost_model, problem):
        """Strict interior local minima along the PE axis exist for layers
        whose spatial work sits near stationary-step boundaries."""
        space = problem.space
        out = cost_model.evaluate_grid(np.array([100]), np.array([333]),
                                       np.array([77]), "os",
                                       space.pe_choices, space.l2_choices)
        lat = out.latency_cycles[0][:, 6]
        minima = sum(1 for j in range(1, len(lat) - 1)
                     if lat[j] < lat[j - 1] and lat[j] < lat[j + 1])
        assert minima >= 2

    def test_nonconvex_across_dataset_grids(self, cost_model, problem, rng):
        """On average over random layers, the (PE x L2) grid has several
        strict local minima (the Fig. 3a non-convexity claim)."""
        from repro.analysis import grid_landscape_stats
        space = problem.space
        m = rng.integers(1, 257, 32)
        n = rng.integers(1, 1678, 32)
        k = rng.integers(1, 1186, 32)
        out = cost_model.evaluate_grid(m, n, k, "ws",
                                       space.pe_choices, space.l2_choices)
        counts = [grid_landscape_stats(g).num_local_minima
                  for g in out.latency_cycles]
        assert np.mean(counts) >= 1.5


class TestVectorisedAPIs:
    def test_grid_shape(self, cost_model, problem):
        space = problem.space
        out = cost_model.evaluate_grid(np.arange(1, 6), np.arange(1, 6) * 7,
                                       np.arange(1, 6) * 3, "ws",
                                       space.pe_choices, space.l2_choices)
        assert out.latency_cycles.shape == (5, space.n_pe, space.n_l2)

    def test_grid_matches_scalar(self, cost_model, problem):
        space = problem.space
        out = cost_model.evaluate_grid(np.array([33]), np.array([77]),
                                       np.array([55]), "rs",
                                       space.pe_choices, space.l2_choices)
        scalar = cost_model.latency(
            GemmWorkload(33, 77, 55), "rs",
            AcceleratorConfig(int(space.pe_choices[10]),
                              int(space.l2_choices[3])))
        assert float(out.latency_cycles[0, 10, 3]) == pytest.approx(scalar)

    def test_evaluate_mixed_selects_per_sample(self, cost_model):
        m = np.array([64, 64])
        n = np.array([128, 128])
        k = np.array([96, 96])
        df = np.array([0, 1])
        mixed = cost_model.evaluate_mixed(m, n, k, df, 64, 256)
        ws = cost_model.evaluate(64, 128, 96, 0, 64, 256)
        os_ = cost_model.evaluate(64, 128, 96, 1, 64, 256)
        assert float(mixed.latency_cycles[0]) == pytest.approx(
            float(ws.latency_cycles))
        assert float(mixed.latency_cycles[1]) == pytest.approx(
            float(os_.latency_cycles))

    def test_bound_by_classification(self, cost_model):
        out = cost_model.evaluate(256, 1024, 512, "os", 8, 32768)
        assert int(out.bound_by()) in (0, 1, 2)


class TestTechnologyAndConfig:
    def test_l2_latency_grows_with_size(self):
        tech = Technology()
        assert tech.l2_access_latency(1024) > tech.l2_access_latency(16)

    def test_l2_energy_grows_with_size(self):
        tech = Technology()
        assert tech.l2_access_energy(1024) > tech.l2_access_energy(16)

    def test_area_additive(self):
        config = AcceleratorConfig(100, 64)
        tech = config.technology
        assert config.area == pytest.approx(100 * tech.area_per_pe
                                            + 64 * tech.area_per_l2_kb)

    def test_with_resources(self):
        config = AcceleratorConfig(64, 256)
        other = config.with_resources(num_pes=128)
        assert other.num_pes == 128 and other.l2_kb == 256

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(0, 256)
        with pytest.raises(ValueError):
            AcceleratorConfig(64, 0)

    def test_faster_dram_helps_bandwidth_bound_layer(self):
        slow = CostModel(Technology(dram_bandwidth=1.0))
        fast = CostModel(Technology(dram_bandwidth=64.0))
        w = GemmWorkload(16, 1600, 1100)  # low reuse, bandwidth-bound
        config = AcceleratorConfig(512, 64)
        assert fast.latency(w, "os", config) < slow.latency(w, "os", config)
