"""Dataflow spatial analysis: mapping identities and invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.maestro import Dataflow, array_dims, spatial_analysis


class TestDataflowEnum:
    def test_from_any_accepts_all_spellings(self):
        assert Dataflow.from_any("ws") is Dataflow.WEIGHT_STATIONARY
        assert Dataflow.from_any("OS") is Dataflow.OUTPUT_STATIONARY
        assert Dataflow.from_any(2) is Dataflow.ROW_STATIONARY
        assert Dataflow.from_any(Dataflow.WEIGHT_STATIONARY) is \
            Dataflow.WEIGHT_STATIONARY
        assert Dataflow.from_any("row_stationary") is Dataflow.ROW_STATIONARY

    def test_from_any_rejects_unknown(self):
        with pytest.raises(ValueError):
            Dataflow.from_any("zigzag")

    def test_three_dataflows(self):
        assert len(list(Dataflow)) == 3


class TestArrayDims:
    def test_square(self):
        assert array_dims(64) == (8, 8)

    def test_near_square(self):
        assert array_dims(32) == (4, 8)

    def test_prime(self):
        assert array_dims(7) == (1, 7)

    def test_product_invariant(self):
        for p in [8, 24, 100, 328, 512]:
            a, b = array_dims(p)
            assert a * b == p and a <= b

    def test_invalid(self):
        with pytest.raises(ValueError):
            array_dims(0)


class TestSpatialAnalysis:
    def test_streamed_dimension_per_dataflow(self):
        """WS streams M, OS streams K, RS streams N (Table-I semantics)."""
        m, n, k = 10, 20, 30
        assert int(spatial_analysis("ws", m, n, k, 64).stream) == m
        assert int(spatial_analysis("os", m, n, k, 64).stream) == k
        assert int(spatial_analysis("rs", m, n, k, 64).stream) == n

    def test_steps_cover_all_work(self):
        s = spatial_analysis("os", 100, 100, 8, 64)
        assert int(s.steps) == int(np.ceil(100 * 100 / 64))

    def test_full_utilization_when_divisible(self):
        s = spatial_analysis("os", 8, 8, 4, 64)
        assert float(s.utilization) == pytest.approx(1.0)

    def test_under_utilization_for_small_work(self):
        s = spatial_analysis("os", 2, 2, 100, 512)
        assert float(s.utilization) == pytest.approx(4 / 512)

    def test_utilization_bounded(self, rng):
        m = rng.integers(1, 300, 50)
        n = rng.integers(1, 300, 50)
        k = rng.integers(1, 300, 50)
        for df in Dataflow:
            s = spatial_analysis(df, m, n, k, 128)
            assert (s.utilization <= 1.0 + 1e-12).all()
            assert (s.utilization > 0).all()

    def test_fill_grows_with_pes(self):
        small = spatial_analysis("os", 64, 64, 64, 16)
        large = spatial_analysis("os", 64, 64, 64, 512)
        assert int(large.fill) > int(small.fill)

    def test_compute_cycles_decrease_with_pes_for_large_work(self):
        small = spatial_analysis("os", 512, 512, 64, 32)
        large = spatial_analysis("os", 512, 512, 64, 512)
        assert float(large.compute_cycles) < float(small.compute_cycles)

    def test_broadcasting_over_pe_grid(self):
        pes = np.array([8, 64, 512])
        s = spatial_analysis("ws", 64, 64, 64, pes)
        assert s.compute_cycles.shape == (3,)

    def test_compute_cycles_positive(self):
        s = spatial_analysis("rs", 1, 1, 1, 8)
        assert float(s.compute_cycles) > 0
