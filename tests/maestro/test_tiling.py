"""Tiling analysis: DRAM traffic bounds and monotonicity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.maestro import Dataflow, analyze_tiling


def _compulsory(m, n, k):
    """Lower bound: each operand element must cross DRAM at least once."""
    return m * k + k * n + m * n


class TestTrafficBounds:
    @pytest.mark.parametrize("df", list(Dataflow))
    def test_traffic_at_least_compulsory(self, df, rng):
        m = rng.integers(1, 500, 30)
        n = rng.integers(1, 500, 30)
        k = rng.integers(1, 500, 30)
        t = analyze_tiling(df, m, n, k, 64 * 1024)
        assert (t.dram_elems >= _compulsory(m, n, k) - 1e-9).all()

    @pytest.mark.parametrize("df", list(Dataflow))
    def test_huge_buffer_gives_compulsory_traffic(self, df):
        m, n, k = 64, 128, 96
        t = analyze_tiling(df, m, n, k, 10 ** 9)
        assert float(t.dram_elems) == pytest.approx(_compulsory(m, n, k))

    @pytest.mark.parametrize("df", list(Dataflow))
    def test_traffic_non_increasing_in_buffer(self, df):
        m, n, k = 200, 300, 250
        capacities = np.array([2 ** i for i in range(10, 24)])
        traffic = np.array([float(analyze_tiling(df, m, n, k, c).dram_elems)
                            for c in capacities])
        assert (np.diff(traffic) <= 1e-9).all()

    def test_stationary_operand_loaded_once(self):
        m, n, k = 64, 128, 96
        cap = 16 * 1024
        assert float(analyze_tiling("ws", m, n, k, cap).traffic_b) == k * n
        assert float(analyze_tiling("os", m, n, k, cap).traffic_c) == m * n
        assert float(analyze_tiling("rs", m, n, k, cap).traffic_a) == m * k


class TestSwitches:
    @pytest.mark.parametrize("df", list(Dataflow))
    def test_switches_at_least_one(self, df, rng):
        m = rng.integers(1, 300, 20)
        n = rng.integers(1, 300, 20)
        k = rng.integers(1, 300, 20)
        t = analyze_tiling(df, m, n, k, 4096)
        assert (t.switches >= 1).all()

    @pytest.mark.parametrize("df", list(Dataflow))
    def test_small_buffer_means_more_switches(self, df):
        m, n, k = 256, 256, 256
        few = float(analyze_tiling(df, m, n, k, 10 ** 8).switches)
        many = float(analyze_tiling(df, m, n, k, 2 ** 10).switches)
        assert many > few


class TestBroadcasting:
    def test_grid_broadcast_shapes(self):
        m = np.array([10, 20]).reshape(2, 1)
        cap = np.array([1024, 4096, 16384]).reshape(1, 3)
        t = analyze_tiling("os", m, 30, 40, cap)
        assert t.dram_elems.shape == (2, 3)

    def test_capacity_floor(self):
        # Degenerate capacities are clamped; no division errors.
        t = analyze_tiling("ws", 100, 100, 100, 1)
        assert np.isfinite(t.dram_elems).all()
