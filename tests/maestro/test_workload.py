"""GemmWorkload arithmetic and validation."""

from __future__ import annotations

import pytest

from repro.maestro import GemmWorkload


class TestGemmWorkload:
    def test_macs_and_flops(self):
        w = GemmWorkload(4, 5, 6)
        assert w.macs == 120
        assert w.flops == 240

    def test_operand_bytes(self):
        w = GemmWorkload(2, 3, 4)
        a, b, c = w.operand_bytes(element_bytes=2)
        assert (a, b, c) == (2 * 4 * 2, 4 * 3 * 2, 2 * 3 * 2)

    def test_total_bytes(self):
        w = GemmWorkload(2, 3, 4)
        assert w.total_bytes() == 8 + 12 + 6

    def test_arithmetic_intensity(self):
        w = GemmWorkload(10, 10, 10)
        assert w.arithmetic_intensity() == pytest.approx(1000 / 300)

    def test_intensity_grows_with_size(self):
        small = GemmWorkload(8, 8, 8).arithmetic_intensity()
        large = GemmWorkload(512, 512, 512).arithmetic_intensity()
        assert large > small

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            GemmWorkload(0, 1, 1)
        with pytest.raises(ValueError):
            GemmWorkload(1, -2, 1)

    def test_frozen(self):
        w = GemmWorkload(1, 2, 3)
        with pytest.raises(Exception):
            w.m = 5

    def test_str_contains_dims(self):
        assert "M=2" in str(GemmWorkload(2, 3, 4, "conv1"))
        assert "conv1" in str(GemmWorkload(2, 3, 4, "conv1"))
