"""Space Increasing Discretization: boundary maths and coordinate maps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uov import SpaceIncreasingDiscretization


class TestBoundaries:
    def test_boundary_count(self):
        sid = SpaceIncreasingDiscretization(64, 16)
        assert len(sid.boundaries) == 17
        assert sid.boundaries[0] == 0.0
        assert sid.boundaries[-1] == pytest.approx(64.0)

    def test_widths_increase(self):
        sid = SpaceIncreasingDiscretization(64, 16)
        assert (np.diff(sid.widths) > 0).all()

    def test_width_proportional_to_index_plus_one(self):
        sid = SpaceIncreasingDiscretization(100, 10)
        ratios = sid.widths / (np.arange(10) + 1)
        np.testing.assert_allclose(ratios, ratios[0])

    def test_single_bucket(self):
        sid = SpaceIncreasingDiscretization(64, 1)
        assert sid.widths[0] == pytest.approx(64.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceIncreasingDiscretization(0, 4)
        with pytest.raises(ValueError):
            SpaceIncreasingDiscretization(10, 0)


class TestBucketAssignment:
    def test_zero_in_first_bucket(self):
        sid = SpaceIncreasingDiscretization(64, 16)
        assert int(sid.bucket_of(0.0)) == 0

    def test_max_in_last_bucket(self):
        sid = SpaceIncreasingDiscretization(64, 16)
        assert int(sid.bucket_of(63.999)) == 15

    def test_buckets_monotone(self):
        sid = SpaceIncreasingDiscretization(64, 16)
        values = np.linspace(0, 63.99, 200)
        buckets = sid.bucket_of(values)
        assert (np.diff(buckets) >= 0).all()

    def test_out_of_range_clipped(self):
        sid = SpaceIncreasingDiscretization(64, 16)
        assert int(sid.bucket_of(-5.0)) == 0
        assert int(sid.bucket_of(1000.0)) == 15

    def test_all_buckets_reachable(self):
        sid = SpaceIncreasingDiscretization(64, 16)
        buckets = sid.bucket_of(np.linspace(0, 63.99, 5000))
        assert set(np.unique(buckets)) == set(range(16))


class TestCoordinateMap:
    @settings(max_examples=80, deadline=None)
    @given(value=st.floats(min_value=0.0, max_value=63.999),
           k=st.sampled_from([1, 4, 8, 16, 32]))
    def test_roundtrip(self, value, k):
        sid = SpaceIncreasingDiscretization(64, k)
        back = float(sid.from_coordinate(sid.to_coordinate(value)))
        assert back == pytest.approx(value, abs=1e-9)

    def test_coordinate_in_range(self):
        sid = SpaceIncreasingDiscretization(64, 16)
        u = sid.to_coordinate(np.linspace(0, 63.99, 500))
        assert (u >= 0).all() and (u < 16).all()

    def test_coordinate_monotone(self):
        sid = SpaceIncreasingDiscretization(12, 16)
        values = np.linspace(0, 11.99, 300)
        u = sid.to_coordinate(values)
        assert (np.diff(u) >= 0).all()

    def test_integer_part_is_bucket(self):
        sid = SpaceIncreasingDiscretization(64, 16)
        values = np.linspace(0, 63.9, 100)
        u = sid.to_coordinate(values)
        np.testing.assert_array_equal(u.astype(int), sid.bucket_of(values))
