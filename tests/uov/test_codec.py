"""UOV codec: Algorithm-1 structure, exact round-trips, noise robustness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uov import ORDINAL_THRESHOLD, UOVCodec


class TestAlgorithmOneStructure:
    """The three structural properties stated in §III-D."""

    def test_values_in_unit_interval(self):
        codec = UOVCodec(64, 16)
        uov = codec.encode(np.arange(64))
        assert (uov >= 0).all() and (uov < 1).all()

    def test_zero_after_containing_bucket(self):
        codec = UOVCodec(64, 16)
        for value in [0, 17, 40, 63]:
            uov = codec.encode(value)
            n = int(codec.bucket_labels(value))
            assert (uov[n + 1:] == 0).all()

    def test_nonzero_monotone_prefix(self):
        """Components before the containing bucket are non-zero and grow
        toward earlier indices (farther below D)."""
        codec = UOVCodec(64, 16)
        uov = codec.encode(55)
        n = int(codec.bucket_labels(55))
        prefix = uov[:n]
        assert (prefix > 0).all()
        assert (np.diff(prefix) < 0).all()  # decreasing with index

    def test_exponential_form(self):
        """O_i = 1 - exp(-(u - i)) at the bucket coordinate."""
        codec = UOVCodec(64, 16)
        value = 30
        u = float(codec.sid.to_coordinate(value))
        uov = codec.encode(value)
        for i in range(16):
            expected = 1 - np.exp(-(u - i)) if u >= i else 0.0
            assert uov[i] == pytest.approx(expected, abs=1e-12)

    def test_threshold_is_one_minus_inv_e(self):
        assert ORDINAL_THRESHOLD == pytest.approx(1 - np.exp(-1))


class TestRoundTrips:
    @pytest.mark.parametrize("num_values,k", [(64, 16), (12, 16), (64, 4),
                                              (64, 32), (12, 32), (64, 1),
                                              (12, 1), (5, 3)])
    def test_every_choice_roundtrips(self, num_values, k):
        codec = UOVCodec(num_values, k)
        values = np.arange(num_values)
        back = codec.decode_to_choice(codec.encode(values))
        np.testing.assert_array_equal(back, values)

    @settings(max_examples=100, deadline=None)
    @given(value=st.floats(min_value=0.0, max_value=63.99),
           k=st.sampled_from([4, 8, 16, 32]))
    def test_fractional_roundtrip(self, value, k):
        codec = UOVCodec(64, k)
        back = float(codec.decode(codec.encode(value)))
        assert back == pytest.approx(value, abs=1e-6)

    def test_batch_shapes(self):
        codec = UOVCodec(64, 16)
        uov = codec.encode(np.arange(10).reshape(2, 5))
        assert uov.shape == (2, 5, 16)
        back = codec.decode(uov)
        assert back.shape == (2, 5)

    def test_scalar_shapes(self):
        codec = UOVCodec(64, 16)
        uov = codec.encode(7)
        assert uov.shape == (16,)
        assert float(codec.decode(uov)) == pytest.approx(7.0)


class TestRobustness:
    def test_noise_tolerance(self, rng):
        """Small perturbations of the UOV must mostly decode to the same
        choice (the property that makes UOV heads trainable)."""
        codec = UOVCodec(64, 16)
        values = np.arange(64)
        uov = codec.encode(values)
        noisy = np.clip(uov + rng.normal(0, 0.03, uov.shape), 0, 0.999)
        back = codec.decode_to_choice(noisy)
        assert (np.abs(back - values) <= 2).mean() > 0.9

    def test_decode_handles_all_zero(self):
        codec = UOVCodec(64, 16)
        assert int(codec.decode_to_choice(np.zeros(16))) == 0

    def test_decode_handles_all_one(self):
        codec = UOVCodec(64, 16)
        choice = int(codec.decode_to_choice(np.full(16, 0.999)))
        assert choice == 63

    def test_decode_clips_out_of_range(self):
        codec = UOVCodec(64, 16)
        wild = np.array([2.0, -1.0] * 8)
        value = float(codec.decode(wild))
        assert 0 <= value < 64

    def test_bucket_labels_match_sid(self):
        codec = UOVCodec(64, 16)
        values = np.arange(64)
        np.testing.assert_array_equal(codec.bucket_labels(values),
                                      codec.sid.bucket_of(values))

    def test_k1_reverts_to_regression(self):
        """K = 1: the single component is a pure regression channel."""
        codec = UOVCodec(64, 1)
        uov = codec.encode(np.arange(64))
        assert uov.shape == (64, 1)
        assert (np.diff(uov[:, 0]) > 0).all()  # strictly increasing in value

    def test_large_k_approaches_classification(self):
        """K = 64 over 64 values: each value gets its own bucket ->
        the ordinal prefix alone identifies the choice."""
        codec = UOVCodec(64, 64)
        values = np.arange(64)
        buckets = codec.bucket_labels(values)
        assert len(np.unique(buckets)) > 32

    def test_validation(self):
        with pytest.raises(ValueError):
            UOVCodec(0, 16)
