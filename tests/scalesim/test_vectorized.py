"""Vectorised systolic substrate: array inputs must match the scalar path.

Covers all three mappings (OS/WS/IS), the mixed per-workload mapping
path, the batched mapping search, and edge folds (dims smaller than the
array).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scalesim import SystolicArray, SystolicMapping

FIELDS = ("cycles", "folds", "utilization", "sram_reads", "sram_writes")


def _assert_results_equal(batched, scalars, index=None):
    """Batched result row(s) must equal independently-computed scalars."""
    for field in FIELDS:
        got = getattr(batched, field)
        got = got if index is None else got[index]
        want = getattr(scalars, field)
        np.testing.assert_array_equal(np.asarray(got), np.asarray(want),
                                      err_msg=field)


class TestArrayVsScalarPath:
    @pytest.mark.parametrize("mapping", list(SystolicMapping))
    def test_batch_matches_per_scalar_loop(self, rng, mapping):
        arr = SystolicArray(16, 16)
        m = rng.integers(1, 300, 40)
        n = rng.integers(1, 300, 40)
        k = rng.integers(1, 300, 40)
        batched = arr.run_gemm(m, n, k, mapping)
        for i in range(40):
            scalar = arr.run_gemm(int(m[i]), int(n[i]), int(k[i]), mapping)
            _assert_results_equal(batched, scalar, index=i)

    @pytest.mark.parametrize("mapping", list(SystolicMapping))
    def test_edge_fold_dims_smaller_than_array(self, mapping):
        """A workload smaller than the array is one fold, scalar == array."""
        arr = SystolicArray(32, 32)
        dims = [(1, 1, 1), (3, 5, 7), (31, 31, 31), (32, 32, 32),
                (1, 200, 1), (200, 1, 1), (1, 1, 200)]
        m, n, k = (np.array(d) for d in zip(*dims))
        batched = arr.run_gemm(m, n, k, mapping)
        for i, (mi, ni, ki) in enumerate(dims):
            scalar = arr.run_gemm(mi, ni, ki, mapping)
            _assert_results_equal(batched, scalar, index=i)
        # dims strictly inside the array -> exactly one fold
        inside = (m <= 32) & (n <= 32) & (k <= 32)
        assert (batched.folds[inside] == 1).all()

    def test_scalar_formulas_unchanged(self):
        """The vectorised core preserves the Scale-Sim fold equations."""
        arr = SystolicArray(8, 8)
        os = arr.run_gemm(8, 8, 32, SystolicMapping.OUTPUT_STATIONARY)
        assert float(os.cycles) == 2 * 8 + 8 + 32 - 2
        ws = arr.run_gemm(32, 8, 8, SystolicMapping.WEIGHT_STATIONARY)
        assert float(ws.cycles) == 8 + 8 + 32 - 1
        iss = arr.run_gemm(8, 32, 8, SystolicMapping.INPUT_STATIONARY)
        assert float(iss.cycles) == 8 + 8 + 32 - 1


class TestMixedMappingPath:
    def test_mixed_matches_per_mapping_runs(self, rng):
        arr = SystolicArray(8, 16)
        m = rng.integers(1, 500, 60)
        n = rng.integers(1, 500, 60)
        k = rng.integers(1, 500, 60)
        mappings = rng.integers(0, 3, 60)
        mixed = arr.run_gemm_mixed(m, n, k, mappings)
        for mapping in SystolicMapping:
            mask = mappings == int(mapping)
            pure = arr.run_gemm(m[mask], n[mask], k[mask], mapping)
            _assert_results_equal(mixed, pure, index=mask)

    def test_mixed_broadcasts_scalar_dims(self):
        arr = SystolicArray(8, 8)
        mixed = arr.run_gemm_mixed(64, 64, 64, np.array([0, 1, 2]))
        assert mixed.cycles.shape == (3,)
        for i, mapping in enumerate(SystolicMapping):
            scalar = arr.run_gemm(64, 64, 64, mapping)
            _assert_results_equal(mixed, scalar, index=i)

    def test_invalid_mapping_values_rejected(self):
        arr = SystolicArray(8, 8)
        with pytest.raises(ValueError):
            arr.run_gemm_mixed(8, 8, 8, np.array([0, 3]))


class TestBatchedMappingSearch:
    def test_matches_scalar_best_mapping(self, rng):
        arr = SystolicArray(16, 16)
        m = rng.integers(1, 400, 25)
        n = rng.integers(1, 400, 25)
        k = rng.integers(1, 400, 25)
        mappings, cycles = arr.best_mapping_batch(m, n, k)
        for i in range(25):
            best_map, best_cycles = arr.best_mapping(int(m[i]), int(n[i]),
                                                     int(k[i]))
            assert mappings[i] == int(best_map)
            assert cycles[i] == best_cycles

    def test_batch_cycles_are_minimal(self, rng):
        arr = SystolicArray(8, 8)
        m = rng.integers(1, 200, 30)
        n = rng.integers(1, 200, 30)
        k = rng.integers(1, 200, 30)
        _, cycles = arr.best_mapping_batch(m, n, k)
        for mapping in SystolicMapping:
            assert (cycles <= arr.run_gemm(m, n, k, mapping).cycles).all()
