"""Scale-Sim analytical systolic model: runtime equations and invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scalesim import SystolicArray, SystolicMapping


class TestRuntimeEquations:
    def test_os_single_fold_formula(self):
        """OS fold runtime is 2*rows + cols + K - 2 (Scale-Sim equation)."""
        arr = SystolicArray(8, 8)
        out = arr.run_gemm(8, 8, 32, SystolicMapping.OUTPUT_STATIONARY)
        assert float(out.cycles) == 2 * 8 + 8 + 32 - 2
        assert float(out.folds) == 1

    def test_ws_single_fold_formula(self):
        arr = SystolicArray(8, 8)
        out = arr.run_gemm(32, 8, 8, SystolicMapping.WEIGHT_STATIONARY)
        assert float(out.cycles) == 8 + 8 + 32 - 1

    def test_is_single_fold_formula(self):
        arr = SystolicArray(8, 8)
        out = arr.run_gemm(8, 32, 8, SystolicMapping.INPUT_STATIONARY)
        assert float(out.cycles) == 8 + 8 + 32 - 1

    def test_fold_count(self):
        arr = SystolicArray(8, 8)
        out = arr.run_gemm(20, 20, 4, SystolicMapping.OUTPUT_STATIONARY)
        assert float(out.folds) == np.ceil(20 / 8) ** 2

    def test_cycles_scale_with_folds(self):
        arr = SystolicArray(8, 8)
        one = arr.run_gemm(8, 8, 16, SystolicMapping.OUTPUT_STATIONARY)
        four = arr.run_gemm(16, 16, 16, SystolicMapping.OUTPUT_STATIONARY)
        assert float(four.cycles) == 4 * float(one.cycles)


class TestInvariants:
    def test_utilization_bounded(self, rng):
        arr = SystolicArray(16, 16)
        m = rng.integers(1, 200, 30)
        n = rng.integers(1, 200, 30)
        k = rng.integers(1, 200, 30)
        for mapping in SystolicMapping:
            out = arr.run_gemm(m, n, k, mapping)
            assert (out.utilization <= 1.0 + 1e-12).all()
            assert (out.utilization > 0).all()

    def test_small_layer_prefers_small_array(self):
        """Same qualitative behaviour as the MAESTRO-style model: fill
        overhead makes big arrays slower for tiny layers."""
        small = SystolicArray(4, 4)
        big = SystolicArray(64, 64)
        mapping = SystolicMapping.OUTPUT_STATIONARY
        tiny = (4, 4, 8)
        assert float(small.run_gemm(*tiny, mapping).cycles) < \
            float(big.run_gemm(*tiny, mapping).cycles)

    def test_large_layer_prefers_big_array(self):
        small = SystolicArray(4, 4)
        big = SystolicArray(64, 64)
        mapping = SystolicMapping.OUTPUT_STATIONARY
        large = (512, 512, 256)
        assert float(big.run_gemm(*large, mapping).cycles) < \
            float(small.run_gemm(*large, mapping).cycles)

    def test_sram_reads_at_least_operands(self, rng):
        arr = SystolicArray(8, 8)
        for mapping in SystolicMapping:
            out = arr.run_gemm(64, 64, 64, mapping)
            assert float(out.sram_reads) >= 64 * 64 * 2

    def test_best_mapping_returns_minimum(self):
        arr = SystolicArray(8, 8)
        mapping, cycles = arr.best_mapping(100, 10, 10)
        for other in SystolicMapping:
            assert cycles <= float(arr.run_gemm(100, 10, 10, other).cycles)

    def test_mapping_preference_depends_on_shape(self):
        """Long-K workloads prefer a K-spatial mapping; long-M prefer OS —
        the dataflow/shape interaction v1's DSE tasks exercise."""
        arr = SystolicArray(16, 16)
        best_long_k, _ = arr.best_mapping(8, 8, 2000)
        best_long_m_n = arr.best_mapping(200, 200, 8)[0]
        assert best_long_k != best_long_m_n

    def test_invalid_array(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 8)

    def test_num_pes(self):
        assert SystolicArray(8, 16).num_pes == 128

    def test_broadcasting(self):
        arr = SystolicArray(8, 8)
        out = arr.run_gemm(np.array([8, 16, 32]), 8, 8,
                           SystolicMapping.OUTPUT_STATIONARY)
        assert out.cycles.shape == (3,)
        assert (np.diff(out.cycles) > 0).all()
