"""Shared fixtures: deterministic RNGs, the Table-I problem, small datasets,
and an isolated on-disk experiment cache (so tests never touch a user's
.repro_cache)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.dse import DSEProblem, ExhaustiveOracle, generate_random_dataset
from repro.experiments import Workspace


@pytest.fixture(autouse=True)
def _restore_execution_switches():
    """Guarantee fused/graph toggles never leak across tests.

    The switches are exception-safe context managers already; this
    backstop also covers tests that flip them mid-assert and fail, or
    call the module-level setters directly.
    """
    fused = nn.fused._FUSED.snapshot()
    graph = nn.graph.engine._CAPTURE.snapshot()
    yield
    nn.fused._FUSED.restore(fused)
    nn.graph.engine._CAPTURE.restore(graph)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def problem() -> DSEProblem:
    return DSEProblem()


@pytest.fixture(scope="session")
def oracle(problem) -> ExhaustiveOracle:
    return ExhaustiveOracle(problem)


@pytest.fixture(scope="session")
def small_dataset(problem):
    """A 600-sample labelled dataset shared across the session."""
    return generate_random_dataset(problem, 600, np.random.default_rng(999))


@pytest.fixture(scope="session")
def session_workspace(tmp_path_factory) -> Workspace:
    """Session-wide isolated cache so experiment runners share training."""
    return Workspace(tmp_path_factory.mktemp("repro_cache"))


def finite_difference_gradient(func, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = func(x)
        flat[i] = orig - eps
        lo = func(x)
        flat[i] = orig
        out[i] = (hi - lo) / (2 * eps)
    return grad
