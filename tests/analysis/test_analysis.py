"""Analysis utilities: PCA, landscape, long-tail, embedding metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (PCA, EmbeddingStats, alignment,
                            embedding_stats, gini, grid_landscape_stats,
                            input_sensitivity, label_histogram,
                            longtail_stats, uniformity)


class TestPCA:
    def test_identifies_dominant_axis(self, rng):
        x = np.zeros((200, 3))
        x[:, 0] = rng.normal(0, 10, 200)
        x[:, 1] = rng.normal(0, 0.1, 200)
        pca = PCA(2).fit(x)
        assert abs(pca.components_[0, 0]) > 0.99

    def test_explained_variance_sums_below_one(self, rng):
        x = rng.normal(size=(100, 5))
        pca = PCA(2).fit(x)
        assert 0 < pca.explained_variance_ratio_.sum() <= 1.0

    def test_transform_centres_data(self, rng):
        x = rng.normal(loc=100.0, size=(50, 4))
        coords = PCA(2).fit_transform(x)
        np.testing.assert_allclose(coords.mean(axis=0), 0.0, atol=1e-9)

    def test_reconstruction_identity_for_full_rank(self, rng):
        x = rng.normal(size=(30, 3))
        pca = PCA(3).fit(x)
        coords = pca.transform(x)
        recon = coords @ pca.components_ + pca.mean_
        np.testing.assert_allclose(recon, x, atol=1e-9)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PCA(0)
        with pytest.raises(ValueError):
            PCA(5).fit(rng.normal(size=(3, 2)))
        with pytest.raises(RuntimeError):
            PCA(2).transform(rng.normal(size=(3, 4)))


class TestLandscape:
    def test_convex_bowl_single_minimum(self):
        x, y = np.meshgrid(np.arange(20), np.arange(10), indexing="ij")
        grid = (x - 10) ** 2 + (y - 5) ** 2 + 1.0
        stats = grid_landscape_stats(grid)
        assert stats.num_local_minima == 1
        assert stats.convexity_gap == pytest.approx(0.0)

    def test_eggbox_many_minima(self):
        x, y = np.meshgrid(np.arange(20), np.arange(20), indexing="ij")
        grid = np.sin(x * 1.5) + np.cos(y * 1.5) + 3.0
        stats = grid_landscape_stats(grid)
        assert stats.num_local_minima > 4

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            grid_landscape_stats(np.arange(5.0))

    def test_input_sensitivity_zero_for_constant_labels(self, rng):
        inputs = rng.integers(1, 100, size=(100, 4))
        pe = np.full(100, 7)
        l2 = np.full(100, 3)
        assert input_sensitivity(inputs, pe, l2, rng=rng) == 0.0

    def test_input_sensitivity_positive_for_random_labels(self, rng):
        inputs = rng.integers(1, 100, size=(100, 4))
        pe = rng.integers(0, 64, 100)
        l2 = rng.integers(0, 12, 100)
        assert input_sensitivity(inputs, pe, l2, rng=rng) > 1.0


class TestLongTail:
    def test_histogram(self):
        counts = label_histogram(np.array([0, 0, 1, 5]), 8)
        np.testing.assert_array_equal(counts, [2, 1, 0, 0, 0, 1, 0, 0])

    def test_gini_uniform_is_zero(self):
        assert gini(np.full(10, 5)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_near_one(self):
        counts = np.zeros(100)
        counts[0] = 1000
        assert gini(counts) > 0.95

    def test_stats_on_long_tailed_labels(self, rng):
        # Zipf-ish labels.
        labels = rng.zipf(2.0, 2000) % 50
        stats = longtail_stats(labels, 50)
        assert stats.head_share_top5 > 0.5
        assert stats.coverage_80pct < 25
        assert stats.imbalance_ratio > 10

    def test_stats_on_uniform_labels(self, rng):
        labels = rng.integers(0, 50, 5000)
        stats = longtail_stats(labels, 50)
        assert stats.head_share_top5 < 0.2
        assert stats.gini < 0.2


class TestEmbeddingMetrics:
    def _clusters(self, rng, spread):
        centres = np.array([[5.0, 0], [-5.0, 0], [0, 5.0]])
        z = np.concatenate([c + rng.normal(0, spread, (30, 2))
                            for c in centres])
        labels = np.repeat([0, 1, 2], 30)
        return z, labels

    def test_alignment_lower_for_tight_clusters(self, rng):
        z_tight, labels = self._clusters(rng, 0.05)
        z_loose, _ = self._clusters(rng, 2.0)
        assert alignment(z_tight, labels, rng=rng) < \
            alignment(z_loose, labels, rng=rng)

    def test_uniformity_lower_for_spread_points(self, rng):
        spread = rng.normal(size=(100, 8))
        collapsed = np.ones((100, 8)) + rng.normal(0, 1e-3, (100, 8))
        assert uniformity(spread, rng=rng) < uniformity(collapsed, rng=rng)

    def test_separation_higher_for_clusters(self, rng):
        z, labels = self._clusters(rng, 0.1)
        shuffled = labels[rng.permutation(len(labels))]
        good = embedding_stats(z, labels, rng=rng)
        bad = embedding_stats(z, shuffled, rng=rng)
        assert good.separation > bad.separation

    def test_stats_dataclass_fields(self, rng):
        z, labels = self._clusters(rng, 0.5)
        stats = embedding_stats(z, labels, rng=rng)
        assert isinstance(stats, EmbeddingStats)
        assert np.isfinite([stats.alignment, stats.uniformity,
                            stats.separation]).all()
