"""CLI: the `repro predict` serving entry point (batched and per-sample)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main


class TestPredictCommand:
    def test_batched_random_sweep_json(self, capsys):
        code = main(["predict", "--untrained", "--random", "12", "--batch",
                     "--scale", "tiny", "--json", "--seed", "3"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["samples"] == 12
        assert doc["mode"] == "batched"
        assert len(doc["predictions"]) == 12
        assert all(p["num_pes"] % 8 == 0 for p in doc["predictions"])

    def test_batched_equals_per_sample_loop(self, capsys):
        args = ["predict", "--untrained", "--random", "10", "--scale", "tiny",
                "--json", "--seed", "5"]
        main(args + ["--batch"])
        batched = json.loads(capsys.readouterr().out)["predictions"]
        main(args)
        loop = json.loads(capsys.readouterr().out)["predictions"]
        assert batched == loop

    def test_input_file_and_table_output(self, tmp_path, capsys):
        wl = tmp_path / "layers.txt"
        wl.write_text("# M N K dataflow\n64 512 256 1\n8,8,8\n")
        code = main(["predict", "--untrained", "--input", str(wl),
                     "--batch", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "num_pes" in out
        assert "2 samples" in out

    def test_malformed_input_rejected(self, tmp_path):
        wl = tmp_path / "bad.txt"
        wl.write_text("64 512\n")
        with pytest.raises(ValueError):
            main(["predict", "--untrained", "--input", str(wl),
                  "--scale", "tiny"])

    def test_out_of_range_dataflow_rejected(self, tmp_path):
        wl = tmp_path / "bad_df.txt"
        wl.write_text("8 8 8 7\n8 8 8 -1\n")
        with pytest.raises(ValueError, match="dataflow must be in 0..2"):
            main(["predict", "--untrained", "--input", str(wl),
                  "--scale", "tiny"])

    def test_out_of_range_dims_clamped(self, tmp_path, capsys):
        wl = tmp_path / "big.txt"
        wl.write_text("999999 999999 999999 2\n")
        code = main(["predict", "--untrained", "--input", str(wl),
                     "--batch", "--scale", "tiny", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        pred = doc["predictions"][0]
        assert pred["m"] == 256 and pred["n"] == 1677 and pred["k"] == 1185
