"""CLI: the `repro predict` serving entry point (batched and per-sample)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main


class TestPredictCommand:
    def test_batched_random_sweep_json(self, capsys):
        code = main(["predict", "--untrained", "--random", "12", "--batch",
                     "--scale", "tiny", "--json", "--seed", "3"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["samples"] == 12
        assert doc["mode"] == "batched"
        assert len(doc["predictions"]) == 12
        assert all(p["num_pes"] % 8 == 0 for p in doc["predictions"])

    def test_batched_equals_per_sample_loop(self, capsys):
        args = ["predict", "--untrained", "--random", "10", "--scale", "tiny",
                "--json", "--seed", "5"]
        main(args + ["--batch"])
        batched = json.loads(capsys.readouterr().out)["predictions"]
        main(args)
        loop = json.loads(capsys.readouterr().out)["predictions"]
        assert batched == loop

    def test_input_file_and_table_output(self, tmp_path, capsys):
        wl = tmp_path / "layers.txt"
        wl.write_text("# M N K dataflow\n64 512 256 1\n8,8,8\n")
        code = main(["predict", "--untrained", "--input", str(wl),
                     "--batch", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "num_pes" in out
        assert "2 samples" in out

    def test_malformed_input_exits_nonzero_with_message(self, tmp_path,
                                                        capsys):
        wl = tmp_path / "bad.txt"
        wl.write_text("64 512\n")
        code = main(["predict", "--untrained", "--input", str(wl),
                     "--scale", "tiny"])
        assert code == 2
        err = capsys.readouterr().err
        assert "repro predict: error:" in err
        assert f"{wl}:1" in err and "M N K" in err

    def test_non_integer_input_exits_nonzero(self, tmp_path, capsys):
        wl = tmp_path / "bad.txt"
        wl.write_text("64 abc 12\n")
        code = main(["predict", "--untrained", "--input", str(wl),
                     "--scale", "tiny"])
        assert code == 2
        assert "expected 'M N K" in capsys.readouterr().err

    def test_empty_input_file_exits_nonzero(self, tmp_path, capsys):
        wl = tmp_path / "empty.txt"
        wl.write_text("# only a comment\n")
        code = main(["predict", "--untrained", "--input", str(wl),
                     "--scale", "tiny"])
        assert code == 2
        assert "no workloads found" in capsys.readouterr().err

    def test_missing_input_file_exits_nonzero(self, tmp_path, capsys):
        code = main(["predict", "--untrained", "--input",
                     str(tmp_path / "does_not_exist.txt"), "--scale", "tiny"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize("n", ["0", "-3"])
    def test_nonpositive_random_rejected(self, n, capsys):
        with pytest.raises(SystemExit) as err:
            main(["predict", "--untrained", "--random", n, "--scale", "tiny"])
        assert err.value.code == 2
        assert "--random must be >= 1" in capsys.readouterr().err

    def test_out_of_range_dataflow_exits_nonzero(self, tmp_path, capsys):
        wl = tmp_path / "bad_df.txt"
        wl.write_text("8 8 8 7\n8 8 8 1\n")
        code = main(["predict", "--untrained", "--input", str(wl),
                     "--scale", "tiny"])
        assert code == 2
        assert "dataflow must be in 0..2" in capsys.readouterr().err

    def test_out_of_range_dims_clamped(self, tmp_path, capsys):
        wl = tmp_path / "big.txt"
        wl.write_text("999999 999999 999999 2\n")
        code = main(["predict", "--untrained", "--input", str(wl),
                     "--batch", "--scale", "tiny", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        pred = doc["predictions"][0]
        assert pred["m"] == 256 and pred["n"] == 1677 and pred["k"] == 1185


class TestServeCommand:
    """`repro serve` argument validation (the serving stack itself is
    exercised end-to-end in tests/serving/test_server.py)."""

    @pytest.mark.parametrize("flags", [
        ["--max-batch-size", "0"],
        ["--max-wait-ms", "-1"],
        ["--max-queue", "0"],
        ["--request-timeout", "0"],
        ["--request-timeout", "-3"],
    ], ids=["batch-size", "wait", "queue", "timeout-zero", "timeout-neg"])
    def test_bad_flush_policy_rejected(self, flags, capsys):
        with pytest.raises(SystemExit) as err:
            main(["serve", "--untrained", "--scale", "tiny"] + flags)
        assert err.value.code == 2
        assert "must be" in capsys.readouterr().err

    def test_help_mentions_endpoints(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["serve", "--help"])
        assert err.value.code == 0
        out = capsys.readouterr().out
        assert "/predict" in out
        assert "--async" in out
        assert "--max-queue" in out
        assert "--request-timeout" in out


class TestTrainCommand:
    def test_smoke_trains_and_reports_json(self, tmp_path, capsys):
        code = main(["train", "--smoke", "--cache", str(tmp_path), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["model"] == "v2"
        assert doc["scale"] == "tiny"
        assert doc["cached_model"] is False
        assert doc["train_samples"] > 0
        assert 0.0 <= doc["accuracy"] <= 1.0

    def test_second_run_loads_cached_model(self, tmp_path, capsys):
        main(["train", "--smoke", "--cache", str(tmp_path), "--json"])
        capsys.readouterr()
        code = main(["train", "--smoke", "--cache", str(tmp_path), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cached_model"] is True

    def test_checkpoints_cleaned_after_success(self, tmp_path, capsys):
        main(["train", "--smoke", "--cache", str(tmp_path)])
        leftovers = list(tmp_path.glob("**/ckpt_*"))
        assert leftovers == []

    def test_parallel_labelling_workers(self, tmp_path, capsys):
        code = main(["train", "--smoke", "--cache", str(tmp_path),
                     "--workers", "2", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["label_workers"] == 2

    def test_baseline_model(self, tmp_path, capsys):
        code = main(["train", "--smoke", "--model", "v1",
                     "--cache", str(tmp_path), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["model"] == "v1"

    def test_bad_workers_rejected(self):
        with pytest.raises(SystemExit) as err:
            main(["train", "--smoke", "--workers", "0"])
        assert err.value.code == 2

    def test_vaesa_trains_without_oneshot_metrics(self, tmp_path, capsys):
        code = main(["train", "--smoke", "--model", "vaesa",
                     "--cache", str(tmp_path), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["model"] == "vaesa"
        assert doc["accuracy"] is None    # search-based inference


class TestRegistryFlow:
    """--registry/--model-id: train registers an artifact, predict/serve
    load it."""

    def test_train_registers_then_predict_serves_artifact(self, tmp_path,
                                                          capsys):
        registry_dir = tmp_path / "registry"
        code = main(["train", "--smoke", "--cache", str(tmp_path / "cache"),
                     "--registry", str(registry_dir),
                     "--model-id", "demo", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["registry"] == {"root": str(registry_dir),
                                   "model_id": "demo"}

        from repro.registry import ModelRegistry
        artifact = ModelRegistry(registry_dir).artifact("demo")
        assert artifact.kind == "airchitect_v2"
        assert artifact.scale == "tiny"
        assert artifact.metrics["accuracy"] == doc["accuracy"]

        code = main(["predict", "--registry", str(registry_dir),
                     "--model-id", "demo", "--random", "8", "--batch",
                     "--json", "--seed", "2"])
        assert code == 0
        served = json.loads(capsys.readouterr().out)
        assert served["samples"] == 8

        # The registry-loaded model predicts bit-identically to the
        # workspace-cached one the training run left behind.
        code = main(["predict", "--cache", str(tmp_path / "cache"),
                     "--scale", "tiny", "--random", "8", "--batch",
                     "--json", "--seed", "2"])
        assert code == 0
        cached = json.loads(capsys.readouterr().out)
        assert served["predictions"] == cached["predictions"]

    def test_default_model_id_derived_from_model_and_scale(self, tmp_path,
                                                           capsys):
        code = main(["train", "--smoke", "--cache", str(tmp_path / "cache"),
                     "--registry", str(tmp_path / "registry"), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["registry"]["model_id"] == "v2_tiny_s0"

    def test_missing_artifact_is_a_clean_error(self, tmp_path, capsys):
        code = main(["predict", "--registry", str(tmp_path),
                     "--model-id", "ghost", "--random", "4"])
        assert code == 2
        assert "repro predict: error:" in capsys.readouterr().err

    def test_search_only_artifact_is_a_clean_error(self, tmp_path, capsys):
        """A VAESA artifact has no one-shot inference path; predict must
        refuse it cleanly instead of crashing in the engine."""
        import numpy as np
        from repro.baselines import VAESA, VAESAConfig
        from repro.experiments.common import get_problem
        from repro.registry import ModelRegistry
        problem = get_problem()
        model = VAESA(VAESAConfig(epochs=1), problem,
                      np.random.default_rng(0))
        ModelRegistry(tmp_path).save(model, "vaesa")
        code = main(["predict", "--registry", str(tmp_path),
                     "--model-id", "vaesa", "--random", "4", "--batch"])
        assert code == 2
        err = capsys.readouterr().err
        assert "no one-shot inference path" in err

    @pytest.mark.parametrize("argv", [
        ["predict", "--model-id", "x", "--random", "4"],        # no registry
        ["predict", "--registry", "r", "--random", "4"],        # no model id
        ["predict", "--registry", "r", "--model-id", "x",
         "--untrained", "--random", "4"],                       # conflict
        ["train", "--smoke", "--model-id", "x"],                # no registry
    ], ids=["model-id-only", "registry-only", "untrained-conflict",
            "train-model-id-only"])
    def test_inconsistent_flags_rejected(self, argv):
        with pytest.raises(SystemExit) as err:
            main(argv)
        assert err.value.code == 2
