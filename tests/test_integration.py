"""End-to-end integration: the full AIRCHITECT v2 pipeline on fresh data.

Covers the complete user journey — generate a dataset from the cost model,
train both stages, run one-shot inference, deploy to a model-level
configuration — without any cached artefacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (AirchitectV2, DeploymentEvaluator, DSEPredictor,
                        ModelConfig, Stage1Config, Stage1Trainer, Stage2Config,
                        Stage2Trainer, evaluate_model)
from repro.dse import DSEProblem, generate_random_dataset
from repro.workloads import lenet5


@pytest.fixture(scope="module")
def pipeline():
    """Train a small model once for the whole module."""
    rng = np.random.default_rng(64)
    problem = DSEProblem()
    train = generate_random_dataset(problem, 600, rng)
    test = generate_random_dataset(problem, 150, rng)
    model = AirchitectV2(ModelConfig(d_model=24, n_layers=1, n_heads=2,
                                     embed_dim=12, num_buckets=8),
                         problem, rng)
    h1 = Stage1Trainer(model, Stage1Config(epochs=10)).train(train)
    h2 = Stage2Trainer(model, Stage2Config(epochs=10)).train(train)
    return problem, model, train, test, h1, h2


class TestEndToEnd:
    def test_both_stages_converge(self, pipeline):
        _, _, _, _, h1, h2 = pipeline
        assert h1["loss"][-1] < h1["loss"][0]
        assert h2["loss"][-1] < h2["loss"][0]

    def test_generalises_to_unseen_samples(self, pipeline):
        _, model, _, test, _, _ = pipeline
        metrics = evaluate_model(model, test, compute_regret=True)
        # Far better than the 1/768 random-guess rate, and near-optimal
        # latency-wise.
        assert metrics.accuracy > 0.02
        assert metrics.mean_regret < 1.0

    def test_train_accuracy_exceeds_test(self, pipeline):
        problem, model, train, test, _, _ = pipeline
        train_m = evaluate_model(model, train, compute_regret=False)
        test_m = evaluate_model(model, test, compute_regret=False)
        assert train_m.accuracy >= test_m.accuracy - 0.05

    def test_predictor_to_deployment_roundtrip(self, pipeline):
        problem, model, _, _, _, _ = pipeline
        predictor = DSEPredictor(model)
        workload = lenet5()
        evaluator = DeploymentEvaluator(problem)
        tuples = evaluator.layer_inputs(workload)
        pe, l2 = predictor.predict_indices(tuples)
        result = evaluator.method1(workload, pe, l2)
        oracle = evaluator.oracle_deployment(workload)
        assert result.total_latency >= oracle.total_latency - 1e-9
        # A trained model should land within 10x of the deployment oracle.
        assert result.total_latency <= oracle.total_latency * 10

    def test_save_load_preserves_behaviour(self, pipeline, tmp_path):
        from repro.nn import load_module, save_module
        problem, model, _, test, _, _ = pipeline
        save_module(model, tmp_path / "v2.npz")
        clone = AirchitectV2(model.config, problem, np.random.default_rng(1))
        load_module(clone, tmp_path / "v2.npz")
        a = model.predict_indices(test.inputs[:32])
        b = clone.predict_indices(test.inputs[:32])
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
