"""MetricsRegistry: families, labelled children, Prometheus rendering."""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestFamilies:
    def test_create_or_get_is_idempotent(self, registry):
        first = registry.counter("repro_things_total", "Things.")
        again = registry.counter("repro_things_total", "Things.")
        assert first is again

    def test_kind_conflict_rejected(self, registry):
        registry.counter("repro_x_total", "X.")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total", "X.")

    def test_label_set_conflict_rejected(self, registry):
        registry.counter("repro_y_total", "Y.", ("model",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_y_total", "Y.", ("model", "route"))

    def test_invalid_metric_name_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("0bad-name", "Nope.")

    def test_invalid_label_name_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("repro_ok_total", "OK.", ("bad-label",))

    def test_families_sorted_by_name(self, registry):
        registry.gauge("repro_b", "B.")
        registry.gauge("repro_a", "A.")
        assert [f.name for f in registry.families()] \
            == ["repro_a", "repro_b"]


class TestChildren:
    def test_counter_accumulates_and_rejects_negative(self, registry):
        child = registry.counter("repro_c_total", "C.").labels()
        child.inc()
        child.inc(4)
        assert child.value == 5
        with pytest.raises(ValueError):
            child.inc(-1)

    def test_labels_positional_and_keyword_agree(self, registry):
        family = registry.counter("repro_l_total", "L.", ("model",))
        assert family.labels("m1") is family.labels(model="m1")
        assert family.labels("m1") is not family.labels("m2")

    def test_labels_arity_checked(self, registry):
        family = registry.counter("repro_a_total", "A.", ("model",))
        with pytest.raises(ValueError):
            family.labels()
        with pytest.raises(ValueError):
            family.labels("a", "b")
        with pytest.raises(ValueError):
            family.labels(route="x")
        with pytest.raises(TypeError):
            family.labels("a", model="b")

    def test_gauge_operations(self, registry):
        gauge = registry.gauge("repro_g", "G.").labels()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13
        gauge.set_max(4)
        assert gauge.value == 13
        gauge.set_max(40)
        assert gauge.value == 40

    def test_gauge_callback_evaluated_at_read(self, registry):
        gauge = registry.gauge("repro_cb", "CB.").labels()
        box = {"v": 1}
        gauge.set_function(lambda: box["v"])
        assert gauge.value == 1
        box["v"] = 7
        assert gauge.value == 7

    def test_histogram_observe_and_snapshot(self, registry):
        hist = registry.histogram("repro_h_seconds", "H.").labels()
        hist.observe(0.001)
        hist.observe(0.002)
        assert hist.count == 2
        assert hist.total_s == pytest.approx(0.003)
        assert hist.snapshot()["count"] == 2

    def test_remove_drops_series(self, registry):
        family = registry.gauge("repro_r", "R.", ("model",))
        family.labels(model="gone").set(1)
        family.remove(model="gone")
        assert "gone" not in registry.render()

    def test_concurrent_increments_are_lossless(self, registry):
        child = registry.counter("repro_mt_total", "MT.").labels()

        def spin():
            for _ in range(1000):
                child.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert child.value == 8000


class TestRender:
    def test_help_and_type_lines(self, registry):
        registry.counter("repro_req_total", "Requests.").labels().inc(3)
        text = registry.render()
        assert "# HELP repro_req_total Requests.\n" in text
        assert "# TYPE repro_req_total counter\n" in text
        assert "repro_req_total 3\n" in text

    def test_labelled_series(self, registry):
        family = registry.counter("repro_m_total", "M.", ("model",))
        family.labels(model="a").inc()
        family.labels(model="b").inc(2)
        text = registry.render()
        assert 'repro_m_total{model="a"} 1\n' in text
        assert 'repro_m_total{model="b"} 2\n' in text

    def test_label_values_escaped(self, registry):
        family = registry.gauge("repro_e", "E.", ("path",))
        family.labels(path='a"b\\c\nd').set(1)
        text = registry.render()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_histogram_buckets_cumulative_with_inf(self, registry):
        hist = registry.histogram("repro_lat_seconds", "Lat.").labels()
        hist.observe(1e-4)
        hist.observe(1e-4)
        hist.observe(1e-1)
        lines = registry.render().splitlines()
        buckets = [line for line in lines
                   if line.startswith("repro_lat_seconds_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)            # cumulative
        assert counts[-1] == 3
        assert buckets[-1].startswith('repro_lat_seconds_bucket{le="+Inf"}')
        assert any(line.startswith("repro_lat_seconds_sum ")
                   for line in lines)
        assert "repro_lat_seconds_count 3" in lines

    def test_histogram_bucket_labels_include_family_labels(self, registry):
        family = registry.histogram("repro_p_seconds", "P.", ("phase",))
        family.labels(phase="forward").observe(0.001)
        text = registry.render()
        assert 'repro_p_seconds_bucket{phase="forward",le="5e-05"}' in text
        assert 'repro_p_seconds_count{phase="forward"} 1\n' in text

    def test_collect_shape(self, registry):
        registry.counter("repro_c_total", "C.", ("model",)) \
            .labels(model="m").inc(2)
        doc = registry.collect()
        assert doc["repro_c_total"]["type"] == "counter"
        assert doc["repro_c_total"]["series"]["model=m"] == 2

    def test_render_ends_with_newline(self, registry):
        registry.gauge("repro_g", "G.").labels().set(1)
        assert registry.render().endswith("\n")
